//! Disk-spilled time windows: a memory-resident tail with the cold prefix spilled to a
//! persistent segment store.
//!
//! Source windows are memory-backed by design — they are bounded by their declared
//! window and rebuilt from live data after a restart.  But a window like
//! `storage-size="30d"` holds weeks of history, far beyond RAM.  [`SpillingBackend`]
//! keeps such a table *logically* in memory while bounding its resident footprint: the
//! newest elements stay in a plain vector (the hot path — window tails, `LatestOnly`,
//! small count windows — never touches disk), and once the resident bytes exceed the
//! configured budget the oldest half is moved into a [`PersistentBackend`] segment
//! store shared with the container's buffer pool.
//!
//! Scans are seamless across the spilled/resident boundary.  Sequences are assigned
//! contiguously by the owning [`crate::StreamTable`], and elements spill strictly in
//! order, so a cursor is just an inclusive sequence range: each batch is served from
//! the segment store while `next_seq` lies below its high-water mark and from the
//! resident vector above it — re-resolved per pull, so concurrent spilling, pruning
//! and segment reclamation between batches never invalidate a cursor.
//!
//! The spill store is a *cache of live stream data*: its WAL is disabled
//! ([`SyncMode::Disabled`]) and any files left by a previous incarnation are wiped at
//! creation — a restarted container rebuilds the window from scratch, exactly like a
//! plain memory table.

use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use gsn_types::{GsnError, GsnResult, StreamElement, StreamSchema, Timestamp};

use crate::backend::{
    memory_scan_next, sanitize_file_name, BackendKind, PersistentBackend, PersistentOptions,
    ScanBounds, ScanState, ScanStateInner, StorageBackend, MEMORY_SCAN_BATCH,
};
use crate::buffer::BufferPoolStats;
use crate::retention::{DiskUsage, ReclaimStats};
use crate::segment::SegmentedHeap;
use crate::wal::SyncMode;
use crate::window::WindowSpec;

/// Tuning for a disk-spilled window table.
#[derive(Debug, Clone)]
pub struct SpillOptions {
    /// Resident-memory budget in payload bytes: exceeding it moves the oldest half of
    /// the resident elements into the segment store.
    pub budget_bytes: usize,
    /// Segment-store tuning (pool sharing, segment size).  `sync` and `group_commit`
    /// are overridden — the spill store never needs durability.
    pub persistent: PersistentOptions,
}

impl SpillOptions {
    /// Spill options with the given resident budget and default store tuning.
    pub fn with_budget(budget_bytes: usize) -> SpillOptions {
        SpillOptions {
            budget_bytes,
            persistent: PersistentOptions::default(),
        }
    }
}

/// A stream table whose cold prefix lives in a persistent segment store and whose hot
/// tail stays resident (see the module docs).
pub struct SpillingBackend {
    name: String,
    dir: PathBuf,
    schema: Arc<StreamSchema>,
    options: SpillOptions,
    /// The hot tail, oldest first; all elements newer than everything in `cold`.
    resident: Vec<StreamElement>,
    resident_bytes: usize,
    /// The cold prefix; created lazily at the first spill.
    cold: Option<PersistentBackend>,
    /// Lifetime count of elements moved to disk.
    spilled_rows: u64,
    /// Lifetime count of migration passes (batched spills of the cold prefix).
    spill_migrations: u64,
}

impl fmt::Debug for SpillingBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SpillingBackend({}: {} resident ({} B of {} B budget), {} cold, {} spilled)",
            self.name,
            self.resident.len(),
            self.resident_bytes,
            self.options.budget_bytes,
            self.cold.as_ref().map(|c| c.len()).unwrap_or(0),
            self.spilled_rows,
        )
    }
}

impl SpillingBackend {
    /// Creates a spill-capable table rooted at `dir`.  Stale spill files from a
    /// previous incarnation are wiped immediately (the window starts empty).
    pub fn create(
        dir: &Path,
        name: &str,
        schema: Arc<StreamSchema>,
        options: SpillOptions,
    ) -> GsnResult<SpillingBackend> {
        std::fs::create_dir_all(dir)
            .map_err(|e| GsnError::storage(format!("cannot create data directory {dir:?}: {e}")))?;
        let store = Self::store_name(name);
        SegmentedHeap::wipe(dir, &sanitize_file_name(&store))?;
        match std::fs::remove_file(dir.join(format!("{}.wal", sanitize_file_name(&store)))) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => {
                return Err(GsnError::storage(format!(
                    "cannot wipe stale spill WAL: {e}"
                )))
            }
        }
        Ok(SpillingBackend {
            name: name.to_owned(),
            dir: dir.to_owned(),
            schema,
            options,
            resident: Vec::new(),
            resident_bytes: 0,
            cold: None,
            spilled_rows: 0,
            spill_migrations: 0,
        })
    }

    fn store_name(name: &str) -> String {
        format!("{name}__spill")
    }

    /// Lifetime count of elements moved to the segment store.
    pub fn spilled_rows(&self) -> u64 {
        self.spilled_rows
    }

    /// Lifetime count of migration passes.
    pub fn migrations(&self) -> u64 {
        self.spill_migrations
    }

    /// Elements currently resident in memory.
    pub fn resident_len(&self) -> usize {
        self.resident.len()
    }

    fn cold_live(&self) -> usize {
        self.cold.as_ref().map(|c| c.len()).unwrap_or(0)
    }

    fn drop_resident_front(&mut self, count: usize) {
        for e in &self.resident[..count] {
            self.resident_bytes = self.resident_bytes.saturating_sub(e.size_bytes());
        }
        self.resident.drain(..count);
    }

    /// Moves the oldest resident elements into the segment store until the resident
    /// bytes drop to half the budget (hysteresis: spilling happens in batches, not per
    /// insert).
    fn spill_cold_prefix(&mut self) -> GsnResult<()> {
        let target = self.options.budget_bytes / 2;
        if self.cold.is_none() {
            let options = PersistentOptions {
                sync: SyncMode::Disabled,
                group_commit: false,
                // A spilled window is a rebuildable cache: it must not occupy a tag in
                // the container's shared WAL shards.
                shared_wal: None,
                ..self.options.persistent.clone()
            };
            self.cold = Some(PersistentBackend::open_fresh(
                &self.dir,
                &Self::store_name(&self.name),
                Arc::clone(&self.schema),
                options,
            )?);
        }
        let cold = self.cold.as_mut().expect("cold store created");
        let mut moved = 0usize;
        let mut moved_bytes = 0usize;
        let mut failure = None;
        for element in &self.resident {
            if self.resident_bytes - moved_bytes <= target || moved + 1 >= self.resident.len() {
                break;
            }
            match cold.append(element) {
                Ok(()) => {
                    moved += 1;
                    moved_bytes += element.size_bytes();
                }
                // Stop at the first failure but still account for everything appended
                // so far — the rows that did reach the cold store MUST leave the
                // resident vector, or they would exist on both sides forever.
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
        }
        self.spilled_rows += moved as u64;
        if moved > 0 {
            self.spill_migrations += 1;
        }
        self.drop_resident_front(moved);
        match failure {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// The sequence of the first element selected by a time window at `now`, looking
    /// across the spilled/resident boundary (`None` = nothing selected).
    fn first_selected_by_time(
        &self,
        window: WindowSpec,
        now: Timestamp,
        cutoff: Timestamp,
    ) -> GsnResult<Option<u64>> {
        if let Some(cold) = &self.cold {
            if cold.len() > 0 {
                let mut state = cold.open_scan(window, now)?;
                if let Some(batch) = cold.scan_next(&mut state)? {
                    if let Some(first) = batch.first() {
                        return Ok(Some(first.sequence()));
                    }
                }
            }
        }
        let start = self.resident.partition_point(|e| e.timestamp() < cutoff);
        Ok(self.resident.get(start).map(StreamElement::sequence))
    }
}

impl StorageBackend for SpillingBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Spilled
    }

    fn spill_stats(&self) -> Option<(u64, u64)> {
        Some((self.spill_migrations, self.spilled_rows))
    }

    fn append(&mut self, element: &StreamElement) -> GsnResult<()> {
        self.resident_bytes += element.size_bytes();
        self.resident.push(element.clone());
        if self.resident_bytes > self.options.budget_bytes {
            self.spill_cold_prefix()?;
        }
        Ok(())
    }

    fn len(&self) -> usize {
        self.cold_live() + self.resident.len()
    }

    fn last(&self) -> Option<StreamElement> {
        self.resident
            .last()
            .cloned()
            .or_else(|| self.cold.as_ref().and_then(|c| c.last()))
    }

    fn first_timestamp(&self) -> GsnResult<Option<Timestamp>> {
        if let Some(cold) = &self.cold {
            if cold.len() > 0 {
                return cold.first_timestamp();
            }
        }
        Ok(self.resident.first().map(StreamElement::timestamp))
    }

    fn retained_bytes(&self) -> usize {
        self.resident_bytes + self.cold.as_ref().map(|c| c.retained_bytes()).unwrap_or(0)
    }

    fn max_sequence(&self) -> u64 {
        self.resident
            .last()
            .map(StreamElement::sequence)
            .or_else(|| self.cold.as_ref().map(|c| c.max_sequence()))
            .unwrap_or(0)
    }

    fn scan_window(
        &self,
        window: WindowSpec,
        now: Timestamp,
        visit: &mut dyn FnMut(&StreamElement),
    ) -> GsnResult<()> {
        match window {
            WindowSpec::LatestOnly => {
                if let Some(last) = self.last() {
                    visit(&last);
                }
                Ok(())
            }
            WindowSpec::Count(n) => {
                if n <= self.resident.len() {
                    for e in window.select(&self.resident, now) {
                        visit(e);
                    }
                    return Ok(());
                }
                if let Some(cold) = &self.cold {
                    // Trailing `n` across the boundary = trailing `n - resident` of the
                    // cold store, then everything resident.
                    cold.scan_window(WindowSpec::Count(n - self.resident.len()), now, visit)?;
                }
                for e in &self.resident {
                    visit(e);
                }
                Ok(())
            }
            WindowSpec::Time(_) => {
                // Partition-point semantics over the combined order: if the first
                // in-horizon element is in the cold store, its scan emits from there
                // and everything resident follows; otherwise partition the resident
                // vector exactly as a memory table would.
                let mut any_cold = false;
                if let Some(cold) = &self.cold {
                    cold.scan_window(window, now, &mut |e| {
                        any_cold = true;
                        visit(e);
                    })?;
                }
                if any_cold {
                    for e in &self.resident {
                        visit(e);
                    }
                } else {
                    for e in window.select(&self.resident, now) {
                        visit(e);
                    }
                }
                Ok(())
            }
        }
    }

    fn open_scan(&self, window: WindowSpec, now: Timestamp) -> GsnResult<ScanState> {
        let total = self.len() as u64;
        if total == 0 {
            return Ok(ScanState::empty());
        }
        let end_seq = self.max_sequence();
        let first_live = self
            .first_sequence()?
            .expect("non-empty table has a first sequence");
        let next_seq = match window {
            WindowSpec::Count(0) => return Ok(ScanState::empty()),
            WindowSpec::Count(n) if (n as u64) >= total => first_live,
            // Sequences are contiguous across the boundary (the table assigns them
            // densely and elements spill in order), so the trailing-n start is pure
            // arithmetic — no page is touched to open the cursor.
            WindowSpec::Count(n) => first_live.max(end_seq + 1 - n as u64),
            WindowSpec::LatestOnly => end_seq,
            WindowSpec::Time(d) => {
                let cutoff = now.saturating_sub(d);
                match self.first_selected_by_time(window, now, cutoff)? {
                    Some(seq) => seq,
                    None => return Ok(ScanState::empty()),
                }
            }
        };
        Ok(ScanState::sequence_range(next_seq, end_seq))
    }

    fn open_scan_bounded(
        &self,
        window: WindowSpec,
        now: Timestamp,
        bounds: &ScanBounds,
    ) -> GsnResult<ScanState> {
        let mut state = self.open_scan(window, now)?;
        // The hybrid cursor is tracked purely by sequence, so primary-key bounds
        // clamp the range before a single resident element is cloned or a cold
        // page is pinned.  Timestamp bounds stay with the executor's re-filter.
        if let ScanStateInner::Sequence { next_seq, end_seq } = &mut state.0 {
            if let Some(min_seq) = bounds.min_seq {
                *next_seq = (*next_seq).max(min_seq);
            }
            if let Some(max_seq) = bounds.max_seq {
                *end_seq = (*end_seq).min(max_seq);
            }
            // Sequences are dense inside the live range, so a limit hint turns
            // into an exact upper sequence bound — but only when no timestamp
            // bound rides along (those drop rows after the cursor, so capping
            // here could starve the consumer).
            if bounds.min_ts.is_none() && bounds.max_ts.is_none() {
                if let Some(limit) = bounds.limit {
                    if limit == 0 {
                        return Ok(ScanState::empty());
                    }
                    *end_seq = (*end_seq).min(next_seq.saturating_add(limit - 1));
                }
            }
        }
        Ok(state)
    }

    fn open_scan_after(&self, after: u64) -> GsnResult<ScanState> {
        let end_seq = self.max_sequence();
        if end_seq <= after {
            return Ok(ScanState::empty());
        }
        Ok(ScanState::sequence_range(after + 1, end_seq))
    }

    fn first_sequence(&self) -> GsnResult<Option<u64>> {
        if let Some(cold) = &self.cold {
            if cold.len() > 0 {
                return cold.first_sequence();
            }
        }
        Ok(self.resident.first().map(StreamElement::sequence))
    }

    fn scan_next(&self, state: &mut ScanState) -> GsnResult<Option<Vec<StreamElement>>> {
        match &mut state.0 {
            ScanStateInner::Buffered { elements, pos } => Ok(memory_scan_next(elements, pos)),
            ScanStateInner::Rows { .. } => Err(GsnError::storage(
                "page scan state handed to a spilling backend",
            )),
            ScanStateInner::Sequence { next_seq, end_seq } => {
                if *next_seq > *end_seq {
                    return Ok(None);
                }
                // Cold first: the store's high-water mark moves up as elements spill
                // between pulls, so this re-check per batch is what makes the cursor
                // seamless across the boundary.
                if let Some(cold) = &self.cold {
                    if cold.len() > 0 && cold.max_sequence() >= *next_seq {
                        let mut sub = cold.open_scan_after(next_seq.saturating_sub(1))?;
                        if let Some(mut batch) = cold.scan_next(&mut sub)? {
                            batch.retain(|e| e.sequence() <= *end_seq);
                            if let Some(last) = batch.last() {
                                *next_seq = last.sequence() + 1;
                                return Ok(Some(batch));
                            }
                            return Ok(None); // everything left is past the snapshot
                        }
                    }
                }
                let start = self.resident.partition_point(|e| e.sequence() < *next_seq);
                let batch: Vec<StreamElement> = self.resident[start..]
                    .iter()
                    .take(MEMORY_SCAN_BATCH)
                    .take_while(|e| e.sequence() <= *end_seq)
                    .cloned()
                    .collect();
                match batch.last() {
                    Some(last) => {
                        *next_seq = last.sequence() + 1;
                        Ok(Some(batch))
                    }
                    None => Ok(None),
                }
            }
        }
    }

    fn prune_to_elements(&mut self, keep: usize) -> GsnResult<u64> {
        if self.len() <= keep {
            return Ok(0);
        }
        let mut pruned = 0u64;
        if self.resident.len() >= keep {
            // Every kept row is resident: logically empty the cold store, then prune
            // the resident vector exactly — but only once the cold store really is
            // empty, so no middle rows ever vanish while older ones survive.
            if let Some(cold) = &mut self.cold {
                pruned += cold.prune_to_elements(0)?;
            }
            if self.cold_live() == 0 {
                let drop = self.resident.len() - keep;
                self.drop_resident_front(drop);
                pruned += drop as u64;
            }
        } else if let Some(cold) = &mut self.cold {
            pruned += cold.prune_to_elements(keep - self.resident.len())?;
        }
        Ok(pruned)
    }

    fn prune_horizon(&mut self, cutoff: Timestamp, min_keep: usize) -> GsnResult<u64> {
        let mut pruned = 0u64;
        let resident_len = self.resident.len();
        if let Some(cold) = &mut self.cold {
            pruned += cold.prune_horizon(cutoff, min_keep.saturating_sub(resident_len))?;
        }
        if self.cold_live() == 0 {
            let by_time = self.resident.partition_point(|e| e.timestamp() < cutoff);
            let drop = by_time.min(self.resident.len().saturating_sub(min_keep));
            if drop > 0 {
                self.drop_resident_front(drop);
                pruned += drop as u64;
            }
        }
        Ok(pruned)
    }

    fn flush(&mut self) -> GsnResult<()> {
        match &mut self.cold {
            Some(cold) => cold.flush(),
            None => Ok(()),
        }
    }

    fn reclaim(&mut self) -> GsnResult<ReclaimStats> {
        match &mut self.cold {
            Some(cold) => cold.reclaim(),
            None => Ok(ReclaimStats::default()),
        }
    }

    fn disk_usage(&self) -> Option<DiskUsage> {
        self.cold.as_ref().and_then(|c| c.disk_usage())
    }

    fn pool_stats(&self) -> Option<BufferPoolStats> {
        self.cold.as_ref().and_then(|c| c.pool_stats())
    }

    fn destroy(self: Box<Self>) -> GsnResult<()> {
        match self.cold {
            Some(cold) => Box::new(cold).destroy(),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemoryBackend;
    use crate::testutil::temp_dir;
    use gsn_types::{DataType, Duration, Value};

    fn schema() -> Arc<StreamSchema> {
        Arc::new(
            StreamSchema::from_pairs(&[("v", DataType::Integer), ("payload", DataType::Binary)])
                .unwrap(),
        )
    }

    fn element(schema: &Arc<StreamSchema>, v: i64, ts: i64, payload: usize) -> StreamElement {
        StreamElement::new(
            Arc::clone(schema),
            vec![Value::Integer(v), Value::binary(vec![v as u8; payload])],
            Timestamp(ts),
        )
        .unwrap()
        .with_sequence(v as u64)
    }

    fn spilling(dir: &Path, budget: usize) -> SpillingBackend {
        SpillingBackend::create(dir, "w", schema(), SpillOptions::with_budget(budget)).unwrap()
    }

    fn values(backend: &dyn StorageBackend, window: WindowSpec, now: Timestamp) -> Vec<i64> {
        let mut out = Vec::new();
        backend
            .scan_window(window, now, &mut |e| {
                out.push(e.value("V").unwrap().as_integer().unwrap());
            })
            .unwrap();
        out
    }

    fn drain(backend: &dyn StorageBackend, state: &mut ScanState) -> Vec<i64> {
        let mut out = Vec::new();
        while let Some(batch) = backend.scan_next(state).unwrap() {
            out.extend(
                batch
                    .iter()
                    .map(|e| e.value("V").unwrap().as_integer().unwrap()),
            );
        }
        out
    }

    #[test]
    fn spills_cold_prefix_and_scans_across_the_boundary() {
        let dir = temp_dir("spill-boundary");
        let s = schema();
        let mut b = spilling(&dir, 4 * 1024);
        let mut mem = MemoryBackend::new();
        for i in 1..=500 {
            let e = element(&s, i, i * 10, 64);
            b.append(&e).unwrap();
            mem.append(&e).unwrap();
        }
        assert!(b.spilled_rows() > 0, "budget must have forced spilling");
        assert!(b.resident_len() < 500);
        assert_eq!(b.len(), 500);
        assert_eq!(b.max_sequence(), 500);
        assert_eq!(b.first_sequence().unwrap(), Some(1));
        assert_eq!(b.last().unwrap().sequence(), 500);
        assert_eq!(b.first_timestamp().unwrap(), Some(Timestamp(10)));

        let now = Timestamp(10_000);
        for window in [
            WindowSpec::Count(usize::MAX),
            WindowSpec::Count(500),
            WindowSpec::Count(100),
            WindowSpec::Count(3),
            WindowSpec::LatestOnly,
            WindowSpec::Time(Duration::from_millis(1_234)),
            WindowSpec::Time(Duration::from_millis(4_999)),
            WindowSpec::Time(Duration::from_millis(50_000)),
        ] {
            let expected = values(&mem, window, now);
            assert_eq!(values(&b, window, now), expected, "{window:?} visit");
            let mut st = b.open_scan(window, now).unwrap();
            assert_eq!(drain(&b, &mut st), expected, "{window:?} cursor");
        }
    }

    #[test]
    fn delta_cursor_crosses_the_boundary_and_survives_spilling() {
        let dir = temp_dir("spill-delta");
        let s = schema();
        let mut b = spilling(&dir, 2 * 1024);
        for i in 1..=200 {
            b.append(&element(&s, i, i, 64)).unwrap();
        }
        let mut st = b.open_scan_after(0).unwrap();
        // Pull one batch (from the cold store), then keep appending — which spills
        // formerly-resident rows the cursor has not read yet.
        let first = b.scan_next(&mut st).unwrap().unwrap();
        assert!(first[0].sequence() == 1);
        for i in 201..=400 {
            b.append(&element(&s, i, i, 64)).unwrap();
        }
        let mut got: Vec<i64> = first
            .iter()
            .map(|e| e.value("V").unwrap().as_integer().unwrap())
            .collect();
        got.extend(drain(&b, &mut st));
        // The snapshot bound is 200; every one of those rows arrives exactly once.
        assert_eq!(got, (1..=200).collect::<Vec<i64>>());
        // A fresh delta scan sees the newer rows.
        let mut st = b.open_scan_after(200).unwrap();
        assert_eq!(drain(&b, &mut st), (201..=400).collect::<Vec<i64>>());
    }

    #[test]
    fn pruning_never_leaves_gaps() {
        let dir = temp_dir("spill-prune");
        let s = schema();
        let mut b = spilling(&dir, 2 * 1024);
        for i in 1..=300 {
            b.append(&element(&s, i, i * 10, 64)).unwrap();
        }
        b.prune_to_elements(50).unwrap();
        let kept = values(&b, WindowSpec::Count(usize::MAX), Timestamp(10_000));
        // Page-granular on the cold side: at least 50 live, contiguous, ending at 300.
        assert!(kept.len() >= 50);
        assert_eq!(kept.last().copied(), Some(300));
        let expect: Vec<i64> = ((300 - kept.len() as i64 + 1)..=300).collect();
        assert_eq!(kept, expect, "no gaps across the boundary");

        b.prune_horizon(Timestamp(2_900), 1).unwrap();
        let kept = values(&b, WindowSpec::Count(usize::MAX), Timestamp(10_000));
        assert!(!kept.is_empty());
        assert_eq!(kept.last().copied(), Some(300));
        let expect: Vec<i64> = ((300 - kept.len() as i64 + 1)..=300).collect();
        assert_eq!(kept, expect);
    }

    #[test]
    fn reclaim_and_disk_usage_reach_the_cold_store() {
        let dir = temp_dir("spill-reclaim");
        let s = schema();
        let mut b = SpillingBackend::create(
            &dir,
            "w",
            schema(),
            SpillOptions {
                budget_bytes: 1024,
                persistent: PersistentOptions {
                    segment_pages: 2,
                    pool_pages: 4,
                    ..Default::default()
                },
            },
        )
        .unwrap();
        for i in 1..=400 {
            b.append(&element(&s, i, i, 64)).unwrap();
        }
        let usage = b.disk_usage().expect("cold store exists");
        assert!(usage.on_disk_bytes > 0);
        assert!(usage.total_segments > 2);
        b.prune_to_elements(30).unwrap();
        let stats = b.reclaim().unwrap();
        assert!(stats.segments_deleted > 0, "{stats:?}");
        let after = b.disk_usage().unwrap();
        assert!(after.on_disk_bytes < usage.on_disk_bytes);
        // Query correctness is unaffected.
        let tail = values(&b, WindowSpec::Count(10), Timestamp(10_000));
        assert_eq!(tail, (391..=400).collect::<Vec<i64>>());
    }

    #[test]
    fn stale_spill_files_are_wiped_on_create() {
        let dir = temp_dir("spill-wipe");
        let s = schema();
        {
            let mut b = spilling(&dir, 512);
            for i in 1..=100 {
                b.append(&element(&s, i, i, 64)).unwrap();
            }
            assert!(b.spilled_rows() > 0);
            b.flush().unwrap();
            // Dropped without destroy: files stay behind, as after a crash.
        }
        assert!(std::fs::read_dir(&dir).unwrap().next().is_some());
        let b = spilling(&dir, 512);
        assert_eq!(
            b.len(),
            0,
            "previous incarnation's spill must not resurrect"
        );
        assert!(
            std::fs::read_dir(&dir).unwrap().next().is_none(),
            "stale files wiped eagerly"
        );
    }

    #[test]
    fn destroy_removes_cold_files() {
        let dir = temp_dir("spill-destroy");
        let s = schema();
        let mut b = spilling(&dir, 512);
        for i in 1..=100 {
            b.append(&element(&s, i, i, 64)).unwrap();
        }
        Box::new(b).destroy().unwrap();
        assert!(std::fs::read_dir(&dir).unwrap().next().is_none());
    }
}
