//! Pluggable storage backends for [`crate::StreamTable`]: in-memory vectors or the
//! persistent page engine.
//!
//! The paper's storage layer "provid[es] and manag[es] persistent storage for data
//! streams" (Section 4) — the original GSN delegated this to MySQL tables.  GSN-RS keeps
//! the same split behind one trait:
//!
//! * [`MemoryBackend`] — the seed behaviour: elements in a `Vec`, exact retention,
//!   zero-copy window evaluation. Right for bounded source windows.
//! * [`PersistentBackend`] — a segmented heap of slotted pages behind a bounded
//!   [`SharedBufferPool`], with a write-ahead log for rows that have not reached a page
//!   on disk yet.  Tables can grow far beyond RAM; windowed scans stream through the
//!   pool.  Under a [`crate::StorageManager`] every durable table shares one
//!   container-wide pool (global page budget, cross-table eviction).
//!
//! (The disk-spilled window backend, which combines both, lives in [`crate::spill`].)
//!
//! ### Persistent write path
//!
//! `append` encodes the row once, logs it to the WAL (durability), then places it in the
//! tail page inside the buffer pool (dirty pages reach disk on eviction or checkpoint).
//! A checkpoint — triggered by WAL growth or [`StorageBackend::flush`] — flushes dirty
//! pages, fsyncs the heap, persists the prune watermark and resets the WAL.
//! [`crate::StreamTable`] flushes on drop, so a cleanly dropped container checkpoints.
//!
//! ### Recovery
//!
//! Opening an existing table scans every segment's pages front to back (rebuilding the
//! per-page index: row counts, timestamp ranges, byte totals), truncates at the first
//! torn tail page, then replays WAL rows whose sequence exceeds the highest heap
//! sequence.  Rows that reached disk through an evicted dirty page are therefore never
//! duplicated, and rows that only made it to the log are never lost.  Segment headers
//! record each segment's `first_row`, so the global row numbering — and with it the
//! exact sequence→row mapping (`sequence s` ⇔ `global row s − 1`) — survives head
//! deletion and compaction.
//!
//! ### Pruning and reclamation
//!
//! Persistent tables prune at *page granularity*: a logical watermark advances over
//! whole dead pages, which scans then skip.  A persistent table may briefly retain
//! slightly more history than an exact in-memory table would — windows re-filter at
//! read time, so query results are identical.  The maintenance pass
//! ([`StorageBackend::reclaim`], see [`crate::retention`]) then turns the watermark
//! into reclaimed file space: fully dead head segments are deleted and the boundary
//! segment is compacted.

use std::collections::HashSet;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use gsn_types::{codec, GsnError, GsnResult, StreamElement, StreamSchema, Timestamp};
use parking_lot::Mutex;

use crate::buffer::{BufferPoolStats, PageIo, SharedBufferPool, TableId};
use crate::index::{self, PageSummary, SegmentIndex};
use crate::page::{Page, PageId, MAX_INLINE_RECORD};
use crate::retention::{DiskUsage, ReclaimStats, COMPACT_MIN_DEAD_RATIO};
use crate::segment::{
    global_page_id, segment_of, SegmentedHeap, DEFAULT_SEGMENT_PAGES, MAX_SEGMENT_PAGES,
};
use crate::telemetry::StorageTelemetry;
use crate::wal::{SyncMode, TableWal, Wal, WalSet};
use crate::window::WindowSpec;

/// Which engine backs a table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Elements held in an in-memory vector.
    Memory,
    /// Elements in a segmented page file behind a buffer pool.
    Persistent,
    /// A memory-resident tail with the cold prefix spilled to a persistent segment
    /// store (see [`crate::spill::SpillingBackend`]).
    Spilled,
}

/// Tuning knobs for [`PersistentBackend`].
#[derive(Debug, Clone)]
pub struct PersistentOptions {
    /// Buffer-pool page budget (resident memory ≈ `pool_pages` × 8 KiB).  When
    /// `shared_pool` is `None` this sizes the table's private pool; the
    /// [`crate::StorageManager`] instead interprets it as the *container-wide* budget of
    /// the one [`SharedBufferPool`] every durable table shares.
    pub pool_pages: usize,
    /// WAL durability mode.
    pub sync: SyncMode,
    /// Auto-checkpoint once the WAL exceeds this many bytes.
    pub wal_checkpoint_bytes: u64,
    /// Group commit: defer [`SyncMode::Always`] fsyncs to an explicit
    /// [`StorageBackend::sync_wal`] (the container calls it once per step, amortising
    /// one fsync across every row ingested in that step).
    pub group_commit: bool,
    /// The shared buffer pool to register this table's pages with.  `None` gives the
    /// table a private pool of `pool_pages` frames (standalone use, tests).
    pub shared_pool: Option<Arc<SharedBufferPool>>,
    /// Clock regions a *private* pool is split into (`0` = the pool's default).  A
    /// shared pool arrives already sharded; this knob only shapes the fallback.
    pub pool_regions: usize,
    /// The container-wide sharded log set to append this table's WAL records to.
    /// `None` keeps a private `<table>.wal` file (standalone use, tests).  When set,
    /// the table joins the shard its name hashes to, and any pre-existing private log
    /// is replayed and retired at the next checkpoint.
    pub shared_wal: Option<Arc<WalSet>>,
    /// Pages per heap segment (clamped to `1..=`[`MAX_SEGMENT_PAGES`]).  Smaller
    /// segments reclaim space at a finer grain at the cost of more files; the default
    /// is ≈1 MiB per segment.
    pub segment_pages: u32,
    /// Storage telemetry handles the backend records index seeks and page skips
    /// into.  Default handles are detached (recording works, nothing is exported);
    /// the [`crate::StorageManager`] passes its container-wide handles so the
    /// counters surface through the metrics registry.
    pub telemetry: StorageTelemetry,
}

impl Default for PersistentOptions {
    fn default() -> Self {
        PersistentOptions {
            pool_pages: 64,
            sync: SyncMode::default(),
            wal_checkpoint_bytes: 4 << 20,
            group_commit: false,
            shared_pool: None,
            pool_regions: 0,
            shared_wal: None,
            segment_pages: DEFAULT_SEGMENT_PAGES,
            telemetry: StorageTelemetry::default(),
        }
    }
}

/// Pushed-down scan bounds, derived by the SQL optimizer from sargable
/// predicates (and a safe limit hint) on the implicit `PK` / `TIMED` columns.
///
/// All bounds are *hints* that let a backend skip storage it would otherwise
/// read: a backend may return a **superset** of the qualifying rows (the
/// executor re-applies the originating predicate row-wise above the scan), but
/// must never drop a row the bounds admit.  `min_seq`/`max_seq` are inclusive
/// sequence bounds; `min_ts`/`max_ts` are inclusive timestamp bounds in
/// milliseconds; `limit` caps the rows the consumer will pull and is only
/// forwarded by callers when nothing between storage and the limit operator can
/// drop rows (no residual predicate, no time bounds, no sampling).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScanBounds {
    /// Inclusive lower sequence bound (`pk >= n`).
    pub min_seq: Option<u64>,
    /// Inclusive upper sequence bound (`pk <= n`).
    pub max_seq: Option<u64>,
    /// Inclusive lower timestamp bound in millis (`timed >= t`).
    pub min_ts: Option<i64>,
    /// Inclusive upper timestamp bound in millis (`timed <= t`).
    pub max_ts: Option<i64>,
    /// Upper bound on rows the consumer will pull.
    pub limit: Option<u64>,
}

impl ScanBounds {
    /// True when no bound is set (the scan reads everything the window selects).
    pub fn is_unbounded(&self) -> bool {
        *self == ScanBounds::default()
    }
}

/// Upper bound on elements per batch handed out by a memory-backend scan cursor
/// (persistent cursors batch by page instead: one buffer-pool page per call).
pub(crate) const MEMORY_SCAN_BATCH: usize = 1024;

/// The resumable position of a pull-based scan started with
/// [`StorageBackend::open_scan`].
///
/// The state is opaque to callers and holds no lock or borrow: each
/// [`StorageBackend::scan_next`] call re-enters the backend, so a cursor can be held
/// across lock scopes (and across container steps) while the table keeps ingesting.
/// Persistent scans pin **one buffer-pool page per batch** — a cursor over a
/// multi-gigabyte heap needs one page frame plus one page worth of decoded rows,
/// and a consumer that stops pulling (`LIMIT`) leaves the remaining pages unread.
#[derive(Debug)]
pub struct ScanState(pub(crate) ScanStateInner);

#[derive(Debug)]
pub(crate) enum ScanStateInner {
    /// Pre-materialised elements drained in bounded chunks (the empty scan).
    Buffered {
        elements: Vec<StreamElement>,
        pos: usize,
    },
    /// Memory-backend (and spill-backend) scan tracked by *sequence bounds*: each batch
    /// re-resolves its position with a binary search over the (monotonically sequenced)
    /// element vector, so nothing is cloned up front — a `LIMIT` consumer copies only
    /// the rows it pulls — and pruning between pulls shifts no indices.
    Sequence { next_seq: u64, end_seq: u64 },
    /// Persistent scans walk the heap one page per batch through the buffer pool,
    /// tracked by *global row index*: each batch re-resolves the page currently holding
    /// `next_row` through the page index.  Head-segment deletion and compaction move
    /// rows to new pages but never renumber them, so a cursor held across a concurrent
    /// reclamation keeps reading exactly the rows it would have.
    Rows {
        /// Global index of the next row to consider (pre-prune numbering).
        next_row: u64,
        /// Snapshot bound (exclusive): rows appended after the scan opened are not
        /// visited, even though the tail page keeps filling.
        end_row: u64,
        /// Time-window cutoff: emit from the first element at/after it onwards.
        cutoff: Option<Timestamp>,
        /// Whether the cutoff has been passed (partition-point semantics).
        passed: bool,
        /// Inclusive pushed-down timestamp bounds (millis): pages whose stamp
        /// range falls entirely outside are skipped without a read.  Bounds are
        /// page-granular hints — the executor re-filters row-wise.
        min_ts: Option<i64>,
        /// See `min_ts`.
        max_ts: Option<i64>,
    },
}

impl ScanState {
    /// A scan that yields nothing.
    pub(crate) fn empty() -> ScanState {
        ScanState(ScanStateInner::Buffered {
            elements: Vec::new(),
            pos: 0,
        })
    }

    /// A scan over the inclusive sequence range `[next_seq, end_seq]`, resolved lazily
    /// per batch (the spill backend's cross-boundary cursor representation).
    pub(crate) fn sequence_range(next_seq: u64, end_seq: u64) -> ScanState {
        ScanState(ScanStateInner::Sequence { next_seq, end_seq })
    }
}

/// Drains the next bounded chunk of an up-front-selected element list.
pub(crate) fn memory_scan_next(
    elements: &[StreamElement],
    pos: &mut usize,
) -> Option<Vec<StreamElement>> {
    if *pos >= elements.len() {
        return None;
    }
    let end = (*pos + MEMORY_SCAN_BATCH).min(elements.len());
    let batch = elements[*pos..end].to_vec();
    *pos = end;
    Some(batch)
}

/// The storage engine behind one stream table.
pub trait StorageBackend: Send + Sync + fmt::Debug {
    /// Which engine this is.
    fn kind(&self) -> BackendKind;

    /// Appends an element (already carrying its sequence number).
    fn append(&mut self, element: &StreamElement) -> GsnResult<()>;

    /// Number of live (unpruned) elements.
    fn len(&self) -> usize;

    /// True when no live element is stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The most recently appended element.
    fn last(&self) -> Option<StreamElement>;

    /// Timestamp of the oldest live element.
    fn first_timestamp(&self) -> GsnResult<Option<Timestamp>>;

    /// Payload bytes currently retained (page-granular for persistent tables).
    fn retained_bytes(&self) -> usize;

    /// Highest sequence number ever appended (0 when empty) — recovery hands this to the
    /// table so numbering continues across restarts.
    fn max_sequence(&self) -> u64;

    /// Streams the elements selected by `window` at `now`, oldest first, through
    /// `visit`. Persistent backends read through the buffer pool; memory stays
    /// zero-copy.
    fn scan_window(
        &self,
        window: WindowSpec,
        now: Timestamp,
        visit: &mut dyn FnMut(&StreamElement),
    ) -> GsnResult<()>;

    /// Begins a pull-based scan of the elements selected by `window` at `now`, oldest
    /// first.  The returned state is advanced with [`scan_next`](Self::scan_next);
    /// a consumer that stops pulling reads no further storage.
    fn open_scan(&self, window: WindowSpec, now: Timestamp) -> GsnResult<ScanState>;

    /// Like [`open_scan`](Self::open_scan), additionally seeded with pushed-down
    /// [`ScanBounds`]: the backend seeks its page index to the first qualifying
    /// row and skips pages the bounds rule out.  Bounds are superset-safe hints
    /// (see [`ScanBounds`]); the default implementation ignores them, which is
    /// always correct.
    fn open_scan_bounded(
        &self,
        window: WindowSpec,
        now: Timestamp,
        bounds: &ScanBounds,
    ) -> GsnResult<ScanState> {
        let _ = bounds;
        self.open_scan(window, now)
    }

    /// Begins a *delta* scan: every live element whose sequence number is strictly
    /// greater than `after`, oldest first.  This is the resume point of incremental
    /// continuous-query evaluation — a registered query remembers the last sequence it
    /// processed and re-enters here, so only new rows are read per stream element
    /// instead of the full history window.
    fn open_scan_after(&self, after: u64) -> GsnResult<ScanState>;

    /// Sequence number of the oldest live (unpruned) element, `None` when empty.
    /// Incremental evaluation retracts resident rows older than this, so a query's
    /// delta state tracks retention pruning exactly.
    fn first_sequence(&self) -> GsnResult<Option<u64>>;

    /// Pulls the next batch of a scan started with [`open_scan`](Self::open_scan):
    /// at most one buffer-pool page worth of rows for persistent backends, a bounded
    /// chunk for memory backends.  Returns `None` once the scan is exhausted.
    fn scan_next(&self, state: &mut ScanState) -> GsnResult<Option<Vec<StreamElement>>>;

    /// Drops the oldest elements so that at most `keep` remain (persistent backends may
    /// keep more — page granularity). Returns how many were pruned.
    fn prune_to_elements(&mut self, keep: usize) -> GsnResult<u64>;

    /// Drops elements older than `cutoff`, always keeping at least `min_keep` of the
    /// newest. Returns how many were pruned.
    fn prune_horizon(&mut self, cutoff: Timestamp, min_keep: usize) -> GsnResult<u64>;

    /// Forces all state to stable storage (checkpoint). No-op for memory tables.
    fn flush(&mut self) -> GsnResult<()>;

    /// Commits any group-committed WAL appends still pending (the per-step batched
    /// fsync; see [`PersistentOptions::group_commit`]).  Returns the number of records
    /// the drained batch contained (0 for memory tables and tables on a shared
    /// [`WalSet`], which the container commits once per step instead).
    fn sync_wal(&mut self) -> GsnResult<u64> {
        Ok(0)
    }

    /// Reclaims file space held by rows below the prune watermark: deletes fully dead
    /// head segments and compacts the partially dead boundary segment (see
    /// [`crate::retention`]).  No-op for memory tables.
    fn reclaim(&mut self) -> GsnResult<ReclaimStats> {
        Ok(ReclaimStats::default())
    }

    /// On-disk footprint and lifetime reclamation counters, when the backend owns disk
    /// state (`None` for memory tables).
    fn disk_usage(&self) -> Option<DiskUsage> {
        None
    }

    /// Buffer-pool counters, when the backend has one.
    fn pool_stats(&self) -> Option<BufferPoolStats>;

    /// Spill counters for disk-spilled window tables, as
    /// `(migration passes, rows moved to disk)`; `None` for other backends.
    fn spill_stats(&self) -> Option<(u64, u64)> {
        None
    }

    /// Removes any on-disk state (table dropped).
    fn destroy(self: Box<Self>) -> GsnResult<()>;
}

// ---------------------------------------------------------------------------------------
// In-memory backend
// ---------------------------------------------------------------------------------------

/// The seed's storage: a plain vector with exact retention.
#[derive(Debug, Default)]
pub struct MemoryBackend {
    elements: Vec<StreamElement>,
    bytes: usize,
}

impl MemoryBackend {
    /// An empty in-memory table.
    pub fn new() -> MemoryBackend {
        MemoryBackend::default()
    }

    fn drop_front(&mut self, count: usize) {
        for e in &self.elements[..count] {
            self.bytes = self.bytes.saturating_sub(e.size_bytes());
        }
        self.elements.drain(..count);
    }
}

impl StorageBackend for MemoryBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Memory
    }

    fn append(&mut self, element: &StreamElement) -> GsnResult<()> {
        self.bytes += element.size_bytes();
        self.elements.push(element.clone());
        Ok(())
    }

    fn len(&self) -> usize {
        self.elements.len()
    }

    fn last(&self) -> Option<StreamElement> {
        self.elements.last().cloned()
    }

    fn first_timestamp(&self) -> GsnResult<Option<Timestamp>> {
        Ok(self.elements.first().map(StreamElement::timestamp))
    }

    fn retained_bytes(&self) -> usize {
        self.bytes
    }

    fn max_sequence(&self) -> u64 {
        self.elements
            .last()
            .map(StreamElement::sequence)
            .unwrap_or(0)
    }

    fn scan_window(
        &self,
        window: WindowSpec,
        now: Timestamp,
        visit: &mut dyn FnMut(&StreamElement),
    ) -> GsnResult<()> {
        for element in window.select(&self.elements, now) {
            visit(element);
        }
        Ok(())
    }

    fn open_scan(&self, window: WindowSpec, now: Timestamp) -> GsnResult<ScanState> {
        let selected = window.select(&self.elements, now);
        let (Some(first), Some(last)) = (selected.first(), selected.last()) else {
            return Ok(ScanState::empty());
        };
        // Only the sequence bounds are captured; batches resolve their position
        // lazily, so a consumer that stops pulling copies nothing further.
        Ok(ScanState(ScanStateInner::Sequence {
            next_seq: first.sequence(),
            end_seq: last.sequence(),
        }))
    }

    fn open_scan_bounded(
        &self,
        window: WindowSpec,
        now: Timestamp,
        bounds: &ScanBounds,
    ) -> GsnResult<ScanState> {
        let mut state = self.open_scan(window, now)?;
        // Memory scans are cheap either way; sequence bounds still trim the
        // cloned range (timestamp bounds stay with the executor's re-filter).
        if let ScanStateInner::Sequence { next_seq, end_seq } = &mut state.0 {
            if let Some(min_seq) = bounds.min_seq {
                *next_seq = (*next_seq).max(min_seq);
            }
            if let Some(max_seq) = bounds.max_seq {
                *end_seq = (*end_seq).min(max_seq);
            }
            // Sequences are dense in the live range, so a limit hint becomes an exact
            // upper bound — unless a timestamp bound rides along (rows it drops fall
            // below the cursor, so capping here could starve the consumer).
            if bounds.min_ts.is_none() && bounds.max_ts.is_none() {
                if let Some(limit) = bounds.limit {
                    if limit == 0 {
                        return Ok(ScanState::empty());
                    }
                    *end_seq = (*end_seq).min(next_seq.saturating_add(limit - 1));
                }
            }
        }
        Ok(state)
    }

    fn open_scan_after(&self, after: u64) -> GsnResult<ScanState> {
        let end_seq = self.max_sequence();
        if end_seq <= after {
            return Ok(ScanState::empty());
        }
        Ok(ScanState(ScanStateInner::Sequence {
            next_seq: after + 1,
            end_seq,
        }))
    }

    fn first_sequence(&self) -> GsnResult<Option<u64>> {
        Ok(self.elements.first().map(StreamElement::sequence))
    }

    fn scan_next(&self, state: &mut ScanState) -> GsnResult<Option<Vec<StreamElement>>> {
        match &mut state.0 {
            ScanStateInner::Buffered { elements, pos } => Ok(memory_scan_next(elements, pos)),
            ScanStateInner::Sequence { next_seq, end_seq } => {
                // Sequences are assigned monotonically by the table, so the resume
                // point binary-searches even after a front prune shifted indices.
                let start = self.elements.partition_point(|e| e.sequence() < *next_seq);
                let batch: Vec<StreamElement> = self.elements[start..]
                    .iter()
                    .take(MEMORY_SCAN_BATCH)
                    .take_while(|e| e.sequence() <= *end_seq)
                    .cloned()
                    .collect();
                match batch.last() {
                    Some(last) => {
                        *next_seq = last.sequence() + 1;
                        Ok(Some(batch))
                    }
                    None => Ok(None),
                }
            }
            ScanStateInner::Rows { .. } => Err(GsnError::storage(
                "page scan state handed to a memory backend",
            )),
        }
    }

    fn prune_to_elements(&mut self, keep: usize) -> GsnResult<u64> {
        let drop = self.elements.len().saturating_sub(keep);
        if drop > 0 {
            self.drop_front(drop);
        }
        Ok(drop as u64)
    }

    fn prune_horizon(&mut self, cutoff: Timestamp, min_keep: usize) -> GsnResult<u64> {
        let by_time = self.elements.partition_point(|e| e.timestamp() < cutoff);
        let drop = by_time.min(self.elements.len().saturating_sub(min_keep));
        if drop > 0 {
            self.drop_front(drop);
        }
        Ok(drop as u64)
    }

    fn flush(&mut self) -> GsnResult<()> {
        Ok(())
    }

    fn pool_stats(&self) -> Option<BufferPoolStats> {
        None
    }

    fn destroy(self: Box<Self>) -> GsnResult<()> {
        Ok(())
    }
}

// ---------------------------------------------------------------------------------------
// Persistent backend
// ---------------------------------------------------------------------------------------

/// Record chunk tags: rows larger than a page are chained across pages.
const CHUNK_FULL: u8 = 0;
const CHUNK_START: u8 = 1;
const CHUNK_MID: u8 = 2;
const CHUNK_END: u8 = 3;

/// Largest chunk payload per page record (one tag byte of framing).
const MAX_CHUNK_PAYLOAD: usize = MAX_INLINE_RECORD - 1;

/// How one encoded row lays out on pages.  This is the *single* source of the framing
/// invariants — the live append path and the compaction rewrite ([`pack_rows`]) both
/// plan through here, so the scan/rebuild parser can never see two dialects.
enum RecordLayout<'a> {
    /// Fits one page record (tag byte included): a `CHUNK_FULL` in whichever page has
    /// room.
    Inline,
    /// Chained across dedicated pages, one `MAX_CHUNK_PAYLOAD`-sized chunk each.
    Chained(Vec<&'a [u8]>),
}

fn plan_record(record: &[u8]) -> RecordLayout<'_> {
    if record.len() <= MAX_CHUNK_PAYLOAD {
        RecordLayout::Inline
    } else {
        RecordLayout::Chained(record.chunks(MAX_CHUNK_PAYLOAD).collect())
    }
}

/// The tag of chunk `i` of an `n`-chunk chain.
fn chain_tag(i: usize, n: usize) -> u8 {
    if i == 0 {
        CHUNK_START
    } else if i + 1 == n {
        CHUNK_END
    } else {
        CHUNK_MID
    }
}

/// Prepends the tag byte to a chunk payload.
fn frame_chunk(tag: u8, payload: &[u8]) -> Vec<u8> {
    let mut framed = Vec::with_capacity(payload.len() + 1);
    framed.push(tag);
    framed.extend_from_slice(payload);
    framed
}

/// In-memory index entry for one heap page (small and fixed-size: the index for a
/// gigabyte heap is a few hundred kilobytes).
#[derive(Debug, Clone)]
struct PageInfo {
    /// Global index of the first row starting at or after this page (pre-prune
    /// numbering).
    first_row: u64,
    /// Number of complete rows starting in this page.
    rows: u32,
    /// Minimum / maximum row timestamp touching this page (i64 millis).
    min_ts: i64,
    max_ts: i64,
    /// Payload bytes of rows starting in this page.
    bytes: u64,
}

impl PageInfo {
    fn empty(first_row: u64) -> PageInfo {
        PageInfo {
            first_row,
            rows: 0,
            min_ts: i64::MAX,
            max_ts: i64::MIN,
            bytes: 0,
        }
    }

    fn touch(&mut self, ts: Timestamp) {
        self.min_ts = self.min_ts.min(ts.as_millis());
        self.max_ts = self.max_ts.max(ts.as_millis());
    }

    /// Global index one past the last row starting in this page.
    fn end_row(&self) -> u64 {
        self.first_row + u64::from(self.rows)
    }
}

/// One entry of the in-memory page index: a stable global page id plus its row/byte
/// summary.  Entries are ordered by `info.first_row` (== physical row order); head
/// deletion removes a prefix and compaction replaces a run in place, so positions may
/// shift but a *row index* always re-resolves through `partition_point`.
#[derive(Debug, Clone)]
struct PageEntry {
    pid: PageId,
    info: PageInfo,
}

/// Adapts the `Arc<Mutex<SegmentedHeap>>` a backend shares with its buffer pool to the
/// pool's [`PageIo`] surface (the heap mutex is a leaf lock; see the `buffer` module
/// docs for the lock order).
struct HeapIo(Arc<Mutex<SegmentedHeap>>);

impl PageIo for HeapIo {
    fn read_page(&mut self, id: PageId) -> GsnResult<Page> {
        PageIo::read_page(&mut *self.0.lock(), id)
    }

    fn write_page(&mut self, id: PageId, page: &Page) -> GsnResult<()> {
        PageIo::write_page(&mut *self.0.lock(), id, page)
    }
}

/// RAII guard for a table's registration in its (possibly shared) buffer pool: dropping
/// the backend always releases its frames and I/O handle from the pool.
#[derive(Debug)]
struct PoolRegistration {
    pool: Arc<SharedBufferPool>,
    table: TableId,
}

impl Drop for PoolRegistration {
    fn drop(&mut self) {
        self.pool.release_table(self.table);
    }
}

#[derive(Debug)]
struct Inner {
    heap: Arc<Mutex<SegmentedHeap>>,
    wal: TableWal,
    /// Data directory and sanitized file-name base — where segment files and
    /// their index sidecars live.
    dir: PathBuf,
    base: String,
    /// Segments whose on-disk index sidecar is known current in this
    /// incarnation (validated at recovery or written since).
    sidecars: HashSet<u32>,
    pool: Arc<SharedBufferPool>,
    table_id: TableId,
    /// Keep last so the registration is released after any other cleanup.
    registration: PoolRegistration,
    /// Page index ordered by `first_row` (see [`PageEntry`]).
    index: Vec<PageEntry>,
    schema: Arc<StreamSchema>,
    /// Rows ever appended (== global index of the next row).
    total_rows: u64,
    /// Rows logically pruned from the front.
    logical_start: u64,
    /// First index position whose page still holds (the start of) a live row.
    first_live_pos: usize,
    last: Option<StreamElement>,
    max_sequence: u64,
    /// Lifetime reclamation counters of this incarnation (surfaced via
    /// [`StorageBackend::disk_usage`]).
    reclaim_totals: ReclaimStats,
    options: PersistentOptions,
}

/// A stream table stored in a page file behind a (shared) bounded buffer pool.
///
/// All state sits behind one `Mutex` so reads can go through `&self`; tables are
/// additionally serialised by the manager's per-table `RwLock`, so the mutex is
/// uncontended in practice.  Page frames live in the [`SharedBufferPool`] — one
/// container-wide budget when opened through the storage manager, a private pool
/// otherwise.
pub struct PersistentBackend {
    inner: Mutex<Inner>,
}

impl fmt::Debug for PersistentBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock();
        let segments = inner.heap.lock().segment_count();
        write!(
            f,
            "PersistentBackend({} rows, {} pages in {} segments, pool {}/{})",
            inner.total_rows - inner.logical_start,
            inner.index.len(),
            segments,
            inner.pool.resident_pages(),
            inner.pool.capacity(),
        )
    }
}

impl PersistentBackend {
    /// Opens (creating or recovering) the table stored as `<dir>/<name>.NNNNNNNN.seg`
    /// segments + `<dir>/<name>.wal`.
    pub fn open(
        dir: &Path,
        name: &str,
        schema: Arc<StreamSchema>,
        options: PersistentOptions,
    ) -> GsnResult<PersistentBackend> {
        std::fs::create_dir_all(dir)
            .map_err(|e| GsnError::storage(format!("cannot create data directory {dir:?}: {e}")))?;
        let base = sanitize_file_name(name);
        let (heap, existed) =
            SegmentedHeap::create_or_open(dir, &base, Arc::clone(&schema), options.segment_pages)?;
        let legacy_path = dir.join(format!("{base}.wal"));
        let wal = match options.shared_wal.clone() {
            Some(set) => {
                // Joining a sharded log: a private file left by a pre-sharding
                // incarnation stays readable until the next checkpoint retires it.
                let legacy = match legacy_path.exists() {
                    true => Some(Wal::open(&legacy_path, options.sync)?),
                    false => None,
                };
                TableWal::Shared {
                    set,
                    tag: base.clone(),
                    legacy,
                }
            }
            None => {
                let mut own = Wal::open(&legacy_path, options.sync)?;
                own.set_group_commit(options.group_commit)?;
                TableWal::Own(own)
            }
        };

        // Rows below the persisted watermark — or below the first surviving segment
        // (head segments deleted by a previous incarnation's reclamation) — are dead.
        let logical_start = heap.watermark().max(heap.min_first_row().unwrap_or(0));
        let heap = Arc::new(Mutex::new(heap));
        let pool = options.shared_pool.clone().unwrap_or_else(|| {
            Arc::new(match options.pool_regions {
                0 => SharedBufferPool::new(options.pool_pages),
                n => SharedBufferPool::with_regions(options.pool_pages, n),
            })
        });
        let table_id = pool.register_table(Box::new(HeapIo(Arc::clone(&heap))));

        let mut inner = Inner {
            registration: PoolRegistration {
                pool: Arc::clone(&pool),
                table: table_id,
            },
            pool,
            table_id,
            dir: dir.to_path_buf(),
            base,
            sidecars: HashSet::new(),
            index: Vec::new(),
            schema,
            total_rows: 0,
            logical_start,
            first_live_pos: 0,
            last: None,
            max_sequence: 0,
            reclaim_totals: ReclaimStats::default(),
            options,
            heap,
            wal,
        };

        if existed {
            inner.rebuild_index()?;
            let heap_max_sequence = inner.max_sequence;
            // Replay WAL rows the heap does not have yet.
            for record in inner.wal.replay()? {
                let mut cursor: &[u8] = &record;
                let element = codec::decode_row(&mut cursor, &inner.schema)?;
                if element.sequence() > heap_max_sequence {
                    inner.append_to_pages(&record, &element)?;
                }
            }
        } else if inner.wal.len_bytes() > 0 {
            // Fresh table next to stale WAL records from a dropped predecessor: clear
            // them (shared logs write a durable tombstone so they never resurrect).
            inner.wal.clear_stale()?;
        }
        inner.refresh_first_live_pos();

        Ok(PersistentBackend {
            inner: Mutex::new(inner),
        })
    }

    /// Opens the table as a *fresh* store, wiping any segment/WAL files a previous
    /// incarnation left behind — the disk-spilled window path, whose contents are a
    /// rebuildable cache of live stream data.
    pub fn open_fresh(
        dir: &Path,
        name: &str,
        schema: Arc<StreamSchema>,
        options: PersistentOptions,
    ) -> GsnResult<PersistentBackend> {
        std::fs::create_dir_all(dir)
            .map_err(|e| GsnError::storage(format!("cannot create data directory {dir:?}: {e}")))?;
        let base = sanitize_file_name(name);
        SegmentedHeap::wipe(dir, &base)?;
        match std::fs::remove_file(dir.join(format!("{base}.wal"))) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(GsnError::storage(format!("cannot wipe stale WAL: {e}"))),
        }
        PersistentBackend::open(dir, name, schema, options)
    }

    /// Resident page count, capacity, and hit/eviction counters of the pool.
    pub fn buffer_stats(&self) -> (usize, usize, BufferPoolStats) {
        let inner = self.inner.lock();
        (
            inner.pool.resident_pages(),
            inner.pool.capacity(),
            inner.pool.stats(),
        )
    }
}

/// Keeps table names filesystem-safe (they come from validated sensor names + aliases,
/// but storage does not rely on that).
pub(crate) fn sanitize_file_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect()
}

impl Inner {
    /// Scans every segment's pages in row order, rebuilding the in-memory page index
    /// and finding the last element and highest sequence.  Global row numbering is
    /// anchored at each segment header's `first_row`, so it survives head deletion and
    /// compaction by previous incarnations.
    fn rebuild_index(&mut self) -> GsnResult<()> {
        self.index.clear();
        self.sidecars.clear();
        self.last = None;
        self.max_sequence = 0;
        let (spans, tail_segment): (Vec<(u32, u64, PageId)>, Option<u32>) = {
            let heap = self.heap.lock();
            (
                heap.segments()
                    .map(|s| (s.segment_id(), s.first_row(), s.page_count()))
                    .collect(),
                heap.tail_segment_id(),
            )
        };
        let mut chain: Vec<u8> = Vec::new();
        let mut chain_open = false;
        let mut chain_start_pos = 0usize;
        let mut counted = 0u64;
        let mut used_sidecar = false;
        for &(segment_id, seg_first_row, page_count) in &spans {
            // Sealed segments with a valid sidecar rebuild without reading a
            // single page.  The tail segment is always page-scanned (its sidecar
            // is never current), as is any segment a not-yet-closed chain runs
            // into — the chain's row count lives in its START page, which the
            // scan must finish.
            if Some(segment_id) != tail_segment && !chain_open {
                if let Some(sidecar) = index::load_sidecar(&self.dir, &self.base, segment_id) {
                    if sidecar.first_row == seg_first_row
                        && sidecar.pages.len() as PageId == page_count
                    {
                        for (local, page) in sidecar.pages.iter().enumerate() {
                            counted += u64::from(page.rows);
                            self.index.push(PageEntry {
                                pid: global_page_id(segment_id, local as PageId),
                                info: PageInfo {
                                    first_row: 0, // prefix-summed below
                                    rows: page.rows,
                                    min_ts: page.min_ts,
                                    max_ts: page.max_ts,
                                    bytes: page.bytes,
                                },
                            });
                        }
                        self.sidecars.insert(segment_id);
                        used_sidecar = true;
                        continue;
                    }
                }
            }
            for local in 0..page_count {
                let pid = global_page_id(segment_id, local);
                let page = self.heap.lock().read_page(pid)?;
                self.index.push(PageEntry {
                    pid,
                    info: PageInfo::empty(0),
                });
                let current = self.index.len() - 1;
                for record in page.records() {
                    let (tag, payload) = split_chunk(record)?;
                    match tag {
                        CHUNK_FULL => {
                            let element = decode_payload(payload, &self.schema)?;
                            let info = &mut self.index[current].info;
                            info.rows += 1;
                            info.bytes += payload.len() as u64;
                            info.touch(element.timestamp());
                            counted += 1;
                            self.note_element(&element);
                            chain_open = false;
                        }
                        CHUNK_START => {
                            chain.clear();
                            chain.extend_from_slice(payload);
                            chain_open = true;
                            chain_start_pos = current;
                        }
                        CHUNK_MID if chain_open => chain.extend_from_slice(payload),
                        CHUNK_END if chain_open => {
                            chain.extend_from_slice(payload);
                            let element = decode_payload(&chain, &self.schema)?;
                            // The row belongs to the page its START chunk lives in.
                            let owner = &mut self.index[chain_start_pos].info;
                            owner.rows += 1;
                            owner.bytes += chain.len() as u64;
                            owner.touch(element.timestamp());
                            self.index[current].info.touch(element.timestamp());
                            counted += 1;
                            self.note_element(&element);
                            chain_open = false;
                        }
                        // An orphan continuation chunk: either the torn tail of a chain
                        // whose start was truncated (the WAL has the row) or the
                        // leftover of a chain whose owning row was compacted away.
                        CHUNK_MID | CHUNK_END => {}
                        other => {
                            return Err(GsnError::storage(format!(
                                "corrupt chunk tag {other} in page {pid}"
                            )))
                        }
                    }
                }
            }
        }
        // Assign absolute first_row per page: a prefix sum re-anchored at each segment
        // header (the headers carry the numbering across reclaimed predecessors).
        let mut next = 0u64;
        let mut pos = 0usize;
        for &(segment_id, seg_first_row, page_count) in &spans {
            debug_assert!(
                pos == 0 || next == seg_first_row,
                "segment {segment_id} header first_row {seg_first_row} disagrees with scan ({next})"
            );
            next = seg_first_row;
            for _ in 0..page_count {
                self.index[pos].info.first_row = next;
                next += u64::from(self.index[pos].info.rows);
                pos += 1;
            }
        }
        // Cross-check: the header-anchored prefix sums must account for exactly the
        // rows the scan recovered (their difference is the reclaimed-away prefix).
        debug_assert_eq!(
            spans.first().map(|s| s.1).unwrap_or(0) + counted,
            next,
            "recovered row count disagrees with the segment headers"
        );
        self.total_rows = next;
        // Sidecar-covered segments were never read, so `last`/`max_sequence`
        // may still reflect only the page-scanned tail.  Re-derive them from
        // the page(s) holding the final row (at most one page plus chain
        // spill-over) — the only page I/O a fully sidecar-indexed recovery
        // performs.
        if used_sidecar && self.total_rows > 0 {
            let target = self.total_rows - 1;
            let from_pos = self.index.partition_point(|e| e.info.end_row() <= target);
            // Bypass the prune watermark: `last` tracks the newest row ever
            // appended, and the final row may sit below `logical_start`.
            let saved_start = self.logical_start;
            self.logical_start = 0;
            let mut last: Option<StreamElement> = None;
            let scanned = self.scan_payloads(from_pos, u64::MAX, &mut |e| last = Some(e.clone()));
            self.logical_start = saved_start;
            scanned?;
            if let Some(element) = last {
                self.note_element(&element);
            }
        }
        Ok(())
    }

    fn note_element(&mut self, element: &StreamElement) {
        self.max_sequence = self.max_sequence.max(element.sequence());
        self.last = Some(element.clone());
    }

    fn note_row(&mut self, element: &StreamElement) {
        self.total_rows += 1;
        self.note_element(element);
    }

    fn refresh_first_live_pos(&mut self) {
        let mut first = self.first_live_pos.min(self.index.len());
        while first < self.index.len() && self.index[first].info.end_row() <= self.logical_start {
            self.pool.discard(self.table_id, self.index[first].pid);
            first += 1;
        }
        self.first_live_pos = first;
    }

    fn live_rows(&self) -> u64 {
        self.total_rows.saturating_sub(self.logical_start)
    }

    /// Appends an encoded row to the tail page(s) through the pool (WAL already written
    /// by the caller when required).
    fn append_to_pages(&mut self, record: &[u8], element: &StreamElement) -> GsnResult<()> {
        let ts = element.timestamp();
        match plan_record(record) {
            RecordLayout::Inline => {
                // Single chunk: tail page if it fits, else a fresh page.
                let needed = record.len() + 1;
                let target = match self.index.len().checked_sub(1) {
                    Some(pos) if self.tail_page_fits(self.index[pos].pid, needed)? => pos,
                    _ => self.start_new_page(self.total_rows)?,
                };
                self.append_chunk(target, CHUNK_FULL, record)?;
                let info = &mut self.index[target].info;
                info.rows += 1;
                info.bytes += record.len() as u64;
                info.touch(ts);
            }
            RecordLayout::Chained(chunks) => {
                // Chain across fresh pages.  Roll to a new segment up front when the
                // chain would not fit the tail segment's remaining pages (chains larger
                // than a whole segment still span segments).
                let n = chunks.len();
                self.heap.lock().reserve_chain(n as u32, self.total_rows)?;
                let mut start_pos = 0usize;
                for (i, chunk) in chunks.iter().enumerate() {
                    // Continuation pages: the next row to start is this one plus one.
                    let target = self.start_new_page(self.total_rows + u64::from(i > 0))?;
                    if i == 0 {
                        start_pos = target;
                    }
                    self.append_chunk(target, chain_tag(i, n), chunk)?;
                    self.index[target].info.touch(ts);
                }
                let info = &mut self.index[start_pos].info;
                info.rows += 1;
                info.bytes += record.len() as u64;
            }
        }
        self.note_row(element);
        Ok(())
    }

    fn append_chunk(&mut self, target: usize, tag: u8, payload: &[u8]) -> GsnResult<()> {
        let framed = frame_chunk(tag, payload);
        let pid = self.index[target].pid;
        self.pool.with_page_mut(self.table_id, pid, |page| {
            page.append(&framed)
                .map(|_| ())
                .ok_or_else(|| GsnError::storage("page unexpectedly full during append"))
        })?
    }

    fn tail_page_fits(&mut self, pid: PageId, needed: usize) -> GsnResult<bool> {
        self.pool
            .with_page(self.table_id, pid, |page| page.free_space() >= needed)
    }

    /// Allocates a fresh page at the tail: written empty to the heap immediately (so the
    /// segment stays contiguous for recovery) and kept dirty in the pool for filling.
    /// Rolls to a new segment — recording `first_row` in its header — when the tail
    /// segment is full.
    ///
    /// The previous tail page is *completed* at this moment and will never be modified
    /// again, so it is written through right away. This keeps the on-disk heap a
    /// gap-free prefix of the table — the invariant WAL recovery relies on (replay fills
    /// exactly the rows past the heap's highest sequence).  Returns the page's index
    /// position.
    fn start_new_page(&mut self, first_row: u64) -> GsnResult<usize> {
        if let Some(entry) = self.index.last() {
            self.pool.flush_page(self.table_id, entry.pid)?;
        }
        let pid = {
            let mut heap = self.heap.lock();
            let pid = heap.next_page_id(first_row)?;
            heap.write_page(pid, &Page::new())?;
            pid
        };
        self.pool.install(self.table_id, pid, Page::new())?;
        self.index.push(PageEntry {
            pid,
            info: PageInfo::empty(first_row),
        });
        Ok(self.index.len() - 1)
    }

    /// Streams live rows from index position `from_pos` onward through `visit`, oldest
    /// first.  Stops early once `limit` rows have been visited.
    ///
    /// Pages stream through the buffer pool one at a time: resident memory is the pool
    /// budget plus one page worth of decoded rows (or one oversized chained row).
    fn scan_payloads(
        &mut self,
        from_pos: usize,
        limit: u64,
        visit: &mut dyn FnMut(&StreamElement),
    ) -> GsnResult<()> {
        if from_pos >= self.index.len() || limit == 0 {
            return Ok(());
        }
        let mut row_index = self.index[from_pos].info.first_row;
        let logical_start = self.logical_start;
        let schema = Arc::clone(&self.schema);
        let mut visited = 0u64;
        let mut chain: Vec<u8> = Vec::new();
        let mut chain_open = false;
        for pos in from_pos..self.index.len() {
            let pid = self.index[pos].pid;
            // Decode under the pool borrow into a per-page batch, then emit.
            let mut emit: Vec<StreamElement> = Vec::new();
            self.pool.with_page(self.table_id, pid, |page| {
                for record in page.records() {
                    let (tag, payload) = split_chunk(record)?;
                    match tag {
                        CHUNK_FULL => {
                            if row_index >= logical_start {
                                emit.push(decode_payload(payload, &schema)?);
                            }
                            row_index += 1;
                        }
                        CHUNK_START => {
                            chain.clear();
                            chain.extend_from_slice(payload);
                            chain_open = true;
                        }
                        CHUNK_MID if chain_open => chain.extend_from_slice(payload),
                        CHUNK_END if chain_open => {
                            chain.extend_from_slice(payload);
                            if row_index >= logical_start {
                                emit.push(decode_payload(&chain, &schema)?);
                            }
                            row_index += 1;
                            chain_open = false;
                        }
                        CHUNK_MID | CHUNK_END => {}
                        other => {
                            return Err(GsnError::storage(format!(
                                "corrupt chunk tag {other} in page {pid}"
                            )))
                        }
                    }
                }
                Ok(())
            })??;
            for element in &emit {
                visit(element);
                visited += 1;
                if visited >= limit {
                    return Ok(());
                }
            }
        }
        Ok(())
    }

    /// Computes the starting row of a pull-based window scan.
    ///
    /// Count windows resolve to an *exact* start row through the page index (per-page
    /// `first_row` prefix sums), so a `Count(n)` cursor touches only the pages that
    /// actually hold the trailing `n` rows.
    fn open_scan_state(&self, window: WindowSpec, now: Timestamp) -> ScanState {
        let live = self.live_rows();
        if live == 0 {
            return ScanState::empty();
        }
        let (next_row, cutoff) = match window {
            WindowSpec::Count(n) if (n as u64) >= live => (self.logical_start, None),
            WindowSpec::Count(_) | WindowSpec::LatestOnly => {
                let n = match window {
                    WindowSpec::LatestOnly => 1u64,
                    WindowSpec::Count(n) => n as u64,
                    WindowSpec::Time(_) => unreachable!(),
                };
                // Count(0) is rejected by descriptor parsing but reachable through the
                // public API; it selects nothing.
                if n == 0 {
                    return ScanState::empty();
                }
                (self.total_rows - n, None)
            }
            WindowSpec::Time(d) => {
                let cutoff = now.saturating_sub(d);
                // Page-level skip: pages whose newest timestamp predates the cutoff
                // cannot contribute.
                let mut pos = self.first_live_pos;
                while pos < self.index.len()
                    && self.index[pos].info.rows > 0
                    && self.index[pos].info.max_ts < cutoff.as_millis()
                {
                    pos += 1;
                }
                if pos >= self.index.len() {
                    return ScanState::empty();
                }
                (
                    self.index[pos].info.first_row.max(self.logical_start),
                    Some(cutoff),
                )
            }
        };
        ScanState(ScanStateInner::Rows {
            next_row,
            end_row: self.total_rows,
            cutoff,
            passed: false,
            min_ts: None,
            max_ts: None,
        })
    }

    /// [`open_scan_state`](Self::open_scan_state) with pushed-down bounds: the
    /// sequence bounds clamp the row range exactly (sequence `s` ⇔ global row
    /// `s − 1`), the timestamp bounds arm page-granular skipping, and a limit
    /// hint trims the snapshot bound when nothing downstream can drop rows.
    ///
    /// Time windows (partition-point semantics) take no bounds: a mid-scan skip
    /// could swallow the partition point and change which out-of-order rows the
    /// window admits.  Such scans simply fall back to the unbounded state.
    fn open_scan_state_bounded(
        &self,
        window: WindowSpec,
        now: Timestamp,
        bounds: &ScanBounds,
    ) -> ScanState {
        let mut state = self.open_scan_state(window, now);
        if bounds.is_unbounded() {
            return state;
        }
        if let ScanStateInner::Rows {
            next_row,
            end_row,
            cutoff: None,
            min_ts,
            max_ts,
            ..
        } = &mut state.0
        {
            if let Some(min_seq) = bounds.min_seq {
                *next_row = (*next_row).max(min_seq.saturating_sub(1));
            }
            if let Some(max_seq) = bounds.max_seq {
                // Row `max_seq − 1` is the last admissible row, so the
                // exclusive snapshot bound clamps to `max_seq`.
                *end_row = (*end_row).min(max_seq);
            }
            *min_ts = bounds.min_ts;
            *max_ts = bounds.max_ts;
            if let (Some(limit), None, None) = (bounds.limit, *min_ts, *max_ts) {
                *end_row = (*end_row).min(next_row.saturating_add(limit));
            }
            self.options.telemetry.index_seeks.inc();
        }
        state
    }

    /// A pull-based scan starting at an exact global row index (pre-prune numbering):
    /// the delta-cursor entry point.  Sequence numbers are assigned contiguously from 1
    /// by the owning [`crate::StreamTable`] (and preserved across recovery *and*
    /// segment reclamation — segment headers pin the numbering), so the row with
    /// sequence `s` lives at global index `s - 1` — a "rows after sequence `after`"
    /// scan starts at global index `after`.
    fn open_scan_from_row(&self, target: u64) -> ScanState {
        let target = target.max(self.logical_start);
        if target >= self.total_rows {
            return ScanState::empty();
        }
        ScanState(ScanStateInner::Rows {
            next_row: target,
            end_row: self.total_rows,
            cutoff: None,
            passed: false,
            min_ts: None,
            max_ts: None,
        })
    }

    /// Advances a row scan by (at least) one page, returning its live rows.
    ///
    /// The page holding `next_row` is re-resolved through the index on every call, so
    /// concurrent pruning, head-segment deletion and compaction between batches never
    /// invalidate the cursor: live rows keep their global index wherever they move.
    /// Pages holding only skipped/orphan records are passed over until something emits
    /// or the scan ends; a row chained across pages is completed eagerly within the
    /// call (its continuation pages are read in the same batch).
    fn scan_rows_next(
        &mut self,
        next_row: &mut u64,
        end_row: u64,
        cutoff: Option<Timestamp>,
        passed: &mut bool,
        min_ts: Option<i64>,
        max_ts: Option<i64>,
    ) -> GsnResult<Option<Vec<StreamElement>>> {
        let end = end_row.min(self.total_rows);
        let next = (*next_row).max(self.logical_start);
        if next >= end {
            return Ok(None);
        }
        let start_pos = self.index.partition_point(|e| e.info.end_row() <= next);
        if start_pos >= self.index.len() {
            return Ok(None);
        }
        let schema = Arc::clone(&self.schema);
        let mut row_cursor = self.index[start_pos].info.first_row;
        let mut emit: Vec<StreamElement> = Vec::new();
        let mut chain: Vec<u8> = Vec::new();
        let mut chain_open = false;
        let mut stop = false;
        let mut pos = start_pos;
        while pos < self.index.len() {
            // Pushed-down timestamp bounds: a page whose whole stamp range falls
            // outside cannot contribute a qualifying row (every row *touching*
            // the page is covered by its range, chained rows included), so it is
            // skipped without a read.  A page mid-chain is never skipped — its
            // continuation chunks belong to a row that started in an admissible
            // page.
            if !chain_open && (min_ts.is_some() || max_ts.is_some()) {
                let info = &self.index[pos].info;
                let outside = info.rows > 0
                    && (min_ts.is_some_and(|bound| info.max_ts < bound)
                        || max_ts.is_some_and(|bound| info.min_ts > bound));
                if outside {
                    row_cursor = row_cursor.max(info.end_row());
                    self.options.telemetry.index_pages_skipped.inc();
                    pos += 1;
                    if row_cursor >= end {
                        break;
                    }
                    continue;
                }
            }
            let pid = self.index[pos].pid;
            let page_stop = self.pool.with_page(self.table_id, pid, |page| {
                let mut stop_here = false;
                // Returns `true` once the snapshot bound is reached.
                let mut complete = |payload: &[u8]| -> GsnResult<bool> {
                    if row_cursor < next {
                        row_cursor += 1; // window-start / prune skip
                        return Ok(false);
                    }
                    // Rows past the snapshot bound arrived after the scan opened
                    // (the tail page keeps filling) — not part of this cursor.
                    if row_cursor >= end {
                        return Ok(true);
                    }
                    let element = decode_payload(payload, &schema)?;
                    row_cursor += 1;
                    if let Some(cutoff) = cutoff {
                        if !*passed && element.timestamp() >= cutoff {
                            *passed = true;
                        }
                        if !*passed {
                            return Ok(false);
                        }
                    }
                    emit.push(element);
                    Ok(false)
                };
                for record in page.records() {
                    if stop_here {
                        break;
                    }
                    let (tag, payload) = split_chunk(record)?;
                    match tag {
                        CHUNK_FULL => stop_here = complete(payload)?,
                        CHUNK_START => {
                            chain.clear();
                            chain.extend_from_slice(payload);
                            chain_open = true;
                        }
                        CHUNK_MID if chain_open => chain.extend_from_slice(payload),
                        CHUNK_END if chain_open => {
                            chain.extend_from_slice(payload);
                            stop_here = complete(&chain[..])?;
                            chain_open = false;
                        }
                        // An orphan continuation chunk: the tail of a chain whose start
                        // lives before the scan's first page (or was compacted away) —
                        // not ours to emit.
                        CHUNK_MID | CHUNK_END => {}
                        other => {
                            return Err(GsnError::storage(format!(
                                "corrupt chunk tag {other} in page {pid}"
                            )))
                        }
                    }
                }
                Ok(stop_here)
            })??;
            if page_stop {
                stop = true;
            }
            pos += 1;
            if stop {
                break;
            }
            if chain_open {
                continue; // finish the chained row in the next page, same batch
            }
            if !emit.is_empty() {
                break; // one page (plus chain spill-over) per batch
            }
            // Page yielded nothing (skipped/orphan records only): keep walking.
        }
        *next_row = row_cursor.max(next);
        if emit.is_empty() {
            Ok(None)
        } else {
            Ok(Some(emit))
        }
    }

    /// Checkpoint: pages to disk, prune watermark to the tail segment header, WAL
    /// records retired (an own log truncates; a shared-log tag is logically cleared).
    fn checkpoint(&mut self) -> GsnResult<()> {
        self.pool.flush_table(self.table_id)?;
        {
            let mut heap = self.heap.lock();
            heap.set_watermark(self.logical_start)?;
            heap.sync()?;
        }
        self.write_missing_sidecars()?;
        self.wal.checkpoint()
    }

    /// Persists an index sidecar for every sealed (non-tail) segment that does
    /// not have a current one — the incremental maintenance hook of checkpoint.
    /// Sealed segments never change except through compaction (which writes its
    /// own fresh sidecar) and deletion (which removes it), so one write per
    /// segment lifetime suffices.
    fn write_missing_sidecars(&mut self) -> GsnResult<()> {
        let tail = self.heap.lock().tail_segment_id();
        let mut pos = 0usize;
        while pos < self.index.len() {
            let segment = segment_of(self.index[pos].pid);
            let len = self.index[pos..]
                .iter()
                .take_while(|e| segment_of(e.pid) == segment)
                .count();
            if Some(segment) != tail && !self.sidecars.contains(&segment) {
                let entries = &self.index[pos..pos + len];
                index::write_sidecar(
                    &self.dir,
                    &self.base,
                    &SegmentIndex {
                        segment_id: segment,
                        first_row: entries[0].info.first_row,
                        pages: entries.iter().map(|e| page_summary(&e.info)).collect(),
                    },
                )?;
                self.sidecars.insert(segment);
            }
            pos += len;
        }
        Ok(())
    }

    // -----------------------------------------------------------------------------------
    // Reclamation (the retention maintenance pass)
    // -----------------------------------------------------------------------------------

    /// Index positions of the head (oldest) segment, with its id — `None` when the index
    /// is empty or the head segment is the tail (actively written).
    fn head_segment_span(&self) -> Option<(u32, usize)> {
        let first = self.index.first()?;
        let segment = segment_of(first.pid);
        if self.heap.lock().tail_segment_id() == Some(segment) {
            return None;
        }
        let len = self
            .index
            .iter()
            .take_while(|e| segment_of(e.pid) == segment)
            .count();
        Some((segment, len))
    }

    /// Deletes fully dead head segments and compacts the partially dead boundary
    /// segment once its dead fraction reaches [`COMPACT_MIN_DEAD_RATIO`].
    fn reclaim(&mut self) -> GsnResult<ReclaimStats> {
        let mut stats = ReclaimStats::default();
        // 1. Head segments entirely below the watermark: delete the file outright.
        while let Some((segment, len)) = self.head_segment_span() {
            if self.index[len - 1].info.end_row() > self.logical_start {
                break;
            }
            let (bytes, pids) = self.heap.lock().delete_segment(segment)?;
            index::remove_sidecar(&self.dir, &self.base, segment);
            self.sidecars.remove(&segment);
            for pid in pids {
                self.pool.discard(self.table_id, pid);
            }
            self.index.drain(0..len);
            self.first_live_pos = self.first_live_pos.saturating_sub(len);
            stats.segments_deleted += 1;
            stats.bytes_reclaimed += bytes;
        }
        // 2. Boundary segment: partially dead, compact when mostly dead.
        if let Some((segment, len)) = self.head_segment_span() {
            let first_row = self.index[0].info.first_row;
            let end_row = self.index[len - 1].info.end_row();
            let rows = end_row.saturating_sub(first_row);
            let dead = self.logical_start.saturating_sub(first_row);
            if rows > 0 && dead > 0 && (dead as f64) / (rows as f64) >= COMPACT_MIN_DEAD_RATIO {
                self.compact_head_segment(segment, len, &mut stats)?;
            }
        }
        self.reclaim_totals.merge(&stats);
        Ok(stats)
    }

    /// Rewrites the head segment's live rows into a replacement segment, dropping its
    /// dead prefix.  Live rows keep their global indexes (the replacement header's
    /// `first_row` pins them), so concurrent cursors and the sequence mapping are
    /// unaffected.
    fn compact_head_segment(
        &mut self,
        segment: u32,
        len: usize,
        stats: &mut ReclaimStats,
    ) -> GsnResult<()> {
        let live_start = self.logical_start;
        let live_in_segment = self.index[len - 1].info.end_row() - live_start;
        // Collect the surviving rows (chains are followed into later pages/segments,
        // so a boundary row is rewritten whole).
        let mut rows: Vec<StreamElement> = Vec::with_capacity(live_in_segment as usize);
        let from_pos = self
            .index
            .partition_point(|e| e.info.end_row() <= live_start);
        self.scan_payloads(from_pos, live_in_segment, &mut |e| rows.push(e.clone()))?;
        let (pages, mut infos) = pack_rows(&rows);
        if pages.len() as u32 > MAX_SEGMENT_PAGES {
            // A pathological all-oversized-rows segment: skip rather than overflow the
            // local page addressing.
            return Ok(());
        }
        let mut next = live_start;
        for info in &mut infos {
            info.first_row = next;
            next += u64::from(info.rows);
        }
        let outcome = self
            .heap
            .lock()
            .write_replacement(segment, live_start, &pages)?;
        index::remove_sidecar(&self.dir, &self.base, segment);
        self.sidecars.remove(&segment);
        for pid in &outcome.old_page_ids {
            self.pool.discard(self.table_id, *pid);
        }
        // The replacement segment is sealed at birth (only the tail is ever
        // written), so its sidecar can be persisted immediately.
        index::write_sidecar(
            &self.dir,
            &self.base,
            &SegmentIndex {
                segment_id: outcome.new_segment_id,
                first_row: live_start,
                pages: infos.iter().map(page_summary).collect(),
            },
        )?;
        self.sidecars.insert(outcome.new_segment_id);
        let new_entries: Vec<PageEntry> = infos
            .into_iter()
            .enumerate()
            .map(|(local, info)| PageEntry {
                pid: global_page_id(outcome.new_segment_id, local as PageId),
                info,
            })
            .collect();
        self.index.splice(0..len, new_entries);
        self.first_live_pos = 0;
        stats.segments_compacted += 1;
        stats.rows_rewritten += rows.len() as u64;
        stats.bytes_reclaimed += outcome.old_bytes.saturating_sub(outcome.new_bytes);
        self.refresh_first_live_pos();
        Ok(())
    }

    /// Point-in-time disk footprint plus this incarnation's reclamation totals.
    fn disk_usage(&self) -> DiskUsage {
        let heap = self.heap.lock();
        let mut live_segments: u64 = 0;
        let mut previous: Option<u32> = None;
        for entry in &self.index[self.first_live_pos.min(self.index.len())..] {
            let segment = segment_of(entry.pid);
            if previous != Some(segment) {
                live_segments += 1;
                previous = Some(segment);
            }
        }
        DiskUsage {
            on_disk_bytes: heap.file_bytes() + self.wal.len_bytes(),
            live_segments,
            total_segments: heap.segment_count() as u64,
            reclaimed_bytes: self.reclaim_totals.bytes_reclaimed,
            reclaimed_segments: self.reclaim_totals.segments_deleted
                + self.reclaim_totals.segments_compacted,
        }
    }
}

/// Packs encoded rows into fresh pages with the same chunking rules as the append
/// path, returning the pages and their (first_row-less) summaries — the compaction
/// rewrite helper.
fn pack_rows(rows: &[StreamElement]) -> (Vec<Page>, Vec<PageInfo>) {
    let mut pages: Vec<Page> = Vec::new();
    let mut infos: Vec<PageInfo> = Vec::new();
    let fresh = |pages: &mut Vec<Page>, infos: &mut Vec<PageInfo>| {
        pages.push(Page::new());
        infos.push(PageInfo::empty(0));
        pages.len() - 1
    };
    for element in rows {
        let record = codec::encode_row(element);
        let ts = element.timestamp();
        match plan_record(&record) {
            RecordLayout::Inline => {
                let needed = record.len() + 1;
                let target = match pages.last() {
                    Some(page) if page.free_space() >= needed => pages.len() - 1,
                    _ => fresh(&mut pages, &mut infos),
                };
                pages[target]
                    .append(&frame_chunk(CHUNK_FULL, &record))
                    .expect("page has space");
                infos[target].rows += 1;
                infos[target].bytes += record.len() as u64;
                infos[target].touch(ts);
            }
            RecordLayout::Chained(chunks) => {
                let n = chunks.len();
                let mut start = 0usize;
                for (i, chunk) in chunks.iter().enumerate() {
                    let target = fresh(&mut pages, &mut infos);
                    if i == 0 {
                        start = target;
                    }
                    pages[target]
                        .append(&frame_chunk(chain_tag(i, n), chunk))
                        .expect("chunk fits a page");
                    infos[target].touch(ts);
                }
                infos[start].rows += 1;
                infos[start].bytes += record.len() as u64;
            }
        }
    }
    (pages, infos)
}

/// The sidecar form of one in-memory page summary.
fn page_summary(info: &PageInfo) -> PageSummary {
    PageSummary {
        rows: info.rows,
        min_ts: info.min_ts,
        max_ts: info.max_ts,
        bytes: info.bytes,
    }
}

fn split_chunk(record: &[u8]) -> GsnResult<(u8, &[u8])> {
    match record.split_first() {
        Some((&tag, payload)) => Ok((tag, payload)),
        None => Err(GsnError::storage("empty chunk record")),
    }
}

fn decode_payload(payload: &[u8], schema: &Arc<StreamSchema>) -> GsnResult<StreamElement> {
    let mut cursor = payload;
    let element = codec::decode_row(&mut cursor, schema)?;
    if !cursor.is_empty() {
        return Err(GsnError::storage("trailing bytes after row record"));
    }
    Ok(element)
}

impl StorageBackend for PersistentBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Persistent
    }

    fn append(&mut self, element: &StreamElement) -> GsnResult<()> {
        let inner = self.inner.get_mut();
        let record = codec::encode_row(element);
        inner.wal.append(&record)?;
        inner.append_to_pages(&record, element)?;
        if inner.wal.len_bytes() > inner.options.wal_checkpoint_bytes {
            inner.checkpoint()?;
        }
        Ok(())
    }

    fn len(&self) -> usize {
        self.inner.lock().live_rows() as usize
    }

    fn last(&self) -> Option<StreamElement> {
        self.inner.lock().last.clone()
    }

    fn first_timestamp(&self) -> GsnResult<Option<Timestamp>> {
        let mut inner = self.inner.lock();
        if inner.live_rows() == 0 {
            return Ok(None);
        }
        let start = inner.first_live_pos;
        let mut first: Option<Timestamp> = None;
        inner.scan_payloads(start, 1, &mut |element| {
            first = Some(element.timestamp());
        })?;
        Ok(first)
    }

    fn retained_bytes(&self) -> usize {
        let inner = self.inner.lock();
        inner.index[inner.first_live_pos.min(inner.index.len())..]
            .iter()
            .map(|e| e.info.bytes as usize)
            .sum()
    }

    fn max_sequence(&self) -> u64 {
        self.inner.lock().max_sequence
    }

    fn scan_window(
        &self,
        window: WindowSpec,
        now: Timestamp,
        visit: &mut dyn FnMut(&StreamElement),
    ) -> GsnResult<()> {
        let mut inner = self.inner.lock();
        let live = inner.live_rows();
        if live == 0 {
            return Ok(());
        }
        match window {
            WindowSpec::Count(n) if (n as u64) >= live => {
                // Full scan: stream straight through, nothing buffered.
                let start = inner.first_live_pos;
                inner.scan_payloads(start, u64::MAX, visit)
            }
            WindowSpec::Count(_) | WindowSpec::LatestOnly => {
                let n = match window {
                    WindowSpec::LatestOnly => 1,
                    WindowSpec::Count(n) => n,
                    WindowSpec::Time(_) => unreachable!(),
                };
                // Start at the latest page run that still covers n live rows.
                let start = {
                    let mut covered: u64 = 0;
                    let mut pos = inner.index.len();
                    while pos > inner.first_live_pos && covered < n as u64 {
                        pos -= 1;
                        let info = &inner.index[pos].info;
                        let live_start = info.first_row.max(inner.logical_start);
                        covered += info.end_row().saturating_sub(live_start);
                    }
                    pos
                };
                // Keep only the trailing n in a bounded ring.
                let mut ring: std::collections::VecDeque<StreamElement> =
                    std::collections::VecDeque::with_capacity(n.min(4096));
                inner.scan_payloads(start, u64::MAX, &mut |e| {
                    if ring.len() == n {
                        ring.pop_front();
                    }
                    ring.push_back(e.clone());
                })?;
                for e in &ring {
                    visit(e);
                }
                Ok(())
            }
            WindowSpec::Time(d) => {
                let cutoff = now.saturating_sub(d);
                // Skip pages that end before the cutoff.
                let mut start = inner.first_live_pos;
                while start < inner.index.len()
                    && inner.index[start].info.rows > 0
                    && inner.index[start].info.max_ts < cutoff.as_millis()
                {
                    start += 1;
                }
                // Stream with partition-point semantics: everything from the first
                // in-horizon element onward (matching WindowSpec::select on a vector).
                let mut passed = false;
                inner.scan_payloads(start, u64::MAX, &mut |e| {
                    if !passed && e.timestamp() >= cutoff {
                        passed = true;
                    }
                    if passed {
                        visit(e);
                    }
                })
            }
        }
    }

    fn open_scan(&self, window: WindowSpec, now: Timestamp) -> GsnResult<ScanState> {
        Ok(self.inner.lock().open_scan_state(window, now))
    }

    fn open_scan_bounded(
        &self,
        window: WindowSpec,
        now: Timestamp,
        bounds: &ScanBounds,
    ) -> GsnResult<ScanState> {
        Ok(self
            .inner
            .lock()
            .open_scan_state_bounded(window, now, bounds))
    }

    fn open_scan_after(&self, after: u64) -> GsnResult<ScanState> {
        let inner = self.inner.lock();
        debug_assert_eq!(
            inner.max_sequence, inner.total_rows,
            "sequence numbering must stay contiguous with the heap row index"
        );
        Ok(inner.open_scan_from_row(after))
    }

    fn first_sequence(&self) -> GsnResult<Option<u64>> {
        let inner = self.inner.lock();
        if inner.live_rows() == 0 {
            return Ok(None);
        }
        // Sequences are contiguous from 1 (see `open_scan_from_row`), so the oldest
        // live row — global index `logical_start` — carries `logical_start + 1`.
        Ok(Some(inner.logical_start + 1))
    }

    fn scan_next(&self, state: &mut ScanState) -> GsnResult<Option<Vec<StreamElement>>> {
        match &mut state.0 {
            // The empty-at-open case; yields nothing.
            ScanStateInner::Buffered { elements, pos } => Ok(memory_scan_next(elements, pos)),
            ScanStateInner::Sequence { .. } => Err(GsnError::storage(
                "memory scan state handed to a persistent backend",
            )),
            ScanStateInner::Rows {
                next_row,
                end_row,
                cutoff,
                passed,
                min_ts,
                max_ts,
            } => self
                .inner
                .lock()
                .scan_rows_next(next_row, *end_row, *cutoff, passed, *min_ts, *max_ts),
        }
    }

    fn prune_to_elements(&mut self, keep: usize) -> GsnResult<u64> {
        let inner = self.inner.get_mut();
        if inner.live_rows() <= keep as u64 {
            return Ok(0);
        }
        let target_start = inner.total_rows - keep as u64;
        // Advance over whole dead pages only (page-granular pruning).
        let mut new_start = inner.logical_start;
        let mut pos = inner.first_live_pos;
        while pos < inner.index.len() && inner.index[pos].info.end_row() <= target_start {
            new_start = new_start.max(inner.index[pos].info.end_row());
            pos += 1;
        }
        let pruned = new_start - inner.logical_start;
        inner.logical_start = new_start;
        inner.refresh_first_live_pos();
        Ok(pruned)
    }

    fn prune_horizon(&mut self, cutoff: Timestamp, min_keep: usize) -> GsnResult<u64> {
        let inner = self.inner.get_mut();
        let mut new_start = inner.logical_start;
        let mut pos = inner.first_live_pos;
        while pos < inner.index.len() {
            let info = &inner.index[pos].info;
            let fully_expired = info.rows > 0 && info.max_ts < cutoff.as_millis();
            let keeps_minimum = inner.total_rows.saturating_sub(info.end_row()) >= min_keep as u64;
            if fully_expired && keeps_minimum {
                new_start = new_start.max(info.end_row());
                pos += 1;
            } else {
                break;
            }
        }
        let pruned = new_start - inner.logical_start;
        inner.logical_start = new_start;
        inner.refresh_first_live_pos();
        Ok(pruned)
    }

    fn flush(&mut self) -> GsnResult<()> {
        self.inner.get_mut().checkpoint()
    }

    fn sync_wal(&mut self) -> GsnResult<u64> {
        self.inner.get_mut().wal.commit()
    }

    fn reclaim(&mut self) -> GsnResult<ReclaimStats> {
        self.inner.get_mut().reclaim()
    }

    fn disk_usage(&self) -> Option<DiskUsage> {
        Some(self.inner.lock().disk_usage())
    }

    fn pool_stats(&self) -> Option<BufferPoolStats> {
        Some(self.inner.lock().pool.stats())
    }

    fn destroy(self: Box<Self>) -> GsnResult<()> {
        let Inner {
            heap,
            wal,
            registration,
            dir,
            base,
            ..
        } = self.inner.into_inner();
        // Release frames and the pool's I/O handle (its clone of the heap Arc) first so
        // the segment files can be unwrapped and deleted.
        drop(registration);
        let heap = Arc::try_unwrap(heap)
            .map_err(|_| GsnError::internal("segmented heap still shared at destroy"))?
            .into_inner();
        heap.destroy()?;
        index::remove_all_sidecars(&dir, &format!("{base}."));
        wal.destroy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::temp_dir;
    use gsn_types::{DataType, Value};

    fn schema() -> Arc<StreamSchema> {
        Arc::new(
            StreamSchema::from_pairs(&[("v", DataType::Integer), ("payload", DataType::Binary)])
                .unwrap(),
        )
    }

    fn element(schema: &Arc<StreamSchema>, v: i64, ts: i64, payload: usize) -> StreamElement {
        StreamElement::new(
            Arc::clone(schema),
            vec![Value::Integer(v), Value::binary(vec![v as u8; payload])],
            Timestamp(ts),
        )
        .unwrap()
        .with_sequence(v as u64)
    }

    fn open(dir: &std::path::Path, pool_pages: usize) -> PersistentBackend {
        PersistentBackend::open(
            dir,
            "t",
            schema(),
            PersistentOptions {
                pool_pages,
                ..Default::default()
            },
        )
        .unwrap()
    }

    fn collect(backend: &dyn StorageBackend, window: WindowSpec, now: Timestamp) -> Vec<i64> {
        let mut out = Vec::new();
        backend
            .scan_window(window, now, &mut |e| {
                out.push(e.value("V").unwrap().as_integer().unwrap());
            })
            .unwrap();
        out
    }

    #[test]
    fn append_scan_round_trip() {
        let dir = temp_dir("backend-roundtrip");
        let mut b = open(&dir, 8);
        let s = schema();
        for i in 1..=100 {
            b.append(&element(&s, i, i * 10, 16)).unwrap();
        }
        assert_eq!(b.len(), 100);
        assert_eq!(b.max_sequence(), 100);
        assert_eq!(
            collect(&b, WindowSpec::Count(usize::MAX), Timestamp(10_000)),
            (1..=100).collect::<Vec<i64>>()
        );
        assert_eq!(
            collect(&b, WindowSpec::Count(3), Timestamp(10_000)),
            vec![98, 99, 100]
        );
        assert_eq!(
            collect(&b, WindowSpec::LatestOnly, Timestamp(10_000)),
            vec![100]
        );
        // Time window: cutoff 700 keeps 70..=100.
        assert_eq!(
            collect(
                &b,
                WindowSpec::Time(gsn_types::Duration::from_millis(310)),
                Timestamp(1_010)
            ),
            (70..=100).collect::<Vec<i64>>()
        );
        assert_eq!(b.first_timestamp().unwrap(), Some(Timestamp(10)));
        assert_eq!(b.last().unwrap().sequence(), 100);
        assert!(b.retained_bytes() > 0);
    }

    fn drain_scan(backend: &dyn StorageBackend, state: &mut ScanState) -> Vec<i64> {
        let mut out = Vec::new();
        while let Some(batch) = backend.scan_next(state).unwrap() {
            out.extend(
                batch
                    .iter()
                    .map(|e| e.value("V").unwrap().as_integer().unwrap()),
            );
        }
        out
    }

    #[test]
    fn delta_scans_resume_from_a_sequence() {
        for persistent in [false, true] {
            let dir = temp_dir("backend-delta");
            let mut b: Box<dyn StorageBackend> = if persistent {
                Box::new(open(&dir, 4))
            } else {
                Box::new(MemoryBackend::new())
            };
            let s = schema();
            for i in 1..=200 {
                b.append(&element(&s, i, i * 10, 16)).unwrap();
            }
            // Everything after sequence 150 (exact, no page over-read at the row level).
            let mut scan = b.open_scan_after(150).unwrap();
            assert_eq!(
                drain_scan(b.as_ref(), &mut scan),
                (151..=200).collect::<Vec<i64>>(),
                "persistent={persistent}"
            );
            // Nothing new yet.
            let mut scan = b.open_scan_after(200).unwrap();
            assert!(drain_scan(b.as_ref(), &mut scan).is_empty());
            // Rows appended after the cursor opened are invisible to it (snapshot),
            // but a fresh delta scan picks them up.
            let mut scan = b.open_scan_after(200).unwrap();
            b.append(&element(&s, 201, 2_010, 16)).unwrap();
            assert!(drain_scan(b.as_ref(), &mut scan).is_empty());
            let mut scan = b.open_scan_after(200).unwrap();
            assert_eq!(drain_scan(b.as_ref(), &mut scan), vec![201]);
            assert_eq!(b.first_sequence().unwrap(), Some(1));
            b.destroy().unwrap();
        }
    }

    #[test]
    fn delta_scans_respect_pruning() {
        for persistent in [false, true] {
            let dir = temp_dir("backend-delta-prune");
            let mut b: Box<dyn StorageBackend> = if persistent {
                Box::new(open(&dir, 4))
            } else {
                Box::new(MemoryBackend::new())
            };
            let s = schema();
            for i in 1..=300 {
                b.append(&element(&s, i, i * 10, 16)).unwrap();
            }
            b.prune_to_elements(50).unwrap();
            let oldest = b.first_sequence().unwrap().unwrap();
            // Memory prunes exactly to 251; persistent prunes at page granularity, so
            // the oldest live sequence is at most that.
            assert!(oldest <= 251, "oldest {oldest}");
            assert!(b.len() >= 50);
            // A delta resume point below the prune watermark starts at the oldest
            // live row instead of failing.
            let mut scan = b.open_scan_after(10).unwrap();
            assert_eq!(
                drain_scan(b.as_ref(), &mut scan),
                (oldest as i64..=300).collect::<Vec<i64>>(),
                "persistent={persistent}"
            );
            b.destroy().unwrap();
        }
    }

    #[test]
    fn delta_scans_survive_restart() {
        let dir = temp_dir("backend-delta-restart");
        let s = schema();
        {
            let mut b = open(&dir, 4);
            for i in 1..=120 {
                b.append(&element(&s, i, i, 8)).unwrap();
            }
        }
        let b = open(&dir, 4);
        let mut scan = b.open_scan_after(100).unwrap();
        assert_eq!(drain_scan(&b, &mut scan), (101..=120).collect::<Vec<i64>>());
        assert_eq!(b.first_sequence().unwrap(), Some(1));
    }

    #[test]
    fn restart_recovers_without_explicit_flush() {
        let dir = temp_dir("backend-recover");
        let s = schema();
        {
            let mut b = open(&dir, 4);
            for i in 1..=500 {
                b.append(&element(&s, i, i, 8)).unwrap();
            }
            // No explicit flush: rows live in the WAL plus whatever dirty pages were
            // evicted. Recovery must reassemble the exact history from that state.
        }
        let b = open(&dir, 4);
        assert_eq!(b.len(), 500);
        assert_eq!(b.max_sequence(), 500);
        assert_eq!(
            collect(&b, WindowSpec::Count(usize::MAX), Timestamp(10_000)),
            (1..=500).collect::<Vec<i64>>()
        );
    }

    #[test]
    fn recovery_replays_wal_tail_without_duplicates() {
        let dir = temp_dir("backend-wal-replay");
        let s = schema();
        let mut b = open(&dir, 4);
        for i in 1..=50 {
            b.append(&element(&s, i, i, 8)).unwrap();
        }
        b.flush().unwrap(); // heap authoritative, WAL reset
        for i in 51..=75 {
            b.append(&element(&s, i, i, 8)).unwrap();
        }
        drop(b);
        let b = open(&dir, 4);
        assert_eq!(
            collect(&b, WindowSpec::Count(usize::MAX), Timestamp(10_000)),
            (1..=75).collect::<Vec<i64>>()
        );
    }

    #[test]
    fn oversized_rows_chain_across_pages() {
        let dir = temp_dir("backend-overflow");
        let s = schema();
        let mut b = open(&dir, 4);
        // 32 KiB payloads: each row spans ~4 pages.
        for i in 1..=10 {
            b.append(&element(&s, i, i, 32 * 1024)).unwrap();
        }
        let mut sizes = Vec::new();
        b.scan_window(WindowSpec::Count(usize::MAX), Timestamp(100), &mut |e| {
            sizes.push(e.value("PAYLOAD").unwrap().as_bytes().unwrap().len());
        })
        .unwrap();
        assert_eq!(sizes, vec![32 * 1024; 10]);
        // And they survive restart.
        drop(b);
        let b = open(&dir, 4);
        assert_eq!(b.len(), 10);
        assert_eq!(
            collect(&b, WindowSpec::Count(2), Timestamp(100)),
            vec![9, 10]
        );
    }

    #[test]
    fn pool_stays_within_budget_for_scans_larger_than_pool() {
        let dir = temp_dir("backend-bounded");
        let s = schema();
        let mut b = open(&dir, 4);
        for i in 1..=2_000 {
            b.append(&element(&s, i, i, 64)).unwrap();
        }
        assert_eq!(
            collect(&b, WindowSpec::Count(usize::MAX), Timestamp(10_000)).len(),
            2_000
        );
        let (resident, capacity, stats) = b.buffer_stats();
        assert!(resident <= capacity, "{resident} > {capacity}");
        assert_eq!(capacity, 4);
        assert!(stats.evictions > 0);
    }

    #[test]
    fn count_pruning_is_page_granular() {
        let dir = temp_dir("backend-prune-count");
        let s = schema();
        let mut b = open(&dir, 4);
        for i in 1..=1_000 {
            b.append(&element(&s, i, i, 64)).unwrap();
        }
        let pruned = b.prune_to_elements(10).unwrap();
        assert!(pruned > 0);
        // Page granularity: at least 10 remain, and the newest are intact.
        assert!(b.len() >= 10, "{}", b.len());
        assert!(b.len() < 1_000);
        let tail = collect(&b, WindowSpec::Count(10), Timestamp(10_000));
        assert_eq!(tail, (991..=1_000).collect::<Vec<i64>>());
        // Pruning persists across restart (watermark written at checkpoint).
        b.flush().unwrap();
        let len_before = b.len();
        drop(b);
        let b = open(&dir, 4);
        assert_eq!(b.len(), len_before);
    }

    #[test]
    fn horizon_pruning_respects_cutoff_and_minimum() {
        let dir = temp_dir("backend-prune-horizon");
        let s = schema();
        let mut b = open(&dir, 4);
        for i in 1..=500 {
            b.append(&element(&s, i, i * 100, 64)).unwrap();
        }
        b.prune_horizon(Timestamp(40_000), 1).unwrap();
        // Everything still needed by a [40_000, now] horizon is retained.
        let kept = collect(&b, WindowSpec::Count(usize::MAX), Timestamp(50_000));
        assert!(kept.first().copied().unwrap() <= 400);
        assert_eq!(kept.last().copied().unwrap(), 500);
        // min_keep: a cutoff beyond every element keeps at least one.
        b.prune_horizon(Timestamp(i64::MAX / 2), 1).unwrap();
        assert!(b.len() >= 1);
    }

    #[test]
    fn destroy_removes_files() {
        let dir = temp_dir("backend-destroy");
        let s = schema();
        let mut b = open(&dir, 4);
        b.append(&element(&s, 1, 1, 8)).unwrap();
        Box::new(b).destroy().unwrap();
        assert!(std::fs::read_dir(&dir).unwrap().next().is_none());
    }

    fn collect_cursor(b: &dyn StorageBackend, window: WindowSpec, now: Timestamp) -> Vec<i64> {
        let mut state = b.open_scan(window, now).unwrap();
        let mut out = Vec::new();
        while let Some(batch) = b.scan_next(&mut state).unwrap() {
            out.extend(
                batch
                    .iter()
                    .map(|e| e.value("V").unwrap().as_integer().unwrap()),
            );
        }
        out
    }

    #[test]
    fn cursor_scan_matches_window_scan() {
        let dir = temp_dir("backend-cursor-parity");
        let s = schema();
        let mut mem = MemoryBackend::new();
        let mut per = open(&dir, 4);
        for i in 1..=800 {
            mem.append(&element(&s, i, i * 10, 24)).unwrap();
            per.append(&element(&s, i, i * 10, 24)).unwrap();
        }
        let now = Timestamp(10_000);
        for window in [
            WindowSpec::Count(usize::MAX),
            WindowSpec::Count(800),
            WindowSpec::Count(7),
            WindowSpec::Count(1),
            WindowSpec::LatestOnly,
            WindowSpec::Time(gsn_types::Duration::from_millis(1_234)),
            WindowSpec::Time(gsn_types::Duration::from_millis(5)),
        ] {
            let expected = collect(&mem, window, now);
            assert_eq!(
                collect_cursor(&mem, window, now),
                expected,
                "{window:?} mem"
            );
            assert_eq!(collect(&per, window, now), expected, "{window:?} per visit");
            assert_eq!(
                collect_cursor(&per, window, now),
                expected,
                "{window:?} per cursor"
            );
        }
        // Parity survives page-granular pruning.
        mem.prune_to_elements(50).unwrap();
        per.prune_to_elements(50).unwrap();
        let per_all = collect_cursor(&per, WindowSpec::Count(usize::MAX), now);
        assert_eq!(per_all, collect(&per, WindowSpec::Count(usize::MAX), now));
        assert_eq!(
            collect_cursor(&per, WindowSpec::Count(10), now),
            (791..=800).collect::<Vec<i64>>()
        );
    }

    #[test]
    fn zero_count_window_scans_nothing() {
        let dir = temp_dir("backend-cursor-zero");
        let s = schema();
        let mut mem = MemoryBackend::new();
        let mut per = open(&dir, 4);
        for i in 1..=5 {
            mem.append(&element(&s, i, i, 8)).unwrap();
            per.append(&element(&s, i, i, 8)).unwrap();
        }
        assert!(collect_cursor(&mem, WindowSpec::Count(0), Timestamp(100)).is_empty());
        assert!(collect_cursor(&per, WindowSpec::Count(0), Timestamp(100)).is_empty());
    }

    #[test]
    fn cursor_reassembles_rows_chained_across_pages() {
        let dir = temp_dir("backend-cursor-chain");
        let s = schema();
        let mut b = open(&dir, 4);
        for i in 1..=6 {
            b.append(&element(&s, i, i, 32 * 1024)).unwrap();
        }
        let mut state = b
            .open_scan(WindowSpec::Count(usize::MAX), Timestamp(100))
            .unwrap();
        let mut values = Vec::new();
        while let Some(batch) = b.scan_next(&mut state).unwrap() {
            for e in &batch {
                assert_eq!(
                    e.value("PAYLOAD").unwrap().as_bytes().unwrap().len(),
                    32 * 1024
                );
                values.push(e.value("V").unwrap().as_integer().unwrap());
            }
        }
        assert_eq!(values, (1..=6).collect::<Vec<i64>>());
    }

    #[test]
    fn cursor_pulls_one_page_per_batch() {
        let dir = temp_dir("backend-cursor-bounded");
        let s = schema();
        let mut b = open(&dir, 4);
        for i in 1..=2_000 {
            b.append(&element(&s, i, i, 64)).unwrap();
        }
        let before = b.pool_stats().unwrap();
        let mut state = b
            .open_scan(WindowSpec::Count(usize::MAX), Timestamp(10_000))
            .unwrap();
        let first = b.scan_next(&mut state).unwrap().unwrap();
        assert!(!first.is_empty());
        let after = b.pool_stats().unwrap();
        // Early exit: one batch touches one page, the rest of the heap is never read.
        let touched = (after.hits + after.misses) - (before.hits + before.misses);
        assert!(touched <= 2, "one batch touched {touched} pages");
    }

    fn open_segmented(
        dir: &std::path::Path,
        pool_pages: usize,
        segment_pages: u32,
    ) -> PersistentBackend {
        PersistentBackend::open(
            dir,
            "t",
            schema(),
            PersistentOptions {
                pool_pages,
                segment_pages,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn reclaim_deletes_dead_head_segments() {
        let dir = temp_dir("backend-reclaim-delete");
        let s = schema();
        let mut b = open_segmented(&dir, 4, 2);
        for i in 1..=400 {
            b.append(&element(&s, i, i, 512)).unwrap();
        }
        let before = b.disk_usage().unwrap();
        assert!(before.total_segments > 4);
        b.prune_to_elements(20).unwrap();
        let stats = b.reclaim().unwrap();
        assert!(stats.segments_deleted > 0, "{stats:?}");
        assert!(stats.bytes_reclaimed > 0);
        let after = b.disk_usage().unwrap();
        assert!(
            after.total_segments < before.total_segments,
            "{} !< {}",
            after.total_segments,
            before.total_segments
        );
        // Footprint bound: everything on disk is live data plus at most the boundary
        // segment and the tail.
        assert!(after.total_segments <= after.live_segments + 2);
        // The surviving tail still reads exactly right, through both scan paths.
        let tail = collect(&b, WindowSpec::Count(10), Timestamp(10_000));
        assert_eq!(tail, (391..=400).collect::<Vec<i64>>());
        let mut scan = b.open_scan_after(395).unwrap();
        assert_eq!(drain_scan(&b, &mut scan), (396..=400).collect::<Vec<i64>>());
    }

    #[test]
    fn reclaim_compacts_the_boundary_segment() {
        let dir = temp_dir("backend-reclaim-compact");
        let s = schema();
        // ~3.9 KiB payloads: exactly 2 rows per page, 10 rows per 5-page segment —
        // deterministic geometry so the prune watermark lands *inside* segment 1.
        let mut b = open_segmented(&dir, 4, 5);
        for i in 1..=25 {
            b.append(&element(&s, i, i, 3_900)).unwrap();
        }
        // Keep 18: watermark advances to row 6 (page granularity 2), so segment 1 is
        // 6/10 dead — over the compaction threshold but not fully dead.
        b.prune_to_elements(18).unwrap();
        let before = b.disk_usage().unwrap();
        let stats = b.reclaim().unwrap();
        assert_eq!(stats.segments_deleted, 0, "{stats:?}");
        assert_eq!(stats.segments_compacted, 1, "{stats:?}");
        assert_eq!(stats.rows_rewritten, 4);
        assert!(stats.bytes_reclaimed > 0);
        let after = b.disk_usage().unwrap();
        assert!(after.on_disk_bytes < before.on_disk_bytes);
        // Live rows kept their sequences and values across the rewrite.
        let all = collect(&b, WindowSpec::Count(usize::MAX), Timestamp(10_000));
        assert_eq!(all, (7..=25).collect::<Vec<i64>>());
        let mut scan = b.open_scan_after(20).unwrap();
        assert_eq!(drain_scan(&b, &mut scan), (21..=25).collect::<Vec<i64>>());
        // A fresh check of the sequence→row mapping from the oldest live row.
        let oldest = b.first_sequence().unwrap().unwrap();
        assert_eq!(oldest, 7);
        let mut scan = b.open_scan_after(oldest - 1).unwrap();
        assert_eq!(
            drain_scan(&b, &mut scan),
            (oldest as i64..=25).collect::<Vec<i64>>()
        );
        // And a restart agrees with the compacted layout.
        b.flush().unwrap();
        drop(b);
        let b = open_segmented(&dir, 4, 5);
        assert_eq!(
            collect(&b, WindowSpec::Count(usize::MAX), Timestamp(10_000)),
            (7..=25).collect::<Vec<i64>>()
        );
    }

    #[test]
    fn delta_cursor_survives_concurrent_reclaim() {
        let dir = temp_dir("backend-reclaim-cursor");
        let s = schema();
        let mut b = open_segmented(&dir, 4, 2);
        for i in 1..=300 {
            b.append(&element(&s, i, i, 64)).unwrap();
        }
        // Open a cursor over everything after 100, pull one batch, then reclaim the
        // rows the cursor already consumed.
        let mut scan = b.open_scan_after(100).unwrap();
        let first = b.scan_next(&mut scan).unwrap().unwrap();
        let consumed_to = first.last().unwrap().sequence();
        let mut got: Vec<i64> = first
            .iter()
            .map(|e| e.value("V").unwrap().as_integer().unwrap())
            .collect();
        b.prune_to_elements((300 - consumed_to) as usize).unwrap();
        let stats = b.reclaim().unwrap();
        assert!(!stats.is_empty(), "reclaim must fire: {stats:?}");
        got.extend(drain_scan(&b, &mut scan));
        assert_eq!(got, (101..=300).collect::<Vec<i64>>());
    }

    #[test]
    fn restart_recovers_across_a_reclaimed_boundary() {
        let dir = temp_dir("backend-reclaim-restart");
        let s = schema();
        {
            let mut b = open_segmented(&dir, 4, 2);
            for i in 1..=250 {
                b.append(&element(&s, i, i, 64)).unwrap();
            }
            b.prune_to_elements(30).unwrap();
            b.reclaim().unwrap();
            // More rows after the reclamation, then drop (checkpoint on flush).
            for i in 251..=280 {
                b.append(&element(&s, i, i, 64)).unwrap();
            }
            b.flush().unwrap();
        }
        let b = open_segmented(&dir, 4, 2);
        assert_eq!(b.max_sequence(), 280);
        let oldest = b.first_sequence().unwrap().unwrap();
        assert!(oldest > 1, "head segments must stay deleted across restart");
        let all = collect(&b, WindowSpec::Count(usize::MAX), Timestamp(10_000));
        assert_eq!(all, (oldest as i64..=280).collect::<Vec<i64>>());
        // Sequence numbering continues where the previous incarnation stopped.
        let mut scan = b.open_scan_after(270).unwrap();
        assert_eq!(drain_scan(&b, &mut scan), (271..=280).collect::<Vec<i64>>());
    }

    #[test]
    fn memory_backend_matches_seed_semantics() {
        let s = schema();
        let mut b = MemoryBackend::new();
        for i in 1..=10 {
            b.append(&element(&s, i, i * 100, 4)).unwrap();
        }
        assert_eq!(b.len(), 10);
        assert_eq!(
            collect(&b, WindowSpec::Count(3), Timestamp(1_000)),
            vec![8, 9, 10]
        );
        assert_eq!(b.prune_to_elements(4).unwrap(), 6);
        assert_eq!(b.len(), 4);
        assert_eq!(
            b.prune_horizon(Timestamp(950), 1).unwrap(),
            3 // 700, 800, 900 expired; 1000 kept
        );
        assert_eq!(b.len(), 1);
        assert_eq!(b.first_timestamp().unwrap(), Some(Timestamp(1_000)));
    }

    #[test]
    fn bounded_scan_clamps_to_the_sequence_range() {
        let dir = temp_dir("backend-bounds-seq");
        let s = schema();
        let mut mem = MemoryBackend::new();
        let mut per = open(&dir, 4);
        for i in 1..=2_000 {
            mem.append(&element(&s, i, i, 64)).unwrap();
            per.append(&element(&s, i, i, 64)).unwrap();
        }
        let bounds = ScanBounds {
            min_seq: Some(1_500),
            max_seq: Some(1_510),
            ..Default::default()
        };
        for b in [&mem as &dyn StorageBackend, &per] {
            let mut state = b
                .open_scan_bounded(WindowSpec::Count(usize::MAX), Timestamp(10_000), &bounds)
                .unwrap();
            assert_eq!(
                drain_scan(b, &mut state),
                (1_500..=1_510).collect::<Vec<i64>>()
            );
        }
        // The persistent point lookup touches only the page(s) holding the range.
        let before = per.pool_stats().unwrap();
        let mut state = per
            .open_scan_bounded(
                WindowSpec::Count(usize::MAX),
                Timestamp(10_000),
                &ScanBounds {
                    min_seq: Some(1_500),
                    max_seq: Some(1_500),
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(drain_scan(&per, &mut state), vec![1_500]);
        let after = per.pool_stats().unwrap();
        let touched = (after.hits + after.misses) - (before.hits + before.misses);
        assert!(touched <= 2, "point lookup touched {touched} pages");
    }

    #[test]
    fn timestamp_bounds_skip_non_qualifying_pages() {
        let dir = temp_dir("backend-bounds-ts");
        let s = schema();
        let telemetry = StorageTelemetry::new();
        let mut b = PersistentBackend::open(
            &dir,
            "t",
            s.clone(),
            PersistentOptions {
                pool_pages: 4,
                telemetry: telemetry.clone(),
                ..Default::default()
            },
        )
        .unwrap();
        for i in 1..=2_000 {
            b.append(&element(&s, i, i * 10, 64)).unwrap();
        }
        let bounds = ScanBounds {
            min_ts: Some(10_000),
            max_ts: Some(10_100),
            ..Default::default()
        };
        let mut state = b
            .open_scan_bounded(WindowSpec::Count(usize::MAX), Timestamp(100_000), &bounds)
            .unwrap();
        // Time bounds are page-granular hints: the scan returns a superset of the
        // qualifying rows (whole overlapping pages); the SQL residual filter makes
        // the result exact.  It must contain the true range and skip most pages.
        let got = drain_scan(&b, &mut state);
        let want: Vec<i64> = (1_000..=1_010).collect();
        assert!(
            got.windows(want.len()).any(|w| w == want.as_slice()),
            "bounded scan lost qualifying rows"
        );
        assert!(
            got.len() < 400,
            "bounded scan returned {} of 2000 rows",
            got.len()
        );
        assert!(telemetry.index_seeks.get() >= 1);
        assert!(
            telemetry.index_pages_skipped.get() > 0,
            "time-range scan skipped no pages"
        );
    }

    #[test]
    fn sidecars_are_written_at_checkpoint_and_survive_recovery() {
        let dir = temp_dir("backend-sidecar");
        let s = schema();
        {
            let mut b = open_segmented(&dir, 4, 2);
            for i in 1..=400 {
                b.append(&element(&s, i, i, 512)).unwrap();
            }
            b.flush().unwrap();
        }
        let sidecars = || {
            std::fs::read_dir(&dir)
                .unwrap()
                .filter_map(|e| e.ok())
                .filter(|e| e.file_name().to_string_lossy().ends_with(".idx"))
                .count()
        };
        assert!(sidecars() > 0, "checkpoint wrote no sidecars");
        // Recovery through the sidecars reproduces the exact table state.
        {
            let b = open_segmented(&dir, 4, 2);
            assert_eq!(b.max_sequence(), 400);
            assert_eq!(b.last().unwrap().sequence(), 400);
            assert_eq!(
                collect(&b, WindowSpec::Count(usize::MAX), Timestamp(10_000)),
                (1..=400).collect::<Vec<i64>>()
            );
        }
        // A corrupt or missing sidecar degrades to a page scan of that segment —
        // and the next checkpoint writes it back.
        let mut idx_paths: Vec<std::path::PathBuf> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.to_string_lossy().ends_with(".idx"))
            .collect();
        idx_paths.sort();
        let mut corrupt = std::fs::read(&idx_paths[0]).unwrap();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0xFF;
        std::fs::write(&idx_paths[0], &corrupt).unwrap();
        std::fs::remove_file(&idx_paths[1]).unwrap();
        let before = sidecars();
        {
            let mut b = open_segmented(&dir, 4, 2);
            assert_eq!(
                collect(&b, WindowSpec::Count(usize::MAX), Timestamp(10_000)),
                (1..=400).collect::<Vec<i64>>()
            );
            b.append(&element(&s, 401, 401, 512)).unwrap();
            b.flush().unwrap();
            assert_eq!(b.max_sequence(), 401);
        }
        assert!(sidecars() > before, "checkpoint did not restore sidecars");
        // Destroy leaves no sidecar behind.
        let b = open_segmented(&dir, 4, 2);
        Box::new(b).destroy().unwrap();
        assert!(std::fs::read_dir(&dir).unwrap().next().is_none());
    }
}
