//! Fixed-size slotted pages: the unit of disk I/O and buffer-pool caching.
//!
//! A heap file is a sequence of [`PAGE_SIZE`]-byte pages.  Each page packs variable-length
//! records (encoded stream element rows, see `gsn_types::codec`) back to back from the
//! front, with a slot directory of `(offset, length)` pairs growing from the back — the
//! classic slotted layout, append-friendly because GSN tables only ever append at the
//! tail and prune from the head:
//!
//! ```text
//! +--------+-----------------------------+------------------+
//! | header | record 0 | record 1 | ...   | ... slot1 slot0 |
//! +--------+-----------------------------+------------------+
//!   4 B      grows ->                        <- grows
//! ```
//!
//! Records larger than a page's usable space get an *overflow chain* at the heap-file
//! level (see `heap`); the page itself only deals in records that fit.

use gsn_types::{GsnError, GsnResult};

/// The size of one page in bytes.  8 KiB fits several typical sensor rows per page while
/// keeping a camera frame (32–75 KB in the paper's experiments) to a handful of overflow
/// pages.
pub const PAGE_SIZE: usize = 8192;

/// Page header: slot count (u16) + free-space offset (u16).
const HEADER_SIZE: usize = 4;
/// Slot entry: record offset (u16) + record length (u16).
const SLOT_SIZE: usize = 4;

/// The largest record a single page can hold.
pub const MAX_INLINE_RECORD: usize = PAGE_SIZE - HEADER_SIZE - SLOT_SIZE;

/// Identifies a page within one heap file (0-based data page number).
pub type PageId = u32;

/// A fixed-size slotted page of records.
#[derive(Clone)]
pub struct Page {
    bytes: Box<[u8; PAGE_SIZE]>,
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Page({} records, {} bytes free)",
            self.record_count(),
            self.free_space()
        )
    }
}

impl Default for Page {
    fn default() -> Self {
        Page::new()
    }
}

impl Page {
    /// An empty page.
    pub fn new() -> Page {
        let mut page = Page {
            bytes: vec![0u8; PAGE_SIZE].into_boxed_slice().try_into().unwrap(),
        };
        page.set_record_count(0);
        page.set_free_start(HEADER_SIZE as u16);
        page
    }

    /// Interprets raw bytes as a page, validating the header.
    pub fn from_bytes(bytes: [u8; PAGE_SIZE]) -> GsnResult<Page> {
        let page = Page {
            bytes: Box::new(bytes),
        };
        let count = page.record_count();
        let free = page.free_start() as usize;
        if !(HEADER_SIZE..=PAGE_SIZE).contains(&free)
            || HEADER_SIZE + count * SLOT_SIZE > PAGE_SIZE
            || free > PAGE_SIZE - count * SLOT_SIZE
        {
            return Err(GsnError::storage("corrupt page header"));
        }
        for slot in 0..count {
            let (offset, len) = page.slot(slot);
            if offset < HEADER_SIZE || offset + len > free {
                return Err(GsnError::storage(format!("corrupt page slot {slot}")));
            }
        }
        Ok(page)
    }

    /// The raw page bytes (for disk I/O).
    pub fn as_bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.bytes
    }

    fn record_count_raw(&self) -> u16 {
        u16::from_le_bytes([self.bytes[0], self.bytes[1]])
    }

    fn set_record_count(&mut self, count: u16) {
        self.bytes[0..2].copy_from_slice(&count.to_le_bytes());
    }

    fn free_start(&self) -> u16 {
        u16::from_le_bytes([self.bytes[2], self.bytes[3]])
    }

    fn set_free_start(&mut self, offset: u16) {
        self.bytes[2..4].copy_from_slice(&offset.to_le_bytes());
    }

    /// Number of records stored in this page.
    pub fn record_count(&self) -> usize {
        self.record_count_raw() as usize
    }

    /// True when the page holds no records.
    pub fn is_empty(&self) -> bool {
        self.record_count() == 0
    }

    fn slot_position(&self, slot: usize) -> usize {
        PAGE_SIZE - (slot + 1) * SLOT_SIZE
    }

    fn slot(&self, slot: usize) -> (usize, usize) {
        let pos = self.slot_position(slot);
        let offset = u16::from_le_bytes([self.bytes[pos], self.bytes[pos + 1]]) as usize;
        let len = u16::from_le_bytes([self.bytes[pos + 2], self.bytes[pos + 3]]) as usize;
        (offset, len)
    }

    /// Bytes still available for one more record (accounting for its slot entry).
    pub fn free_space(&self) -> usize {
        let used_front = self.free_start() as usize;
        let used_back = self.record_count() * SLOT_SIZE;
        PAGE_SIZE
            .saturating_sub(used_front)
            .saturating_sub(used_back)
            .saturating_sub(SLOT_SIZE)
    }

    /// True when `record` fits into this page.
    pub fn fits(&self, record: &[u8]) -> bool {
        record.len() <= self.free_space()
    }

    /// Appends a record, returning its slot index, or `None` when the page is full.
    pub fn append(&mut self, record: &[u8]) -> Option<usize> {
        if !self.fits(record) || record.len() > MAX_INLINE_RECORD {
            return None;
        }
        let slot = self.record_count();
        let offset = self.free_start() as usize;
        self.bytes[offset..offset + record.len()].copy_from_slice(record);
        let pos = self.slot_position(slot);
        self.bytes[pos..pos + 2].copy_from_slice(&(offset as u16).to_le_bytes());
        self.bytes[pos + 2..pos + 4].copy_from_slice(&(record.len() as u16).to_le_bytes());
        self.set_free_start((offset + record.len()) as u16);
        self.set_record_count((slot + 1) as u16);
        Some(slot)
    }

    /// Borrows the record in `slot`.
    pub fn record(&self, slot: usize) -> Option<&[u8]> {
        if slot >= self.record_count() {
            return None;
        }
        let (offset, len) = self.slot(slot);
        Some(&self.bytes[offset..offset + len])
    }

    /// Iterates over all records in slot order.
    pub fn records(&self) -> impl Iterator<Item = &[u8]> {
        (0..self.record_count()).map(move |slot| {
            let (offset, len) = self.slot(slot);
            &self.bytes[offset..offset + len]
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_read_back() {
        let mut page = Page::new();
        let a = page.append(b"alpha").unwrap();
        let b = page.append(b"bravo-bravo").unwrap();
        assert_eq!((a, b), (0, 1));
        assert_eq!(page.record(0), Some(&b"alpha"[..]));
        assert_eq!(page.record(1), Some(&b"bravo-bravo"[..]));
        assert_eq!(page.record(2), None);
        assert_eq!(page.record_count(), 2);
        let collected: Vec<&[u8]> = page.records().collect();
        assert_eq!(collected, vec![&b"alpha"[..], &b"bravo-bravo"[..]]);
    }

    #[test]
    fn fills_up_and_rejects_when_full() {
        let mut page = Page::new();
        let record = [7u8; 100];
        let mut count = 0;
        while page.append(&record).is_some() {
            count += 1;
        }
        // 100 B of data + 4 B slot per record out of 8188 usable bytes.
        assert_eq!(count, (PAGE_SIZE - HEADER_SIZE) / (100 + SLOT_SIZE));
        assert!(page.free_space() < 100);
        // Small records still fit after large ones stop fitting.
        assert!(page.append(&[1u8; 8]).is_some());
    }

    #[test]
    fn empty_records_are_allowed() {
        let mut page = Page::new();
        page.append(b"").unwrap();
        page.append(b"x").unwrap();
        assert_eq!(page.record(0), Some(&b""[..]));
        assert_eq!(page.record(1), Some(&b"x"[..]));
    }

    #[test]
    fn oversized_record_is_rejected() {
        let mut page = Page::new();
        assert!(page.append(&vec![0u8; MAX_INLINE_RECORD + 1]).is_none());
        assert!(page.append(&vec![0u8; MAX_INLINE_RECORD]).is_some());
    }

    #[test]
    fn round_trips_through_bytes() {
        let mut page = Page::new();
        page.append(b"one").unwrap();
        page.append(b"two").unwrap();
        let restored = Page::from_bytes(*page.as_bytes()).unwrap();
        assert_eq!(restored.record_count(), 2);
        assert_eq!(restored.record(1), Some(&b"two"[..]));
    }

    #[test]
    fn corrupt_headers_are_rejected() {
        let mut bytes = [0u8; PAGE_SIZE];
        // free_start below the header.
        bytes[2..4].copy_from_slice(&1u16.to_le_bytes());
        assert!(Page::from_bytes(bytes).is_err());
        // Slot pointing past free space.
        let mut page = Page::new();
        page.append(b"data").unwrap();
        let mut raw = *page.as_bytes();
        let pos = PAGE_SIZE - SLOT_SIZE;
        raw[pos..pos + 2].copy_from_slice(&7000u16.to_le_bytes());
        assert!(Page::from_bytes(raw).is_err());
    }
}
