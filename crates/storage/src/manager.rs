//! The storage manager: all stream tables of one GSN container.
//!
//! "The data from/to the VSM passes through the storage layer which is in charge of
//! providing and managing persistent storage for data streams" (paper, Section 4).  The
//! manager owns one [`StreamTable`] per stream source / virtual sensor output, provides
//! windowed catalogs for the SQL engine, and aggregates statistics.
//!
//! The manager is internally synchronised and safe to drive from many worker threads at
//! once (the container's sharded step loop does exactly that): the table map sits behind
//! an `RwLock` taken briefly per lookup, each table behind its own `RwLock`, and every
//! durable table shares one [`SharedBufferPool`] (container-wide page budget,
//! cross-table eviction) that is itself thread-safe.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use gsn_sql::{Catalog, ColumnInfo, Relation, RowSource, ScanSpec};
use gsn_types::{GsnError, GsnResult, StreamElement, StreamSchema, Timestamp, Value};
use parking_lot::{Mutex, RwLock};

use crate::backend::{BackendKind, PersistentOptions, ScanBounds, ScanState};
use crate::buffer::SharedBufferPool;
use crate::retention::{MaintenanceReport, MaintenanceTotals};
use crate::spill::SpillOptions;
use crate::stats::{StorageStats, TableDiskStats};
use crate::table::StreamTable;
use crate::telemetry::StorageTelemetry;
use crate::wal::{SyncMode, WalSet};
use crate::window::{Retention, WindowSpec};
use gsn_telemetry::Stopwatch;

/// Container-level storage configuration: where (and whether) durable tables live.
#[derive(Debug, Clone, Default)]
pub struct StorageOptions {
    /// Directory for persistent table files. `None` keeps every table in memory (the
    /// seed behaviour) — durable table requests then fall back to memory.
    pub data_dir: Option<PathBuf>,
    /// Buffer-pool / WAL tuning for persistent tables.
    pub persistent: PersistentOptions,
    /// Resident-memory budget for *memory* tables (source windows): when set — and a
    /// data directory is configured — a window whose payload bytes exceed the budget
    /// transparently spills its cold prefix to a persistent segment store, so very
    /// large time windows (`storage-size="30d"`) query in bounded memory.  `None`
    /// keeps the seed behaviour (windows stay fully resident).
    pub window_spill_bytes: Option<usize>,
    /// Shards of the container-wide shared WAL (one log file per step-loop shard,
    /// multiplexing every durable table; see [`WalSet`]).  `0` keeps the seed
    /// behaviour: one private `<table>.wal` per durable table, one fsync per table at
    /// group commit.  The container passes its worker count, so the per-step commit
    /// fsyncs at most once per *active shard* instead of once per table.
    pub wal_shards: usize,
}

impl StorageOptions {
    /// Options with persistence rooted at `data_dir`.
    pub fn at(data_dir: impl Into<PathBuf>) -> StorageOptions {
        StorageOptions {
            data_dir: Some(data_dir.into()),
            persistent: PersistentOptions::default(),
            window_spill_bytes: None,
            wal_shards: 0,
        }
    }

    /// Enables the sharded container-wide WAL with `shards` log files.
    pub fn with_wal_shards(mut self, shards: usize) -> StorageOptions {
        self.wal_shards = shards;
        self
    }

    /// Enables window spilling with the given resident budget.
    pub fn with_window_spill(mut self, budget_bytes: usize) -> StorageOptions {
        self.window_spill_bytes = Some(budget_bytes);
        self
    }
}

/// The storage layer of one GSN container.
#[derive(Debug)]
pub struct StorageManager {
    tables: RwLock<HashMap<String, Arc<RwLock<StreamTable>>>>,
    options: StorageOptions,
    /// The container-wide page budget every durable table shares
    /// (`options.persistent.pool_pages` frames in total, cross-table eviction).
    pool: Arc<SharedBufferPool>,
    /// The sharded container-wide WAL durable tables append to, when enabled
    /// ([`StorageOptions::wal_shards`] > 0 and a data directory is configured).
    wal_set: Option<Arc<WalSet>>,
    /// Lifetime counters of the retention maintenance pass.
    maintenance: Mutex<MaintenanceTotals>,
    /// Guards against overlapping maintenance passes (the step loop schedules them
    /// onto the worker pool; a pass that outlives its step must not stack).
    maintenance_busy: AtomicBool,
    /// Live instrument handles; the container adopts them into its registry.
    telemetry: StorageTelemetry,
}

impl Default for StorageManager {
    fn default() -> Self {
        StorageManager::with_options(StorageOptions::default())
    }
}

impl StorageManager {
    /// Creates an in-memory-only storage manager (the seed behaviour).
    pub fn new() -> StorageManager {
        StorageManager::default()
    }

    /// Creates a storage manager that can host persistent tables under
    /// `options.data_dir`.
    pub fn with_options(options: StorageOptions) -> StorageManager {
        let pool = Arc::new(match options.persistent.pool_regions {
            0 => SharedBufferPool::new(options.persistent.pool_pages),
            n => SharedBufferPool::with_regions(options.persistent.pool_pages, n),
        });
        let wal_set = match (&options.data_dir, options.wal_shards) {
            (Some(dir), shards) if shards > 0 => Some(Arc::new(WalSet::new(
                dir.clone(),
                shards,
                options.persistent.sync,
                options.persistent.group_commit,
                options.persistent.wal_checkpoint_bytes.max(1),
            ))),
            _ => None,
        };
        StorageManager {
            tables: RwLock::new(HashMap::new()),
            options,
            pool,
            wal_set,
            maintenance: Mutex::new(MaintenanceTotals::default()),
            maintenance_busy: AtomicBool::new(false),
            telemetry: StorageTelemetry::new(),
        }
    }

    /// The storage layer's live telemetry handles.
    pub fn telemetry(&self) -> &StorageTelemetry {
        &self.telemetry
    }

    /// Shorthand for a manager persisting durable tables under `data_dir`.
    pub fn persistent(data_dir: impl Into<PathBuf>) -> StorageManager {
        StorageManager::with_options(StorageOptions::at(data_dir))
    }

    /// The directory persistent tables live in, when configured.
    pub fn data_dir(&self) -> Option<&std::path::Path> {
        self.options.data_dir.as_deref()
    }

    /// Creates an in-memory table for a stream source / virtual sensor.
    ///
    /// When window spilling is configured (a data directory plus
    /// [`StorageOptions::window_spill_bytes`]), the table is created spill-capable:
    /// still semantically a memory table, but its cold prefix moves to a persistent
    /// segment store once the resident budget is exceeded.
    ///
    /// Fails when a table with the same (case-insensitive) name already exists; GSN
    /// treats table names as container-unique because they double as SQL table names.
    pub fn create_table(
        &self,
        name: &str,
        schema: Arc<StreamSchema>,
        retention: Retention,
    ) -> GsnResult<Arc<RwLock<StreamTable>>> {
        let table = match (&self.options.data_dir, self.options.window_spill_bytes) {
            (Some(dir), Some(budget)) => {
                let spill = SpillOptions {
                    budget_bytes: budget,
                    persistent: PersistentOptions {
                        shared_pool: Some(Arc::clone(&self.pool)),
                        telemetry: self.telemetry.clone(),
                        ..self.options.persistent.clone()
                    },
                };
                StreamTable::spilling(name, schema, retention, dir, spill)?
            }
            _ => StreamTable::new(name, schema, retention),
        };
        self.register_table(name, table)
    }

    /// Creates a *durable* table: stored in the persistent page engine when this manager
    /// has a data directory, falling back to memory otherwise.
    ///
    /// When table files already exist in the data directory (a container re-opened on
    /// the same path), the stored history is recovered instead of starting empty.
    pub fn create_table_durable(
        &self,
        name: &str,
        schema: Arc<StreamSchema>,
        retention: Retention,
    ) -> GsnResult<Arc<RwLock<StreamTable>>> {
        let table = match &self.options.data_dir {
            Some(dir) => {
                let options = PersistentOptions {
                    shared_pool: Some(Arc::clone(&self.pool)),
                    shared_wal: self.wal_set.clone(),
                    telemetry: self.telemetry.clone(),
                    ..self.options.persistent.clone()
                };
                StreamTable::persistent(name, schema, retention, dir, options)?
            }
            None => StreamTable::new(name, schema, retention),
        };
        self.register_table(name, table)
    }

    /// The sharded container-wide WAL, when enabled.
    pub fn wal_set(&self) -> Option<&Arc<WalSet>> {
        self.wal_set.as_ref()
    }

    /// The shared buffer pool every durable table of this manager uses.
    pub fn buffer_pool(&self) -> &Arc<SharedBufferPool> {
        &self.pool
    }

    fn register_table(
        &self,
        name: &str,
        table: StreamTable,
    ) -> GsnResult<Arc<RwLock<StreamTable>>> {
        let key = name.to_ascii_lowercase();
        let mut tables = self.tables.write();
        if tables.contains_key(&key) {
            return Err(GsnError::already_exists(format!(
                "storage table `{name}` already exists"
            )));
        }
        let table = Arc::new(RwLock::new(table));
        tables.insert(key, Arc::clone(&table));
        Ok(table)
    }

    /// Drops a table (when a virtual sensor is undeployed at runtime), deleting any
    /// on-disk state it owns.
    pub fn drop_table(&self, name: &str) -> GsnResult<()> {
        let removed = self.tables.write().remove(&name.to_ascii_lowercase());
        match removed {
            Some(table) => table.write().destroy_storage(),
            None => Err(GsnError::not_found(format!(
                "storage table `{name}` does not exist"
            ))),
        }
    }

    /// Detaches a table from the manager *without* deleting its on-disk state (the table
    /// checkpoints as it drops). Used by deployment rollback: a failed re-deploy of a
    /// permanent-storage sensor must not destroy the history it just recovered.
    pub fn release_table(&self, name: &str) -> GsnResult<()> {
        match self.tables.write().remove(&name.to_ascii_lowercase()) {
            Some(_) => Ok(()),
            None => Err(GsnError::not_found(format!(
                "storage table `{name}` does not exist"
            ))),
        }
    }

    /// Checkpoints every persistent table to stable storage.
    pub fn flush_all(&self) -> GsnResult<()> {
        for table in self.tables.read().values() {
            table.write().flush()?;
        }
        Ok(())
    }

    /// Group commit: fsyncs every WAL with group-committed appends still pending.  The
    /// container calls this once per step.  Tables on private logs drain their own
    /// batch (one fsync per table); tables on the shared [`WalSet`] are drained by one
    /// set-wide commit — one write and at most one fsync per *active shard*, however
    /// many tables ingested this step.
    ///
    /// Every log is attempted even when one fails — a transient error on one WAL must
    /// not leave the other tables' acknowledged rows unsynced past the step boundary.
    /// The first error is returned.
    pub fn group_commit(&self) -> GsnResult<()> {
        let mut first_error = None;
        for table in self.tables.read().values() {
            let mut guard = table.write();
            let timed = guard.backend_kind() == BackendKind::Persistent;
            let sw = Stopwatch::start();
            match guard.sync_wal() {
                Ok(records) => {
                    if records > 0 {
                        self.telemetry.wal_batch_records.record(records);
                        if self.options.persistent.sync == SyncMode::Always {
                            self.telemetry.wal_fsyncs.add(1);
                        }
                    }
                }
                Err(e) => {
                    first_error.get_or_insert(e);
                }
            }
            if timed {
                self.telemetry.wal_sync_micros.record(sw.elapsed_micros());
            }
        }
        if let Some(set) = &self.wal_set {
            let sw = Stopwatch::start();
            match set.commit() {
                Ok(commits) => {
                    if !commits.is_empty() {
                        self.telemetry.wal_sync_micros.record(sw.elapsed_micros());
                    }
                    for commit in commits {
                        self.telemetry.wal_batch_records.record(commit.records);
                        if commit.synced {
                            self.telemetry.wal_fsyncs.add(1);
                        }
                    }
                }
                Err(e) => {
                    first_error.get_or_insert(e);
                }
            }
        }
        match first_error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Looks a table up by name.
    pub fn table(&self, name: &str) -> GsnResult<Arc<RwLock<StreamTable>>> {
        self.tables
            .read()
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| GsnError::not_found(format!("storage table `{name}` does not exist")))
    }

    /// True when a table exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.read().contains_key(&name.to_ascii_lowercase())
    }

    /// The names of all tables.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Inserts an element into a named table.
    pub fn insert(
        &self,
        table: &str,
        element: StreamElement,
        now: Timestamp,
    ) -> GsnResult<StreamElement> {
        let table = self.table(table)?;
        let sw = Stopwatch::start();
        let mut guard = table.write();
        let durable = guard.backend_kind() != BackendKind::Memory;
        let inserted = guard.insert(element, now);
        drop(guard);
        let micros = sw.elapsed_micros();
        self.telemetry.insert_micros.record(micros);
        if durable {
            // For durable tables the insert path is WAL append + page write.
            self.telemetry.wal_append_micros.record(micros);
        }
        inserted
    }

    /// Prunes every table against the current time (called periodically by the container's
    /// life-cycle manager).
    pub fn prune_all(&self, now: Timestamp) {
        for table in self.tables.read().values() {
            table.write().prune(now);
        }
    }

    /// The retention maintenance pass: prunes every table, then reclaims file space —
    /// fully dead head segments are deleted, the boundary segment is compacted (see
    /// [`crate::retention`]).  The container's step loop schedules this onto its worker
    /// pool; overlapping invocations are coalesced (the second returns immediately
    /// with `ran = false`).
    pub fn maintain(&self, now: Timestamp) -> MaintenanceReport {
        if self.maintenance_busy.swap(true, Ordering::AcqRel) {
            return MaintenanceReport::default();
        }
        let mut report = MaintenanceReport {
            ran: true,
            ..Default::default()
        };
        let pass_sw = Stopwatch::start();
        let tables: Vec<Arc<RwLock<StreamTable>>> = self.tables.read().values().cloned().collect();
        for table in tables {
            let mut guard = table.write();
            guard.prune(now);
            // A reclamation failure on one table (transient I/O error) must not starve
            // the others; the pass simply skips it until the next round.
            let sw = Stopwatch::start();
            if let Ok(stats) = guard.reclaim() {
                if !stats.is_empty() {
                    self.telemetry.reclaim_micros.record(sw.elapsed_micros());
                }
                report.reclaim.merge(&stats);
            }
            report.tables += 1;
        }
        {
            let mut totals = self.maintenance.lock();
            totals.passes += 1;
            totals.reclaim.merge(&report.reclaim);
        }
        self.telemetry
            .maintenance_micros
            .record(pass_sw.elapsed_micros());
        self.telemetry
            .segments_deleted
            .add(report.reclaim.segments_deleted);
        self.telemetry
            .segments_compacted
            .add(report.reclaim.segments_compacted);
        self.telemetry
            .bytes_reclaimed
            .add(report.reclaim.bytes_reclaimed);
        self.maintenance_busy.store(false, Ordering::Release);
        report
    }

    /// Lifetime maintenance counters.
    pub fn maintenance_totals(&self) -> MaintenanceTotals {
        *self.maintenance.lock()
    }

    /// Builds a SQL catalog exposing a windowed view of selected tables.
    ///
    /// `views` maps the SQL-visible alias to `(table name, window, sampling rate)`.
    /// This is the bridge between the storage layer and the query manager: step 2 of the
    /// paper's pipeline (window evaluation) materialises here, and the per-source / output
    /// queries then run against the returned catalog.
    pub fn windowed_catalog(
        &self,
        views: &[CatalogView],
        now: Timestamp,
    ) -> GsnResult<gsn_sql::MemoryCatalog> {
        let mut catalog = gsn_sql::MemoryCatalog::new();
        for view in views {
            let table = self.table(&view.table)?;
            let guard = table.read();
            let relation = match view.sampling_rate {
                Some(rate) if rate < 1.0 => {
                    guard.sampled_window_relation(&view.alias, view.window, now, rate)?
                }
                _ => guard.window_relation(&view.alias, view.window, now)?,
            };
            catalog.register(&view.alias, relation);
        }
        Ok(catalog)
    }

    /// Aggregated statistics across every table.
    pub fn stats(&self) -> StorageStats {
        let tables = self.tables.read();
        let mut stats = StorageStats {
            tables: tables.len(),
            ..Default::default()
        };
        for (name, table) in tables.iter() {
            let guard = table.read();
            stats.retained_elements += guard.len();
            stats.retained_bytes += guard.retained_bytes();
            stats.totals.merge(guard.stats());
            match guard.backend_kind() {
                BackendKind::Persistent => stats.persistent_tables += 1,
                BackendKind::Spilled => stats.spilled_tables += 1,
                BackendKind::Memory => {}
            }
            if let Some((migrations, rows)) = guard.spill_stats() {
                stats.spill_migrations += migrations;
                stats.spilled_rows += rows;
            }
            if let Some(usage) = guard.disk_usage() {
                stats.disk.merge(&usage);
                stats.tables_on_disk.push(TableDiskStats {
                    name: name.clone(),
                    kind: guard.backend_kind(),
                    usage,
                });
            }
        }
        stats.tables_on_disk.sort_by(|a, b| a.name.cmp(&b.name));
        stats.maintenance = self.maintenance_totals();
        // Every durable table shares the manager's one pool: report it once instead of
        // summing the same counters per table.
        stats.pool = self.pool.stats();
        stats.pool_regions = self.pool.region_stats();
        stats
    }
}

/// Describes one windowed view to expose in a SQL catalog.
#[derive(Debug, Clone)]
pub struct CatalogView {
    /// The SQL-visible alias (the stream-source alias from the descriptor, e.g. `src1`,
    /// or the reserved name `wrapper`).
    pub alias: String,
    /// The backing table name.
    pub table: String,
    /// The window to evaluate.
    pub window: WindowSpec,
    /// Optional sampling rate in `[0, 1]`.
    pub sampling_rate: Option<f64>,
}

impl CatalogView {
    /// Creates a view with no sampling.
    pub fn new(alias: &str, table: &str, window: WindowSpec) -> CatalogView {
        CatalogView {
            alias: alias.to_owned(),
            table: table.to_owned(),
            window,
            sampling_rate: None,
        }
    }

    /// Sets a sampling rate.
    pub fn with_sampling(mut self, rate: f64) -> CatalogView {
        self.sampling_rate = Some(rate);
        self
    }
}

/// A [`Catalog`] adapter that evaluates windows lazily at lookup time.
///
/// The query repository registers long-lived client queries; executing one against a
/// `LiveCatalog` always sees the *current* window contents, which is what the paper's
/// Figure 4 experiment measures (N clients re-evaluated per new stream element).
pub struct LiveCatalog<'a> {
    manager: &'a StorageManager,
    views: &'a [CatalogView],
    now: Timestamp,
}

impl<'a> LiveCatalog<'a> {
    /// Creates a live catalog over `views`, evaluated at `now`.
    ///
    /// The views are borrowed: the query repository builds them once at registration
    /// time and re-lends them per evaluation instead of rebuilding a catalog per query
    /// per stream element.
    pub fn new(manager: &'a StorageManager, views: &'a [CatalogView], now: Timestamp) -> Self {
        LiveCatalog {
            manager,
            views,
            now,
        }
    }
}

impl Catalog for LiveCatalog<'_> {
    fn scan(&self, name: &str) -> GsnResult<Box<dyn RowSource>> {
        // First try a declared view alias; fall back to a raw table with its full content,
        // so ad-hoc client queries can also address tables directly.
        if let Some(view) = self
            .views
            .iter()
            .find(|v| v.alias.eq_ignore_ascii_case(name))
        {
            let table = self.manager.table(&view.table)?;
            let cursor = StreamCursor::open(
                table,
                &view.alias,
                view.window,
                self.now,
                view.sampling_rate,
            )?;
            return Ok(Box::new(cursor));
        }
        let table = self.manager.table(name)?;
        let cursor =
            StreamCursor::open(table, name, WindowSpec::Count(usize::MAX), self.now, None)?;
        Ok(Box::new(cursor))
    }

    fn scan_with_spec(&self, name: &str, spec: &ScanSpec) -> GsnResult<Box<dyn RowSource>> {
        // Mirror of `scan`, handing the optimizer's pushed-down spec to the cursor so
        // storage can seek via the segment index instead of walking the whole window.
        if let Some(view) = self
            .views
            .iter()
            .find(|v| v.alias.eq_ignore_ascii_case(name))
        {
            let table = self.manager.table(&view.table)?;
            let cursor = StreamCursor::open_with_spec(
                table,
                &view.alias,
                view.window,
                self.now,
                view.sampling_rate,
                spec,
            )?;
            return Ok(Box::new(cursor));
        }
        let table = self.manager.table(name)?;
        let cursor = StreamCursor::open_with_spec(
            table,
            name,
            WindowSpec::Count(usize::MAX),
            self.now,
            None,
            spec,
        )?;
        Ok(Box::new(cursor))
    }

    fn relation(&self, name: &str) -> GsnResult<Relation> {
        // Materialising convenience kept on the direct path: identical rows to
        // collecting `scan`, without the per-batch cursor machinery.
        if let Some(view) = self
            .views
            .iter()
            .find(|v| v.alias.eq_ignore_ascii_case(name))
        {
            let table = self.manager.table(&view.table)?;
            let guard = table.read();
            return match view.sampling_rate {
                Some(rate) if rate < 1.0 => {
                    guard.sampled_window_relation(&view.alias, view.window, self.now, rate)
                }
                _ => guard.window_relation(&view.alias, view.window, self.now),
            };
        }
        let table = self.manager.table(name)?;
        let guard = table.read();
        guard.window_relation(name, WindowSpec::Count(usize::MAX), self.now)
    }
}

/// A pull-based cursor over one stream table's windowed view, exposed to the SQL
/// executor as a [`RowSource`] (`PK`, `TIMED`, then the schema fields — exactly what
/// GSN's window unnesting produces).
///
/// The cursor owns its table handle and re-locks it per batch, so it holds no lock
/// between pulls and can outlive the catalog that opened it; persistent tables stream
/// one buffer-pool page per batch.  A consumer that stops pulling — a `LIMIT` query,
/// an abandoned federation cursor — leaves the remaining storage pages unread.
pub struct StreamCursor {
    table: Arc<RwLock<StreamTable>>,
    state: ScanState,
    columns: Vec<ColumnInfo>,
    buffered: std::collections::VecDeque<StreamElement>,
    /// Deterministic sampling: keep elements whose sequence is a multiple of this
    /// (`None` = keep everything, mirroring `sampled_window_relation`).
    keep_every: Option<usize>,
    /// Projection pushdown: schema-field positions (after `PK`/`TIMED`) the query never
    /// reads are emitted as `Value::Null` instead of cloned (`None` = emit everything).
    masked_fields: Option<Vec<bool>>,
    done: bool,
}

impl StreamCursor {
    /// Opens a cursor over `table` through `window` at `now`, with optional uniform
    /// sampling.
    pub fn open(
        table: Arc<RwLock<StreamTable>>,
        alias: &str,
        window: WindowSpec,
        now: Timestamp,
        sampling_rate: Option<f64>,
    ) -> GsnResult<StreamCursor> {
        Self::open_with_spec(
            table,
            alias,
            window,
            now,
            sampling_rate,
            &ScanSpec::default(),
        )
    }

    /// Opens a cursor like [`open`](Self::open), additionally pushing an optimizer
    /// [`ScanSpec`] down into the storage scan: sequence/timestamp bounds seek via the
    /// per-segment sparse index, a limit hint caps how far the heap is read, and
    /// projected-away columns are masked out instead of cloned.
    ///
    /// Bounds are advisory supersets — storage may return rows outside them (page
    /// granularity), so the executor re-applies the spec's residual predicate row-wise.
    pub fn open_with_spec(
        table: Arc<RwLock<StreamTable>>,
        alias: &str,
        window: WindowSpec,
        now: Timestamp,
        sampling_rate: Option<f64>,
        spec: &ScanSpec,
    ) -> GsnResult<StreamCursor> {
        let keep_every = sampling_rate.and_then(crate::table::sampling_stride);
        let (state, columns) = {
            let guard = table.read();
            let columns = Relation::for_stream_schema(alias, guard.schema())
                .columns()
                .to_vec();
            // Sampling keeps rows by absolute sequence; bounds would interact with the
            // stride in surprising ways under a limit hint, so sampled cursors scan the
            // plain window and leave all filtering to the executor.
            let state = if keep_every.is_some() || spec.is_default() {
                guard.open_scan(window, now)?
            } else {
                let bounds = ScanBounds {
                    min_seq: spec.min_seq,
                    max_seq: spec.max_seq,
                    min_ts: spec.min_ts,
                    max_ts: spec.max_ts,
                    // The limit is only sound when every returned row reaches the
                    // consumer: no residual predicate dropping rows above the scan.
                    limit: if spec.residual.is_empty() {
                        spec.limit
                    } else {
                        None
                    },
                };
                guard.open_scan_bounded(window, now, &bounds)?
            };
            (state, columns)
        };
        // `columns` is `[PK, TIMED, fields...]`; the mask covers only the field tail.
        let masked_fields = spec.projection.as_ref().map(|needed| {
            columns
                .iter()
                .skip(2)
                .map(|column| !needed.iter().any(|n| n.eq_ignore_ascii_case(&column.name)))
                .collect::<Vec<bool>>()
        });
        Ok(StreamCursor {
            // A zero sampling rate keeps nothing: mark exhausted up front.
            done: keep_every == Some(usize::MAX),
            table,
            state,
            columns,
            buffered: std::collections::VecDeque::new(),
            keep_every,
            masked_fields,
        })
    }
}

impl RowSource for StreamCursor {
    fn columns(&self) -> &[ColumnInfo] {
        &self.columns
    }

    fn next_row(&mut self) -> GsnResult<Option<Vec<Value>>> {
        while self.buffered.is_empty() {
            if self.done {
                return Ok(None);
            }
            let batch = self.table.read().scan_next(&mut self.state)?;
            match batch {
                Some(batch) => {
                    for element in batch {
                        if let Some(keep_every) = self.keep_every {
                            if !(element.sequence() as usize).is_multiple_of(keep_every) {
                                continue;
                            }
                        }
                        self.buffered.push_back(element);
                    }
                }
                None => {
                    self.done = true;
                    return Ok(None);
                }
            }
        }
        let element = self.buffered.pop_front().expect("non-empty buffer");
        let mut row = Vec::with_capacity(self.columns.len());
        row.push(Value::Integer(element.sequence() as i64));
        row.push(Value::Timestamp(element.timestamp()));
        match &self.masked_fields {
            Some(mask) => {
                for (value, masked) in element.values().iter().zip(mask) {
                    row.push(if *masked { Value::Null } else { value.clone() });
                }
            }
            None => row.extend_from_slice(element.values()),
        }
        Ok(Some(row))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsn_types::{DataType, Duration, Value};

    fn schema() -> Arc<StreamSchema> {
        Arc::new(StreamSchema::from_pairs(&[("temperature", DataType::Integer)]).unwrap())
    }

    fn manager_with_data() -> StorageManager {
        let m = StorageManager::new();
        m.create_table("motes", schema(), Retention::Unbounded)
            .unwrap();
        for i in 0..10 {
            let e = StreamElement::new(
                schema(),
                vec![Value::Integer(20 + i)],
                Timestamp(100 * (i + 1)),
            )
            .unwrap();
            m.insert("motes", e, Timestamp(100 * (i + 1))).unwrap();
        }
        m
    }

    #[test]
    fn create_and_drop_tables() {
        let m = StorageManager::new();
        m.create_table("a", schema(), Retention::Unbounded).unwrap();
        assert!(m.has_table("A"));
        assert!(m.create_table("A", schema(), Retention::Unbounded).is_err());
        m.create_table("b", schema(), Retention::Elements(5))
            .unwrap();
        assert_eq!(m.table_names(), vec!["a", "b"]);
        m.drop_table("a").unwrap();
        assert!(!m.has_table("a"));
        assert!(m.drop_table("a").is_err());
        assert!(m.table("a").is_err());
    }

    #[test]
    fn insert_routes_to_the_right_table() {
        let m = manager_with_data();
        let table = m.table("motes").unwrap();
        assert_eq!(table.read().len(), 10);
        assert!(m
            .insert(
                "nosuch",
                StreamElement::new(schema(), vec![Value::Integer(1)], Timestamp(0)).unwrap(),
                Timestamp(0)
            )
            .is_err());
    }

    #[test]
    fn windowed_catalog_materialises_views() {
        let m = manager_with_data();
        let catalog = m
            .windowed_catalog(
                &[
                    CatalogView::new("src1", "motes", WindowSpec::Count(3)),
                    CatalogView::new(
                        "src2",
                        "motes",
                        WindowSpec::Time(Duration::from_millis(450)),
                    ),
                ],
                Timestamp(1_000),
            )
            .unwrap();
        let mut engine = gsn_sql::SqlEngine::new();
        let n = engine
            .execute_scalar("select count(*) from src1", &catalog)
            .unwrap();
        assert_eq!(n, Value::Integer(3));
        let n = engine
            .execute_scalar("select count(*) from src2", &catalog)
            .unwrap();
        assert_eq!(n, Value::Integer(5)); // timestamps 600..1000
        assert!(m
            .windowed_catalog(
                &[CatalogView::new("x", "nosuch", WindowSpec::LatestOnly)],
                Timestamp(0)
            )
            .is_err());
    }

    #[test]
    fn windowed_catalog_applies_sampling() {
        let m = manager_with_data();
        let catalog = m
            .windowed_catalog(
                &[CatalogView::new("s", "motes", WindowSpec::Count(10)).with_sampling(0.5)],
                Timestamp(1_000),
            )
            .unwrap();
        let mut engine = gsn_sql::SqlEngine::new();
        let n = engine
            .execute_scalar("select count(*) from s", &catalog)
            .unwrap();
        assert_eq!(n, Value::Integer(5));
    }

    #[test]
    fn live_catalog_sees_current_contents() {
        let m = manager_with_data();
        let views = vec![CatalogView::new("src1", "motes", WindowSpec::Count(3))];
        let mut engine = gsn_sql::SqlEngine::new();

        {
            let live = LiveCatalog::new(&m, &views, Timestamp(1_000));
            let avg = engine
                .execute_scalar("select avg(temperature) from src1", &live)
                .unwrap();
            assert_eq!(avg, Value::Double(28.0)); // 27, 28, 29
        }

        // New data arrives; a fresh LiveCatalog evaluation sees it without re-registering.
        let e = StreamElement::new(schema(), vec![Value::Integer(100)], Timestamp(1_100)).unwrap();
        m.insert("motes", e, Timestamp(1_100)).unwrap();
        let live = LiveCatalog::new(&m, &views, Timestamp(1_100));
        let avg = engine
            .execute_scalar("select avg(temperature) from src1", &live)
            .unwrap();
        assert_eq!(avg, Value::Double((28.0 + 29.0 + 100.0) / 3.0));
    }

    #[test]
    fn live_catalog_scan_streams_the_same_rows_as_relation() {
        let m = manager_with_data();
        let views = vec![
            CatalogView::new("src1", "motes", WindowSpec::Count(3)),
            CatalogView::new("sampled", "motes", WindowSpec::Count(10)).with_sampling(0.5),
        ];
        let live = LiveCatalog::new(&m, &views, Timestamp(1_000));
        for name in ["src1", "sampled", "motes"] {
            let rel = live.relation(name).unwrap();
            let collected = live.scan(name).unwrap().collect().unwrap();
            assert_eq!(collected.rows(), rel.rows(), "table {name}");
            assert_eq!(collected.columns(), rel.columns(), "table {name}");
        }
        assert!(live.scan("nosuch").is_err());
    }

    #[test]
    fn scan_with_spec_bounds_and_masks_the_cursor() {
        let m = manager_with_data();
        let live = LiveCatalog::new(&m, &[], Timestamp(1_000));

        // Sequence bounds clamp which rows the cursor produces at all.
        let spec = ScanSpec {
            min_seq: Some(3),
            max_seq: Some(7),
            ..ScanSpec::default()
        };
        let rows = live
            .scan_with_spec("motes", &spec)
            .unwrap()
            .collect()
            .unwrap();
        let seqs: Vec<i64> = rows
            .rows()
            .iter()
            .map(|r| match r[0] {
                Value::Integer(n) => n,
                ref other => panic!("unexpected PK value {other:?}"),
            })
            .collect();
        assert_eq!(seqs, vec![3, 4, 5, 6, 7]);

        // Projection masking nulls out fields the query never reads.
        let spec = ScanSpec {
            projection: Some(Vec::new()),
            limit: Some(2),
            ..ScanSpec::default()
        };
        let rows = live
            .scan_with_spec("motes", &spec)
            .unwrap()
            .collect()
            .unwrap();
        assert_eq!(rows.rows().len(), 2);
        for row in rows.rows() {
            assert!(matches!(row[0], Value::Integer(_)));
            assert!(matches!(row[1], Value::Timestamp(_)));
            assert_eq!(row[2], Value::Null);
        }

        // A default spec streams exactly what `scan` streams.
        let plain = live.scan("motes").unwrap().collect().unwrap();
        let specced = live
            .scan_with_spec("motes", &ScanSpec::default())
            .unwrap()
            .collect()
            .unwrap();
        assert_eq!(specced.rows(), plain.rows());
    }

    #[test]
    fn live_catalog_falls_back_to_raw_tables() {
        let m = manager_with_data();
        let live = LiveCatalog::new(&m, &[], Timestamp(1_000));
        let mut engine = gsn_sql::SqlEngine::new();
        let n = engine
            .execute_scalar("select count(*) from motes", &live)
            .unwrap();
        assert_eq!(n, Value::Integer(10));
        assert!(engine.execute("select * from nosuch", &live).is_err());
    }

    #[test]
    fn prune_all_applies_retention() {
        let m = StorageManager::new();
        m.create_table(
            "bounded",
            schema(),
            Retention::Horizon(Duration::from_millis(100)),
        )
        .unwrap();
        for i in 0..5 {
            let e =
                StreamElement::new(schema(), vec![Value::Integer(i)], Timestamp(i * 100)).unwrap();
            m.insert("bounded", e, Timestamp(i * 100)).unwrap();
        }
        m.prune_all(Timestamp(10_000));
        assert_eq!(m.table("bounded").unwrap().read().len(), 1);
    }

    #[test]
    fn stats_aggregate_across_tables() {
        let m = manager_with_data();
        m.create_table("empty", schema(), Retention::Unbounded)
            .unwrap();
        let stats = m.stats();
        assert_eq!(stats.tables, 2);
        assert_eq!(stats.retained_elements, 10);
        assert_eq!(stats.totals.inserted, 10);
        assert!(stats.retained_bytes > 0);
    }

    #[test]
    fn concurrent_inserts_are_safe() {
        let m = Arc::new(StorageManager::new());
        m.create_table("t", schema(), Retention::Unbounded).unwrap();
        let mut handles = Vec::new();
        for worker in 0..4 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for i in 0..250 {
                    let ts = Timestamp(worker * 1_000 + i);
                    let e = StreamElement::new(schema(), vec![Value::Integer(i)], ts).unwrap();
                    m.insert("t", e, ts).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.table("t").unwrap().read().len(), 1_000);
        assert_eq!(m.stats().totals.inserted, 1_000);
    }
}
