//! Simulated wireless camera wrapper.
//!
//! The paper integrates "USB and wireless (HTTP-based) cameras (e.g., AXIS 206W camera)"
//! (Section 5) and its experiments use stream-element sizes up to 75 KB — camera frames.
//! The simulated camera emits a binary `IMAGE` payload of configurable size at a
//! configurable interval.
//!
//! Address predicates:
//!
//! | predicate | default | meaning |
//! |---|---|---|
//! | `interval` | `1000` | frame interval in milliseconds |
//! | `image-size` | `32768` | frame size in bytes |
//! | `camera-id` | `cam-1` | reported camera id |
//! | `location` | `unknown` | reported location |
//! | `seed` | `1` | RNG seed |

use std::sync::Arc;

use gsn_types::{DataType, Duration, GsnResult, StreamElement, StreamSchema, Timestamp, Value};
use gsn_xml::AddressSpec;

use crate::sim::{DeviceRng, Schedule};
use crate::wrapper::{predicate_parse, Wrapper, WrapperFactory};

/// Configuration of a simulated camera.
#[derive(Debug, Clone)]
pub struct CameraConfig {
    /// Frame production interval.
    pub interval: Duration,
    /// Frame size in bytes.
    pub image_size: usize,
    /// Camera identifier.
    pub camera_id: String,
    /// Reported location.
    pub location: String,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CameraConfig {
    fn default() -> Self {
        CameraConfig {
            interval: Duration::from_secs(1),
            image_size: 32 * 1024,
            camera_id: "cam-1".to_owned(),
            location: "unknown".to_owned(),
            seed: 1,
        }
    }
}

impl CameraConfig {
    /// Builds a configuration from address predicates.
    pub fn from_address(address: &AddressSpec) -> GsnResult<CameraConfig> {
        let interval_ms: i64 = predicate_parse(address, "interval", 1_000)?;
        let image_size: usize = predicate_parse(address, "image-size", 32 * 1024)?;
        let seed: u64 = predicate_parse(address, "seed", 1)?;
        Ok(CameraConfig {
            interval: Duration::from_millis(interval_ms.max(1)),
            image_size,
            camera_id: address.predicate("camera-id").unwrap_or("cam-1").to_owned(),
            location: address
                .predicate("location")
                .unwrap_or("unknown")
                .to_owned(),
            seed,
        })
    }
}

/// The simulated camera wrapper.
#[derive(Debug)]
pub struct CameraWrapper {
    config: CameraConfig,
    schema: Arc<StreamSchema>,
    schedule: Schedule,
    rng: DeviceRng,
    frame_counter: u64,
}

impl CameraWrapper {
    /// The output structure of every camera wrapper.
    pub fn schema() -> Arc<StreamSchema> {
        Arc::new(
            StreamSchema::from_pairs(&[
                ("camera_id", DataType::Varchar),
                ("location", DataType::Varchar),
                ("frame_number", DataType::Integer),
                ("image", DataType::Binary),
            ])
            .unwrap(),
        )
    }

    /// Creates a camera wrapper with its schedule starting at time zero.
    pub fn new(config: CameraConfig) -> CameraWrapper {
        Self::starting_at(config, Timestamp::EPOCH)
    }

    /// Creates a camera wrapper whose first frame is due one interval after `start`.
    pub fn starting_at(config: CameraConfig, start: Timestamp) -> CameraWrapper {
        CameraWrapper {
            schedule: Schedule::new(start, config.interval),
            schema: Self::schema(),
            rng: DeviceRng::new(config.seed),
            frame_counter: 0,
            config,
        }
    }
}

impl Wrapper for CameraWrapper {
    fn kind(&self) -> &str {
        "camera"
    }

    fn output_schema(&self) -> Arc<StreamSchema> {
        Arc::clone(&self.schema)
    }

    fn nominal_interval(&self) -> Duration {
        self.config.interval
    }

    fn start(&mut self, at: Timestamp) {
        self.schedule = crate::sim::Schedule::new(at, self.config.interval);
    }

    fn poll(&mut self, now: Timestamp) -> GsnResult<Vec<StreamElement>> {
        let mut out = Vec::new();
        for due in self.schedule.due_times(now) {
            self.frame_counter += 1;
            let values = vec![
                Value::varchar(self.config.camera_id.clone()),
                Value::varchar(self.config.location.clone()),
                Value::Integer(self.frame_counter as i64),
                Value::binary(self.rng.payload(self.config.image_size)),
            ];
            out.push(
                StreamElement::new(Arc::clone(&self.schema), values, due)?.with_produced_at(due),
            );
        }
        Ok(out)
    }

    fn describe(&self) -> String {
        format!(
            "camera {} at {} ({} byte frames every {})",
            self.config.camera_id,
            self.config.location,
            self.config.image_size,
            self.config.interval
        )
    }
}

/// Factory for [`CameraWrapper`].
#[derive(Debug, Default)]
pub struct CameraWrapperFactory;

impl WrapperFactory for CameraWrapperFactory {
    fn kind(&self) -> &str {
        "camera"
    }

    fn create(&self, address: &AddressSpec) -> GsnResult<Box<dyn Wrapper>> {
        Ok(Box::new(CameraWrapper::new(CameraConfig::from_address(
            address,
        )?)))
    }

    fn description(&self) -> String {
        "simulated AXIS-class network camera (binary frames)".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_have_configured_size_and_counter() {
        let mut cam = CameraWrapper::new(CameraConfig {
            interval: Duration::from_millis(250),
            image_size: 75 * 1024,
            ..Default::default()
        });
        let frames = cam.poll(Timestamp(1_000)).unwrap();
        assert_eq!(frames.len(), 4);
        for (i, frame) in frames.iter().enumerate() {
            assert_eq!(
                frame.value("FRAME_NUMBER"),
                Some(Value::Integer(i as i64 + 1))
            );
            assert_eq!(frame.value("IMAGE").unwrap().size_bytes(), 75 * 1024);
            assert!(frame.size_bytes() >= 75 * 1024);
        }
    }

    #[test]
    fn interval_is_respected() {
        let mut cam = CameraWrapper::new(CameraConfig {
            interval: Duration::from_millis(500),
            ..Default::default()
        });
        assert!(cam.poll(Timestamp(499)).unwrap().is_empty());
        assert_eq!(cam.poll(Timestamp(500)).unwrap().len(), 1);
        assert_eq!(cam.nominal_interval(), Duration::from_millis(500));
    }

    #[test]
    fn factory_reads_predicates() {
        let addr = AddressSpec::new("camera")
            .with_predicate("interval", "100")
            .with_predicate("image-size", "15")
            .with_predicate("camera-id", "axis-206w")
            .with_predicate("location", "bc143");
        let mut cam = CameraWrapperFactory.create(&addr).unwrap();
        assert_eq!(cam.kind(), "camera");
        let frame = cam.poll(Timestamp(100)).unwrap().remove(0);
        assert_eq!(frame.value("CAMERA_ID"), Some(Value::varchar("axis-206w")));
        assert_eq!(frame.value("LOCATION"), Some(Value::varchar("bc143")));
        assert_eq!(frame.value("IMAGE").unwrap().size_bytes(), 15);
        assert!(cam.describe().contains("axis-206w"));
        assert!(CameraWrapperFactory
            .create(&AddressSpec::new("camera").with_predicate("image-size", "-3"))
            .is_err());
    }
}
