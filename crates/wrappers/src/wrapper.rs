//! The wrapper abstraction and the wrapper registry.
//!
//! "Adding a new type of sensor or sensor network can be done by supplying a [...] wrapper
//! conforming to the GSN API" (paper, Section 5).  In GSN-RS a wrapper is a trait object
//! produced by a registered factory; the container looks the factory up by the
//! `wrapper="..."` attribute of a stream source's `<address>` element and configures it
//! with the address predicates.
//!
//! Wrappers are *polled*: the container (or a benchmark harness) advances the clock and
//! asks each wrapper for the elements produced since the previous poll.  This keeps the
//! data-production model deterministic under the simulated clock — essential for
//! reproducing the paper's time-triggered-load experiment — while the container's
//! life-cycle manager provides the real-time driving loop in live deployments.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use gsn_types::{Duration, GsnError, GsnResult, StreamElement, StreamSchema, Timestamp};
use gsn_xml::AddressSpec;
use parking_lot::RwLock;

/// A data source adapter: one instance per `<stream-source>` using a local wrapper.
pub trait Wrapper: Send {
    /// The wrapper type name (matches the registry key).
    fn kind(&self) -> &str;

    /// The structure of the elements this wrapper produces.
    fn output_schema(&self) -> Arc<StreamSchema>;

    /// The nominal production interval.  The container uses this to schedule polls; a
    /// wrapper may still produce zero or several elements per poll.
    fn nominal_interval(&self) -> Duration;

    /// Anchors the wrapper's production schedule at `at` (the deployment time).
    ///
    /// Without this, a wrapper deployed while the container clock is already at `t`
    /// would "catch up" and emit every element nominally due since time zero on its first
    /// poll.  The default implementation does nothing (push-style wrappers have no
    /// schedule to anchor).
    fn start(&mut self, at: Timestamp) {
        let _ = at;
    }

    /// Produces every element due in the interval `(last_poll, now]`.
    ///
    /// Implementations must be deterministic given their configuration and the poll
    /// times, so that simulated-clock benchmark runs are reproducible.
    fn poll(&mut self, now: Timestamp) -> GsnResult<Vec<StreamElement>>;

    /// Releases any resources held by the wrapper (serial ports, sockets, ...).  Simulated
    /// wrappers have nothing to release; the default implementation does nothing.
    fn shutdown(&mut self) {}

    /// A short human-readable description for status reports.
    fn describe(&self) -> String {
        format!(
            "{} wrapper ({} interval)",
            self.kind(),
            self.nominal_interval()
        )
    }
}

impl fmt::Debug for dyn Wrapper {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Wrapper({})", self.describe())
    }
}

/// Creates wrapper instances from `<address>` specifications.
pub trait WrapperFactory: Send + Sync {
    /// The registry key (`wrapper="..."` value) this factory serves.
    fn kind(&self) -> &str;

    /// Instantiates a wrapper configured by the address predicates.
    fn create(&self, address: &AddressSpec) -> GsnResult<Box<dyn Wrapper>>;

    /// One-line description used by the container status report.
    fn description(&self) -> String {
        format!("factory for `{}` wrappers", self.kind())
    }
}

/// The per-container registry of wrapper factories.
///
/// The registry is shared (`Arc`) between the container and its virtual sensors;
/// registering a new platform at runtime immediately makes it deployable, which is the
/// plug-and-play behaviour demonstrated in the paper's Section 6.
pub struct WrapperRegistry {
    factories: RwLock<HashMap<String, Arc<dyn WrapperFactory>>>,
}

impl Default for WrapperRegistry {
    fn default() -> Self {
        WrapperRegistry::new()
    }
}

impl WrapperRegistry {
    /// Creates an empty registry.
    pub fn new() -> WrapperRegistry {
        WrapperRegistry {
            factories: RwLock::new(HashMap::new()),
        }
    }

    /// Creates a registry pre-populated with every built-in simulated platform
    /// (mote, camera, rfid, system-time, push, replay, scripted).
    pub fn with_builtins() -> WrapperRegistry {
        let registry = WrapperRegistry::new();
        registry
            .register(Arc::new(crate::mote::MoteWrapperFactory))
            .expect("fresh registry");
        registry
            .register(Arc::new(crate::camera::CameraWrapperFactory))
            .expect("fresh registry");
        registry
            .register(Arc::new(crate::rfid::RfidWrapperFactory))
            .expect("fresh registry");
        registry
            .register(Arc::new(crate::generic::SystemTimeWrapperFactory))
            .expect("fresh registry");
        registry
            .register(Arc::new(crate::generic::PushWrapperFactory::new()))
            .expect("fresh registry");
        registry
            .register(Arc::new(crate::generic::ReplayWrapperFactory::new()))
            .expect("fresh registry");
        registry
            .register(Arc::new(crate::generic::ScriptedWrapperFactory))
            .expect("fresh registry");
        registry
    }

    /// Registers a factory.  Re-registering an existing kind is an error — GSN requires
    /// explicit undeployment first so running sensors keep a consistent view.
    pub fn register(&self, factory: Arc<dyn WrapperFactory>) -> GsnResult<()> {
        let key = factory.kind().to_ascii_lowercase();
        let mut factories = self.factories.write();
        if factories.contains_key(&key) {
            return Err(GsnError::already_exists(format!(
                "wrapper factory `{key}` is already registered"
            )));
        }
        factories.insert(key, factory);
        Ok(())
    }

    /// Removes a factory.
    pub fn deregister(&self, kind: &str) -> GsnResult<()> {
        match self.factories.write().remove(&kind.to_ascii_lowercase()) {
            Some(_) => Ok(()),
            None => Err(GsnError::not_found(format!(
                "wrapper factory `{kind}` is not registered"
            ))),
        }
    }

    /// True when a factory for `kind` exists.
    pub fn supports(&self, kind: &str) -> bool {
        self.factories
            .read()
            .contains_key(&kind.to_ascii_lowercase())
    }

    /// The registered wrapper kinds, sorted.
    pub fn kinds(&self) -> Vec<String> {
        let mut kinds: Vec<String> = self.factories.read().keys().cloned().collect();
        kinds.sort();
        kinds
    }

    /// Instantiates a wrapper for an address.
    pub fn create(&self, address: &AddressSpec) -> GsnResult<Box<dyn Wrapper>> {
        let key = address.wrapper.to_ascii_lowercase();
        let factory = self.factories.read().get(&key).cloned().ok_or_else(|| {
            GsnError::not_found(format!(
                "no wrapper factory registered for `{key}` (available: {})",
                self.kinds().join(", ")
            ))
        })?;
        factory.create(address)
    }
}

impl fmt::Debug for WrapperRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WrapperRegistry({})", self.kinds().join(", "))
    }
}

/// Parses a numeric predicate with a default, producing a descriptor error on bad input.
pub(crate) fn predicate_parse<T: std::str::FromStr>(
    address: &AddressSpec,
    key: &str,
    default: T,
) -> GsnResult<T> {
    match address.predicate(key) {
        None => Ok(default),
        Some(raw) => raw.parse().map_err(|_| {
            GsnError::descriptor(format!(
                "wrapper `{}`: invalid value `{raw}` for predicate `{key}`",
                address.wrapper
            ))
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_registry_has_all_platforms() {
        let registry = WrapperRegistry::with_builtins();
        for kind in [
            "mote",
            "camera",
            "rfid",
            "system-time",
            "push",
            "replay",
            "scripted",
        ] {
            assert!(registry.supports(kind), "missing builtin {kind}");
        }
        assert!(!registry.supports("remote")); // remote is provided by the network layer
        assert_eq!(registry.kinds().len(), 7);
    }

    #[test]
    fn create_unknown_wrapper_reports_available_kinds() {
        let registry = WrapperRegistry::with_builtins();
        let err = registry
            .create(&AddressSpec::new("quantum-sensor"))
            .unwrap_err();
        assert!(err.to_string().contains("quantum-sensor"));
        assert!(err.to_string().contains("mote"));
    }

    #[test]
    fn register_and_deregister() {
        let registry = WrapperRegistry::new();
        assert!(registry.kinds().is_empty());
        registry
            .register(Arc::new(crate::mote::MoteWrapperFactory))
            .unwrap();
        assert!(registry.supports("MOTE"));
        assert!(registry
            .register(Arc::new(crate::mote::MoteWrapperFactory))
            .is_err());
        registry.deregister("mote").unwrap();
        assert!(!registry.supports("mote"));
        assert!(registry.deregister("mote").is_err());
    }

    #[test]
    fn created_wrappers_produce_data() {
        let registry = WrapperRegistry::with_builtins();
        let mut wrapper = registry
            .create(
                &AddressSpec::new("mote")
                    .with_predicate("interval", "100")
                    .with_predicate("seed", "7"),
            )
            .unwrap();
        assert_eq!(wrapper.kind(), "mote");
        let produced = wrapper.poll(Timestamp(1_000)).unwrap();
        assert!(!produced.is_empty());
        assert!(wrapper.describe().contains("mote"));
        wrapper.shutdown();
    }

    #[test]
    fn predicate_parse_defaults_and_errors() {
        let addr = AddressSpec::new("mote").with_predicate("interval", "250");
        assert_eq!(predicate_parse(&addr, "interval", 100i64).unwrap(), 250);
        assert_eq!(predicate_parse(&addr, "missing", 100i64).unwrap(), 100);
        let bad = AddressSpec::new("mote").with_predicate("interval", "fast");
        assert!(predicate_parse(&bad, "interval", 100i64).is_err());
    }
}
