//! Simulated RFID reader wrapper.
//!
//! The paper's demo includes "one sensor network with RFID readers and tags" (Section 6)
//! and uses tag detections to trigger notifications ("when the RFID reader recognizes an
//! RFID tag, a picture ... would be returned").  The simulated reader draws tag sightings
//! from a configurable tag population: on each reading interval it detects a tag with the
//! configured probability.
//!
//! Address predicates:
//!
//! | predicate | default | meaning |
//! |---|---|---|
//! | `interval` | `500` | polling interval in milliseconds |
//! | `reader-id` | `reader-1` | reported reader id |
//! | `tags` | `tag-1,tag-2,tag-3` | comma-separated tag population |
//! | `detection-probability` | `0.3` | probability a poll sees a tag |
//! | `seed` | `1` | RNG seed |

use std::sync::Arc;

use gsn_types::{DataType, Duration, GsnResult, StreamElement, StreamSchema, Timestamp, Value};
use gsn_xml::AddressSpec;

use crate::sim::{DeviceRng, Schedule};
use crate::wrapper::{predicate_parse, Wrapper, WrapperFactory};

/// Configuration of a simulated RFID reader.
#[derive(Debug, Clone)]
pub struct RfidConfig {
    /// Polling interval.
    pub interval: Duration,
    /// Reader identifier.
    pub reader_id: String,
    /// The tags that can be seen by this reader.
    pub tags: Vec<String>,
    /// Probability that a poll detects a tag.
    pub detection_probability: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RfidConfig {
    fn default() -> Self {
        RfidConfig {
            interval: Duration::from_millis(500),
            reader_id: "reader-1".to_owned(),
            tags: vec!["tag-1".to_owned(), "tag-2".to_owned(), "tag-3".to_owned()],
            detection_probability: 0.3,
            seed: 1,
        }
    }
}

impl RfidConfig {
    /// Builds a configuration from address predicates.
    pub fn from_address(address: &AddressSpec) -> GsnResult<RfidConfig> {
        let interval_ms: i64 = predicate_parse(address, "interval", 500)?;
        let detection_probability: f64 = predicate_parse(address, "detection-probability", 0.3)?;
        let seed: u64 = predicate_parse(address, "seed", 1)?;
        let tags = address
            .predicate("tags")
            .map(|t| {
                t.split(',')
                    .map(|s| s.trim().to_owned())
                    .filter(|s| !s.is_empty())
                    .collect()
            })
            .unwrap_or_else(|| RfidConfig::default().tags);
        if tags.is_empty() {
            return Err(gsn_types::GsnError::descriptor(
                "rfid wrapper requires a non-empty tag population",
            ));
        }
        Ok(RfidConfig {
            interval: Duration::from_millis(interval_ms.max(1)),
            reader_id: address
                .predicate("reader-id")
                .unwrap_or("reader-1")
                .to_owned(),
            tags,
            detection_probability,
            seed,
        })
    }
}

/// The simulated RFID reader wrapper.
#[derive(Debug)]
pub struct RfidWrapper {
    config: RfidConfig,
    schema: Arc<StreamSchema>,
    schedule: Schedule,
    rng: DeviceRng,
    detections: u64,
}

impl RfidWrapper {
    /// The output structure of every RFID wrapper.
    pub fn schema() -> Arc<StreamSchema> {
        Arc::new(
            StreamSchema::from_pairs(&[
                ("reader_id", DataType::Varchar),
                ("tag", DataType::Varchar),
                ("signal_strength", DataType::Double),
            ])
            .unwrap(),
        )
    }

    /// Creates an RFID wrapper with its schedule starting at time zero.
    pub fn new(config: RfidConfig) -> RfidWrapper {
        RfidWrapper {
            schedule: Schedule::new(Timestamp::EPOCH, config.interval),
            schema: Self::schema(),
            rng: DeviceRng::new(config.seed),
            detections: 0,
            config,
        }
    }

    /// Number of tag detections produced so far.
    pub fn detections(&self) -> u64 {
        self.detections
    }

    /// Forces a detection of a specific tag at a specific time (used by examples to
    /// emulate an audience member swiping a badge, as in the paper's demo script).
    pub fn force_detection(&mut self, tag: &str, at: Timestamp) -> GsnResult<StreamElement> {
        self.detections += 1;
        StreamElement::new(
            Arc::clone(&self.schema),
            vec![
                Value::varchar(self.config.reader_id.clone()),
                Value::varchar(tag),
                Value::Double(1.0),
            ],
            at,
        )
    }
}

impl Wrapper for RfidWrapper {
    fn kind(&self) -> &str {
        "rfid"
    }

    fn output_schema(&self) -> Arc<StreamSchema> {
        Arc::clone(&self.schema)
    }

    fn nominal_interval(&self) -> Duration {
        self.config.interval
    }

    fn start(&mut self, at: Timestamp) {
        self.schedule = crate::sim::Schedule::new(at, self.config.interval);
    }

    fn poll(&mut self, now: Timestamp) -> GsnResult<Vec<StreamElement>> {
        let mut out = Vec::new();
        for due in self.schedule.due_times(now) {
            if !self.rng.chance(self.config.detection_probability) {
                continue;
            }
            let tag_index = self.rng.range_i64(0, self.config.tags.len() as i64 - 1) as usize;
            let signal = self.rng.range_f64(0.2, 1.0);
            let values = vec![
                Value::varchar(self.config.reader_id.clone()),
                Value::varchar(self.config.tags[tag_index].clone()),
                Value::Double((signal * 100.0).round() / 100.0),
            ];
            self.detections += 1;
            out.push(
                StreamElement::new(Arc::clone(&self.schema), values, due)?.with_produced_at(due),
            );
        }
        Ok(out)
    }

    fn describe(&self) -> String {
        format!(
            "rfid reader {} ({} tags, p={})",
            self.config.reader_id,
            self.config.tags.len(),
            self.config.detection_probability
        )
    }
}

/// Factory for [`RfidWrapper`].
#[derive(Debug, Default)]
pub struct RfidWrapperFactory;

impl WrapperFactory for RfidWrapperFactory {
    fn kind(&self) -> &str {
        "rfid"
    }

    fn create(&self, address: &AddressSpec) -> GsnResult<Box<dyn Wrapper>> {
        Ok(Box::new(RfidWrapper::new(RfidConfig::from_address(
            address,
        )?)))
    }

    fn description(&self) -> String {
        "simulated RFID reader (Texas Instruments-class)".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detections_come_from_the_tag_population() {
        let mut reader = RfidWrapper::new(RfidConfig {
            interval: Duration::from_millis(10),
            detection_probability: 1.0,
            tags: vec!["badge-a".into(), "badge-b".into()],
            ..Default::default()
        });
        let detections = reader.poll(Timestamp(1_000)).unwrap();
        assert_eq!(detections.len(), 100);
        for d in &detections {
            let tag = d.value("TAG").unwrap();
            let tag = tag.as_str().unwrap();
            assert!(tag == "badge-a" || tag == "badge-b");
            let s = d.value("SIGNAL_STRENGTH").unwrap().as_double().unwrap();
            assert!((0.2..=1.0).contains(&s));
        }
        assert_eq!(reader.detections(), 100);
    }

    #[test]
    fn detection_probability_thins_the_stream() {
        let mut reader = RfidWrapper::new(RfidConfig {
            interval: Duration::from_millis(10),
            detection_probability: 0.2,
            ..Default::default()
        });
        let n = reader.poll(Timestamp(100_000)).unwrap().len();
        assert!(n > 1_500 && n < 2_500, "detections {n}");
    }

    #[test]
    fn force_detection_emits_the_requested_tag() {
        let mut reader = RfidWrapper::new(RfidConfig::default());
        let e = reader
            .force_detection("visitor-badge-42", Timestamp(123))
            .unwrap();
        assert_eq!(e.value("TAG"), Some(Value::varchar("visitor-badge-42")));
        assert_eq!(e.timestamp(), Timestamp(123));
        assert_eq!(reader.detections(), 1);
    }

    #[test]
    fn factory_reads_predicates_and_validates() {
        let addr = AddressSpec::new("rfid")
            .with_predicate("reader-id", "ti-reader")
            .with_predicate("tags", "a, b, c, d")
            .with_predicate("detection-probability", "1.0")
            .with_predicate("interval", "100");
        let mut reader = RfidWrapperFactory.create(&addr).unwrap();
        assert_eq!(reader.kind(), "rfid");
        let detections = reader.poll(Timestamp(500)).unwrap();
        assert_eq!(detections.len(), 5);
        assert_eq!(
            detections[0].value("READER_ID"),
            Some(Value::varchar("ti-reader"))
        );
        assert!(RfidWrapperFactory
            .create(&AddressSpec::new("rfid").with_predicate("tags", " , "))
            .is_err());
    }
}
