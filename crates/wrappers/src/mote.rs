//! Simulated TinyOS mote wrapper (MICA2-class devices).
//!
//! The paper's demo deploys "MICA2 motes equipped with light, temperature, and 2D
//! acceleration sensors" (Section 6) and its scalability experiment uses 22 motes across
//! 4 networks (Section 5).  The simulated mote produces exactly that output structure at a
//! configurable interval, with an optional fixed padding field so the Figure 3 benchmark
//! can sweep stream-element sizes (15 B, 50 B, 100 B).
//!
//! Address predicates:
//!
//! | predicate | default | meaning |
//! |---|---|---|
//! | `interval` | `1000` | production interval in milliseconds |
//! | `mote-id` | `1` | reported mote id |
//! | `network` | `net-1` | reported sensor network name |
//! | `padding` | `0` | extra payload bytes per element |
//! | `seed` | `mote-id` | RNG seed |
//! | `drop-probability` | `0` | probability a reading is lost |
//! | `disconnect-probability` | `0` | probability a disconnection starts |
//! | `disconnect-duration` | `5000` | disconnection length in milliseconds |

use std::sync::Arc;

use gsn_types::{DataType, Duration, GsnResult, StreamElement, StreamSchema, Timestamp, Value};
use gsn_xml::AddressSpec;

use crate::sim::{DeviceRng, FailureModel, RandomWalk, Schedule};
use crate::wrapper::{predicate_parse, Wrapper, WrapperFactory};

/// Configuration of a simulated mote.
#[derive(Debug, Clone)]
pub struct MoteConfig {
    /// Production interval.
    pub interval: Duration,
    /// Mote identifier reported in the `MOTE_ID` field.
    pub mote_id: i64,
    /// Sensor network name reported in the `NETWORK` field.
    pub network: String,
    /// Extra payload bytes appended per element (stream-element-size sweeps).
    pub padding: usize,
    /// RNG seed.
    pub seed: u64,
    /// Failure behaviour.
    pub failures: FailureModel,
}

impl Default for MoteConfig {
    fn default() -> Self {
        MoteConfig {
            interval: Duration::from_secs(1),
            mote_id: 1,
            network: "net-1".to_owned(),
            padding: 0,
            seed: 1,
            failures: FailureModel::none(),
        }
    }
}

impl MoteConfig {
    /// Builds a configuration from address predicates.
    pub fn from_address(address: &AddressSpec) -> GsnResult<MoteConfig> {
        let mote_id: i64 = predicate_parse(address, "mote-id", 1)?;
        let interval_ms: i64 = predicate_parse(address, "interval", 1_000)?;
        let padding: usize = predicate_parse(address, "padding", 0)?;
        let seed: u64 = predicate_parse(address, "seed", mote_id as u64)?;
        let drop: f64 = predicate_parse(address, "drop-probability", 0.0)?;
        let disc: f64 = predicate_parse(address, "disconnect-probability", 0.0)?;
        let disc_ms: i64 = predicate_parse(address, "disconnect-duration", 5_000)?;
        Ok(MoteConfig {
            interval: Duration::from_millis(interval_ms.max(1)),
            mote_id,
            network: address.predicate("network").unwrap_or("net-1").to_owned(),
            padding,
            seed,
            failures: FailureModel::new(drop, disc, Duration::from_millis(disc_ms.max(0))),
        })
    }
}

/// The simulated mote wrapper.
#[derive(Debug)]
pub struct MoteWrapper {
    config: MoteConfig,
    schema: Arc<StreamSchema>,
    schedule: Schedule,
    rng: DeviceRng,
    temperature: RandomWalk,
    light: RandomWalk,
    accel_x: RandomWalk,
    accel_y: RandomWalk,
    produced: u64,
}

impl MoteWrapper {
    /// The output structure shared by every mote wrapper.
    pub fn schema() -> Arc<StreamSchema> {
        Arc::new(
            StreamSchema::from_pairs(&[
                ("mote_id", DataType::Integer),
                ("network", DataType::Varchar),
                ("temperature", DataType::Double),
                ("light", DataType::Double),
                ("accel_x", DataType::Double),
                ("accel_y", DataType::Double),
                ("padding", DataType::Binary),
            ])
            .unwrap(),
        )
    }

    /// Creates a mote wrapper from a configuration, starting its schedule at time zero.
    pub fn new(config: MoteConfig) -> MoteWrapper {
        Self::starting_at(config, Timestamp::EPOCH)
    }

    /// Creates a mote wrapper whose first element is due one interval after `start`.
    pub fn starting_at(config: MoteConfig, start: Timestamp) -> MoteWrapper {
        let mut rng = DeviceRng::new(config.seed);
        let temperature = RandomWalk::new(rng.range_f64(18.0, 26.0), 10.0, 40.0, 0.3);
        let light = RandomWalk::new(rng.range_f64(200.0, 800.0), 0.0, 1_000.0, 25.0);
        let accel_x = RandomWalk::new(0.0, -2.0, 2.0, 0.2);
        let accel_y = RandomWalk::new(0.0, -2.0, 2.0, 0.2);
        MoteWrapper {
            schedule: Schedule::new(start, config.interval),
            schema: Self::schema(),
            rng,
            temperature,
            light,
            accel_x,
            accel_y,
            produced: 0,
            config,
        }
    }

    /// Total number of elements produced so far.
    pub fn produced(&self) -> u64 {
        self.produced
    }
}

impl Wrapper for MoteWrapper {
    fn kind(&self) -> &str {
        "mote"
    }

    fn output_schema(&self) -> Arc<StreamSchema> {
        Arc::clone(&self.schema)
    }

    fn nominal_interval(&self) -> Duration {
        self.config.interval
    }

    fn start(&mut self, at: Timestamp) {
        self.schedule = crate::sim::Schedule::new(at, self.config.interval);
    }

    fn poll(&mut self, now: Timestamp) -> GsnResult<Vec<StreamElement>> {
        let mut out = Vec::new();
        for due in self.schedule.due_times(now) {
            if !self.config.failures.produces(due, &mut self.rng) {
                continue;
            }
            let padding = if self.config.padding > 0 {
                Value::binary(self.rng.payload(self.config.padding))
            } else {
                Value::binary(Vec::new())
            };
            let values = vec![
                Value::Integer(self.config.mote_id),
                Value::varchar(self.config.network.clone()),
                Value::Double(round2(self.temperature.step(&mut self.rng))),
                Value::Double(round2(self.light.step(&mut self.rng))),
                Value::Double(round2(self.accel_x.step(&mut self.rng))),
                Value::Double(round2(self.accel_y.step(&mut self.rng))),
                padding,
            ];
            let element =
                StreamElement::new(Arc::clone(&self.schema), values, due)?.with_produced_at(due);
            self.produced += 1;
            out.push(element);
        }
        Ok(out)
    }

    fn describe(&self) -> String {
        format!(
            "mote {} in {} every {}",
            self.config.mote_id, self.config.network, self.config.interval
        )
    }
}

fn round2(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}

/// Factory for [`MoteWrapper`].
#[derive(Debug, Default)]
pub struct MoteWrapperFactory;

impl WrapperFactory for MoteWrapperFactory {
    fn kind(&self) -> &str {
        "mote"
    }

    fn create(&self, address: &AddressSpec) -> GsnResult<Box<dyn Wrapper>> {
        Ok(Box::new(MoteWrapper::new(MoteConfig::from_address(
            address,
        )?)))
    }

    fn description(&self) -> String {
        "simulated MICA2-class mote (temperature, light, 2D acceleration)".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_one_element_per_interval() {
        let mut mote = MoteWrapper::new(MoteConfig {
            interval: Duration::from_millis(100),
            ..Default::default()
        });
        assert!(mote.poll(Timestamp(99)).unwrap().is_empty());
        assert_eq!(mote.poll(Timestamp(100)).unwrap().len(), 1);
        assert_eq!(mote.poll(Timestamp(1_000)).unwrap().len(), 9);
        assert_eq!(mote.produced(), 10);
    }

    #[test]
    fn elements_match_the_schema_and_ranges() {
        let mut mote = MoteWrapper::new(MoteConfig {
            interval: Duration::from_millis(10),
            mote_id: 7,
            network: "net-3".to_owned(),
            ..Default::default()
        });
        let elements = mote.poll(Timestamp(1_000)).unwrap();
        assert_eq!(elements.len(), 100);
        for e in &elements {
            assert_eq!(e.value("MOTE_ID"), Some(Value::Integer(7)));
            assert_eq!(e.value("NETWORK"), Some(Value::varchar("net-3")));
            let t = e.value("TEMPERATURE").unwrap().as_double().unwrap();
            assert!((10.0..=40.0).contains(&t));
            let l = e.value("LIGHT").unwrap().as_double().unwrap();
            assert!((0.0..=1000.0).contains(&l));
            assert!(e.produced_at().is_some());
        }
    }

    #[test]
    fn padding_controls_element_size() {
        let mut small = MoteWrapper::new(MoteConfig {
            interval: Duration::from_millis(100),
            padding: 0,
            ..Default::default()
        });
        let mut big = MoteWrapper::new(MoteConfig {
            interval: Duration::from_millis(100),
            padding: 1_000,
            ..Default::default()
        });
        let e_small = small.poll(Timestamp(100)).unwrap().remove(0);
        let e_big = big.poll(Timestamp(100)).unwrap().remove(0);
        assert_eq!(e_big.size_bytes() - e_small.size_bytes(), 1_000);
    }

    #[test]
    fn same_seed_same_stream() {
        let config = MoteConfig {
            interval: Duration::from_millis(50),
            seed: 99,
            ..Default::default()
        };
        let mut a = MoteWrapper::new(config.clone());
        let mut b = MoteWrapper::new(config);
        assert_eq!(
            a.poll(Timestamp(500)).unwrap(),
            b.poll(Timestamp(500)).unwrap()
        );
    }

    #[test]
    fn failures_reduce_output() {
        let mut flaky = MoteWrapper::new(MoteConfig {
            interval: Duration::from_millis(10),
            failures: FailureModel::new(0.5, 0.0, Duration::ZERO),
            ..Default::default()
        });
        let produced = flaky.poll(Timestamp(10_000)).unwrap().len();
        assert!(produced > 300 && produced < 700, "produced {produced}");
    }

    #[test]
    fn factory_reads_predicates() {
        let addr = AddressSpec::new("mote")
            .with_predicate("interval", "25")
            .with_predicate("mote-id", "12")
            .with_predicate("network", "net-2")
            .with_predicate("padding", "35");
        let mut w = MoteWrapperFactory.create(&addr).unwrap();
        assert_eq!(w.nominal_interval(), Duration::from_millis(25));
        let e = w.poll(Timestamp(25)).unwrap().remove(0);
        assert_eq!(e.value("MOTE_ID"), Some(Value::Integer(12)));
        assert_eq!(e.value("NETWORK"), Some(Value::varchar("net-2")));
        assert_eq!(e.value("PADDING").unwrap().size_bytes(), 35);
        assert!(MoteWrapperFactory
            .create(&AddressSpec::new("mote").with_predicate("interval", "soon"))
            .is_err());
        assert!(MoteWrapperFactory.description().contains("MICA2"));
    }
}
