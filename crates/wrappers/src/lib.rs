//! # gsn-wrappers
//!
//! Sensor-platform wrappers for GSN-RS.
//!
//! In GSN a *wrapper* adapts one physical platform (TinyOS motes, network cameras, RFID
//! readers, ...) to the container's stream-element interface; the paper reports that a new
//! wrapper is typically 100–200 lines and takes under a day to write (Section 5).  This
//! crate provides:
//!
//! * the [`Wrapper`] trait and [`WrapperRegistry`] / [`WrapperFactory`] extension point,
//! * simulated device wrappers replacing the paper's physical testbed
//!   ([`mote::MoteWrapper`], [`camera::CameraWrapper`], [`rfid::RfidWrapper`]) — see
//!   DESIGN.md for the substitution rationale,
//! * utility wrappers ([`generic::PushWrapper`], [`generic::ReplayWrapper`],
//!   [`generic::ScriptedWrapper`], [`generic::SystemTimeWrapper`]) used by examples,
//!   tests and the benchmark harnesses,
//! * deterministic device-simulation primitives ([`sim`]).
//!
//! The `remote` wrapper (reading another GSN node's virtual sensor over the network) lives
//! in `gsn-core`, because it needs the container's network client.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod camera;
pub mod generic;
pub mod mote;
pub mod rfid;
pub mod sim;
pub mod wrapper;

pub use camera::{CameraConfig, CameraWrapper, CameraWrapperFactory};
pub use generic::{
    PushHandle, PushWrapper, PushWrapperFactory, ReplayWrapper, ReplayWrapperFactory,
    ScriptedWrapper, ScriptedWrapperFactory, SystemTimeWrapper, SystemTimeWrapperFactory, TraceRow,
};
pub use mote::{MoteConfig, MoteWrapper, MoteWrapperFactory};
pub use rfid::{RfidConfig, RfidWrapper, RfidWrapperFactory};
pub use wrapper::{Wrapper, WrapperFactory, WrapperRegistry};
