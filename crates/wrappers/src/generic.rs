//! Generic wrappers: system time, push (in-process), replay and scripted generators.
//!
//! Beyond device simulations, GSN ships utility wrappers that make testing and composition
//! easy.  GSN-RS provides four:
//!
//! * [`SystemTimeWrapper`] — emits a heartbeat element per interval (GSN's classic
//!   "system-time" wrapper used in tutorials).
//! * [`PushWrapper`] — an in-process channel; applications push [`StreamElement`]s and the
//!   container pulls them on its normal schedule.  This is how external feeds (or tests)
//!   inject data without writing a wrapper.
//! * [`ReplayWrapper`] — replays a recorded trace of `(offset, values)` rows, optionally
//!   looping; used for reproducible demos.
//! * [`ScriptedWrapper`] — produces elements from a registered generator function; the
//!   benchmark harnesses use it to sweep payload sizes precisely.

use std::collections::HashMap;
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};
use gsn_types::{
    DataType, Duration, GsnError, GsnResult, StreamElement, StreamSchema, Timestamp, Value,
};
use gsn_xml::AddressSpec;
use parking_lot::Mutex;

use crate::sim::Schedule;
use crate::wrapper::{predicate_parse, Wrapper, WrapperFactory};

// ---------------------------------------------------------------------------------------
// System time wrapper
// ---------------------------------------------------------------------------------------

/// Emits one heartbeat element per interval carrying the current timestamp.
#[derive(Debug)]
pub struct SystemTimeWrapper {
    schema: Arc<StreamSchema>,
    schedule: Schedule,
    interval: Duration,
}

impl SystemTimeWrapper {
    /// The output structure: a single `CLOCK` timestamp field.
    pub fn schema() -> Arc<StreamSchema> {
        Arc::new(StreamSchema::from_pairs(&[("clock", DataType::Timestamp)]).unwrap())
    }

    /// Creates a system-time wrapper.
    pub fn new(interval: Duration) -> SystemTimeWrapper {
        SystemTimeWrapper {
            schema: Self::schema(),
            schedule: Schedule::new(Timestamp::EPOCH, interval),
            interval,
        }
    }
}

impl Wrapper for SystemTimeWrapper {
    fn kind(&self) -> &str {
        "system-time"
    }
    fn output_schema(&self) -> Arc<StreamSchema> {
        Arc::clone(&self.schema)
    }
    fn nominal_interval(&self) -> Duration {
        self.interval
    }
    fn start(&mut self, at: Timestamp) {
        self.schedule = crate::sim::Schedule::new(at, self.interval);
    }

    fn poll(&mut self, now: Timestamp) -> GsnResult<Vec<StreamElement>> {
        self.schedule
            .due_times(now)
            .into_iter()
            .map(|due| {
                StreamElement::new(Arc::clone(&self.schema), vec![Value::Timestamp(due)], due)
            })
            .collect()
    }
}

/// Factory for [`SystemTimeWrapper`] (`interval` predicate, default 1000 ms).
#[derive(Debug, Default)]
pub struct SystemTimeWrapperFactory;

impl WrapperFactory for SystemTimeWrapperFactory {
    fn kind(&self) -> &str {
        "system-time"
    }
    fn create(&self, address: &AddressSpec) -> GsnResult<Box<dyn Wrapper>> {
        let interval_ms: i64 = predicate_parse(address, "interval", 1_000)?;
        Ok(Box::new(SystemTimeWrapper::new(Duration::from_millis(
            interval_ms.max(1),
        ))))
    }
    fn description(&self) -> String {
        "heartbeat wrapper emitting the container clock".to_owned()
    }
}

// ---------------------------------------------------------------------------------------
// Push wrapper
// ---------------------------------------------------------------------------------------

/// The sending half of a [`PushWrapper`]; clone it freely and push elements from anywhere
/// in the process.
#[derive(Debug, Clone)]
pub struct PushHandle {
    sender: Sender<StreamElement>,
    schema: Arc<StreamSchema>,
}

impl PushHandle {
    /// Pushes a pre-built element.
    pub fn push(&self, element: StreamElement) -> GsnResult<()> {
        self.sender
            .send(element)
            .map_err(|_| GsnError::disconnected("push wrapper has been shut down"))
    }

    /// Builds and pushes an element from raw values.
    pub fn push_values(&self, values: Vec<Value>, timestamp: Timestamp) -> GsnResult<()> {
        let element = StreamElement::new(Arc::clone(&self.schema), values, timestamp)?;
        self.push(element)
    }

    /// The schema elements must conform to.
    pub fn schema(&self) -> &Arc<StreamSchema> {
        &self.schema
    }
}

/// An in-process wrapper fed through a [`PushHandle`].
#[derive(Debug)]
pub struct PushWrapper {
    schema: Arc<StreamSchema>,
    receiver: Receiver<StreamElement>,
    interval: Duration,
}

impl PushWrapper {
    /// Creates a push wrapper with the given schema, returning the wrapper and its handle.
    pub fn new(schema: Arc<StreamSchema>, interval: Duration) -> (PushWrapper, PushHandle) {
        let (sender, receiver) = unbounded();
        let handle = PushHandle {
            sender,
            schema: Arc::clone(&schema),
        };
        (
            PushWrapper {
                schema,
                receiver,
                interval,
            },
            handle,
        )
    }
}

impl Wrapper for PushWrapper {
    fn kind(&self) -> &str {
        "push"
    }
    fn output_schema(&self) -> Arc<StreamSchema> {
        Arc::clone(&self.schema)
    }
    fn nominal_interval(&self) -> Duration {
        self.interval
    }
    fn poll(&mut self, _now: Timestamp) -> GsnResult<Vec<StreamElement>> {
        Ok(self.receiver.try_iter().collect())
    }
}

/// Factory for [`PushWrapper`].
///
/// Because the pushing side needs the [`PushHandle`], descriptors reference a *named
/// channel*: the factory keeps a registry of channels keyed by the `channel` predicate,
/// and [`PushWrapperFactory::handle`] retrieves the handle for application code.  The
/// element schema is declared with `field-N`/`type-N` predicates or defaults to a single
/// `VALUE double` field.
pub struct PushWrapperFactory {
    channels: Mutex<HashMap<String, PushHandle>>,
    pending: Mutex<HashMap<String, PushWrapper>>,
}

impl Default for PushWrapperFactory {
    fn default() -> Self {
        Self::new()
    }
}

impl PushWrapperFactory {
    /// Creates a factory with no channels.
    pub fn new() -> PushWrapperFactory {
        PushWrapperFactory {
            channels: Mutex::new(HashMap::new()),
            pending: Mutex::new(HashMap::new()),
        }
    }

    /// Returns (creating on demand) the push handle for a named channel with the given
    /// schema.  Deploying a descriptor whose address names the same channel binds the
    /// wrapper to this handle.
    pub fn handle(&self, channel: &str, schema: Arc<StreamSchema>) -> PushHandle {
        let mut channels = self.channels.lock();
        if let Some(handle) = channels.get(channel) {
            return handle.clone();
        }
        let (wrapper, handle) = PushWrapper::new(schema, Duration::from_millis(100));
        channels.insert(channel.to_owned(), handle.clone());
        self.pending.lock().insert(channel.to_owned(), wrapper);
        handle
    }
}

impl std::fmt::Debug for PushWrapperFactory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PushWrapperFactory({} channels)",
            self.channels.lock().len()
        )
    }
}

impl WrapperFactory for PushWrapperFactory {
    fn kind(&self) -> &str {
        "push"
    }

    fn create(&self, address: &AddressSpec) -> GsnResult<Box<dyn Wrapper>> {
        let channel = address
            .predicate("channel")
            .ok_or_else(|| GsnError::descriptor("push wrapper requires a `channel` predicate"))?;
        // If application code already created the channel, hand out the buffered wrapper.
        if let Some(wrapper) = self.pending.lock().remove(channel) {
            return Ok(Box::new(wrapper));
        }
        // Otherwise create the channel now using the declared schema predicates.
        let schema = schema_from_predicates(address)?;
        let (wrapper, handle) = PushWrapper::new(Arc::new(schema), Duration::from_millis(100));
        self.channels.lock().insert(channel.to_owned(), handle);
        Ok(Box::new(wrapper))
    }

    fn description(&self) -> String {
        "in-process push channel wrapper".to_owned()
    }
}

/// Builds a schema from `field-1`/`type-1`, `field-2`/`type-2`, ... predicates.
fn schema_from_predicates(address: &AddressSpec) -> GsnResult<StreamSchema> {
    let mut fields = Vec::new();
    for i in 1..=32 {
        match address.predicate(&format!("field-{i}")) {
            Some(name) => {
                let ty = address.predicate(&format!("type-{i}")).unwrap_or("double");
                fields.push(gsn_types::FieldSpec::new(name, DataType::parse(ty)?)?);
            }
            None => break,
        }
    }
    if fields.is_empty() {
        fields.push(gsn_types::FieldSpec::new("value", DataType::Double)?);
    }
    StreamSchema::new(fields)
}

// ---------------------------------------------------------------------------------------
// Replay wrapper
// ---------------------------------------------------------------------------------------

/// One recorded row of a replay trace: millisecond offset from stream start plus values.
#[derive(Debug, Clone)]
pub struct TraceRow {
    /// Offset from the start of the trace.
    pub offset: Duration,
    /// The field values.
    pub values: Vec<Value>,
}

/// Replays a recorded trace, optionally looping when the trace ends.
#[derive(Debug)]
pub struct ReplayWrapper {
    schema: Arc<StreamSchema>,
    trace: Vec<TraceRow>,
    looped: bool,
    cursor: usize,
    epoch: Timestamp,
    interval: Duration,
}

impl ReplayWrapper {
    /// Creates a replay wrapper over a trace.
    pub fn new(schema: Arc<StreamSchema>, trace: Vec<TraceRow>, looped: bool) -> ReplayWrapper {
        let interval = trace
            .get(1)
            .map(|r| r.offset)
            .unwrap_or(Duration::from_secs(1));
        ReplayWrapper {
            schema,
            trace,
            looped,
            cursor: 0,
            epoch: Timestamp::EPOCH,
            interval,
        }
    }

    /// Parses a simple CSV trace: `offset_ms,value[,value...]` per line, `#` comments.
    pub fn parse_csv(
        schema: Arc<StreamSchema>,
        csv: &str,
        looped: bool,
    ) -> GsnResult<ReplayWrapper> {
        let mut trace = Vec::new();
        for (lineno, line) in csv.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split(',').map(str::trim);
            let offset: i64 = parts.next().unwrap_or_default().parse().map_err(|_| {
                GsnError::descriptor(format!("replay trace line {}: bad offset", lineno + 1))
            })?;
            let mut values = Vec::new();
            for (field, raw) in schema.fields().zip(parts) {
                let value = match field.data_type {
                    DataType::Integer | DataType::Timestamp => {
                        Value::Integer(raw.parse().map_err(|_| {
                            GsnError::descriptor(format!(
                                "replay trace line {}: bad integer `{raw}`",
                                lineno + 1
                            ))
                        })?)
                    }
                    DataType::Double => Value::Double(raw.parse().map_err(|_| {
                        GsnError::descriptor(format!(
                            "replay trace line {}: bad double `{raw}`",
                            lineno + 1
                        ))
                    })?),
                    DataType::Boolean => {
                        Value::Boolean(raw.eq_ignore_ascii_case("true") || raw == "1")
                    }
                    DataType::Varchar => Value::varchar(raw),
                    DataType::Binary => Value::binary(raw.as_bytes().to_vec()),
                };
                values.push(value);
            }
            if values.len() != schema.len() {
                return Err(GsnError::descriptor(format!(
                    "replay trace line {}: expected {} values, found {}",
                    lineno + 1,
                    schema.len(),
                    values.len()
                )));
            }
            trace.push(TraceRow {
                offset: Duration::from_millis(offset),
                values,
            });
        }
        Ok(ReplayWrapper::new(schema, trace, looped))
    }
}

impl Wrapper for ReplayWrapper {
    fn kind(&self) -> &str {
        "replay"
    }
    fn output_schema(&self) -> Arc<StreamSchema> {
        Arc::clone(&self.schema)
    }
    fn nominal_interval(&self) -> Duration {
        self.interval
    }
    fn start(&mut self, at: Timestamp) {
        self.epoch = at;
    }

    fn poll(&mut self, now: Timestamp) -> GsnResult<Vec<StreamElement>> {
        let mut out = Vec::new();
        loop {
            if self.cursor >= self.trace.len() {
                if self.looped && !self.trace.is_empty() {
                    // Restart the trace relative to the last covered instant.
                    let span = self
                        .trace
                        .last()
                        .map(|r| r.offset)
                        .unwrap_or(Duration::ZERO);
                    self.epoch = self.epoch + span + self.interval;
                    self.cursor = 0;
                } else {
                    break;
                }
            }
            let row = &self.trace[self.cursor];
            let due = self.epoch + row.offset;
            if due > now {
                break;
            }
            out.push(StreamElement::new(
                Arc::clone(&self.schema),
                row.values.clone(),
                due,
            )?);
            self.cursor += 1;
        }
        Ok(out)
    }
}

/// A registered replay trace: the schema plus its rows.
type RegisteredTrace = (Arc<StreamSchema>, Vec<TraceRow>);

/// Factory for [`ReplayWrapper`] — the trace is supplied inline via the `trace` predicate
/// (CSV with `;` as the row separator) or by application code through
/// [`ReplayWrapperFactory::register_trace`].
pub struct ReplayWrapperFactory {
    traces: Mutex<HashMap<String, RegisteredTrace>>,
}

impl Default for ReplayWrapperFactory {
    fn default() -> Self {
        Self::new()
    }
}

impl ReplayWrapperFactory {
    /// Creates a factory with no registered traces.
    pub fn new() -> ReplayWrapperFactory {
        ReplayWrapperFactory {
            traces: Mutex::new(HashMap::new()),
        }
    }

    /// Registers a named trace that descriptors can reference with the `trace-name`
    /// predicate.
    pub fn register_trace(&self, name: &str, schema: Arc<StreamSchema>, trace: Vec<TraceRow>) {
        self.traces.lock().insert(name.to_owned(), (schema, trace));
    }
}

impl std::fmt::Debug for ReplayWrapperFactory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ReplayWrapperFactory({} traces)",
            self.traces.lock().len()
        )
    }
}

impl WrapperFactory for ReplayWrapperFactory {
    fn kind(&self) -> &str {
        "replay"
    }

    fn create(&self, address: &AddressSpec) -> GsnResult<Box<dyn Wrapper>> {
        let looped = address
            .predicate("loop")
            .map(|v| v.eq_ignore_ascii_case("true"))
            .unwrap_or(false);
        if let Some(name) = address.predicate("trace-name") {
            let traces = self.traces.lock();
            let (schema, trace) = traces.get(name).ok_or_else(|| {
                GsnError::not_found(format!("no replay trace registered under `{name}`"))
            })?;
            return Ok(Box::new(ReplayWrapper::new(
                Arc::clone(schema),
                trace.clone(),
                looped,
            )));
        }
        let csv = address
            .predicate("trace")
            .ok_or_else(|| GsnError::descriptor("replay wrapper requires `trace` or `trace-name`"))?
            .replace(';', "\n");
        let schema = Arc::new(schema_from_predicates(address)?);
        Ok(Box::new(ReplayWrapper::parse_csv(schema, &csv, looped)?))
    }

    fn description(&self) -> String {
        "trace replay wrapper".to_owned()
    }
}

// ---------------------------------------------------------------------------------------
// Scripted wrapper
// ---------------------------------------------------------------------------------------

/// The generator signature for [`ScriptedWrapper`]: `(sequence number, due time) -> values`.
pub type Generator = dyn FnMut(u64, Timestamp) -> Vec<Value> + Send;

/// Produces elements from a closure at a fixed interval — the workhorse of the benchmark
/// harnesses (exact payload-size sweeps without device-model noise).
pub struct ScriptedWrapper {
    schema: Arc<StreamSchema>,
    schedule: Schedule,
    interval: Duration,
    generator: Box<Generator>,
    counter: u64,
}

impl ScriptedWrapper {
    /// Creates a scripted wrapper.
    pub fn new(
        schema: Arc<StreamSchema>,
        interval: Duration,
        generator: Box<Generator>,
    ) -> ScriptedWrapper {
        ScriptedWrapper {
            schema,
            schedule: Schedule::new(Timestamp::EPOCH, interval),
            interval,
            generator,
            counter: 0,
        }
    }
}

impl std::fmt::Debug for ScriptedWrapper {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ScriptedWrapper(interval={})", self.interval)
    }
}

impl Wrapper for ScriptedWrapper {
    fn kind(&self) -> &str {
        "scripted"
    }
    fn output_schema(&self) -> Arc<StreamSchema> {
        Arc::clone(&self.schema)
    }
    fn nominal_interval(&self) -> Duration {
        self.interval
    }
    fn start(&mut self, at: Timestamp) {
        self.schedule = crate::sim::Schedule::new(at, self.interval);
    }

    fn poll(&mut self, now: Timestamp) -> GsnResult<Vec<StreamElement>> {
        let mut out = Vec::new();
        for due in self.schedule.due_times(now) {
            self.counter += 1;
            let values = (self.generator)(self.counter, due);
            out.push(StreamElement::new(Arc::clone(&self.schema), values, due)?);
        }
        Ok(out)
    }
}

/// Factory for [`ScriptedWrapper`].
///
/// Descriptors cannot carry closures, so the descriptor-facing configuration supports a
/// simple built-in generator: a counter plus an optional binary payload of `payload-size`
/// bytes every `interval` milliseconds.  Benchmarks construct [`ScriptedWrapper`] directly
/// with custom closures instead.
#[derive(Debug, Default)]
pub struct ScriptedWrapperFactory;

impl WrapperFactory for ScriptedWrapperFactory {
    fn kind(&self) -> &str {
        "scripted"
    }

    fn create(&self, address: &AddressSpec) -> GsnResult<Box<dyn Wrapper>> {
        let interval_ms: i64 = predicate_parse(address, "interval", 1_000)?;
        let payload_size: usize = predicate_parse(address, "payload-size", 0)?;
        let schema = Arc::new(
            StreamSchema::from_pairs(&[
                ("counter", DataType::Integer),
                ("payload", DataType::Binary),
            ])
            .unwrap(),
        );
        let generator = Box::new(move |counter: u64, _ts: Timestamp| {
            vec![
                Value::Integer(counter as i64),
                Value::binary(vec![0xA5u8; payload_size]),
            ]
        });
        Ok(Box::new(ScriptedWrapper::new(
            schema,
            Duration::from_millis(interval_ms.max(1)),
            generator,
        )))
    }

    fn description(&self) -> String {
        "scripted generator wrapper (counter + fixed-size payload)".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_time_wrapper_ticks() {
        let mut w = SystemTimeWrapper::new(Duration::from_millis(200));
        let ticks = w.poll(Timestamp(1_000)).unwrap();
        assert_eq!(ticks.len(), 5);
        assert_eq!(
            ticks[0].value("CLOCK"),
            Some(Value::Timestamp(Timestamp(200)))
        );
        assert_eq!(w.kind(), "system-time");
        let w2 = SystemTimeWrapperFactory
            .create(&AddressSpec::new("system-time").with_predicate("interval", "50"))
            .unwrap();
        assert_eq!(w2.nominal_interval(), Duration::from_millis(50));
    }

    #[test]
    fn push_wrapper_delivers_pushed_elements() {
        let schema = Arc::new(StreamSchema::from_pairs(&[("v", DataType::Integer)]).unwrap());
        let (mut wrapper, handle) = PushWrapper::new(schema.clone(), Duration::from_millis(10));
        assert!(wrapper.poll(Timestamp(0)).unwrap().is_empty());
        handle
            .push_values(vec![Value::Integer(1)], Timestamp(5))
            .unwrap();
        handle
            .push_values(vec![Value::Integer(2)], Timestamp(6))
            .unwrap();
        let got = wrapper.poll(Timestamp(10)).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[1].value("V"), Some(Value::Integer(2)));
        // Schema violations are caught at push time.
        assert!(handle
            .push_values(vec![Value::varchar("x")], Timestamp(7))
            .is_err());
        assert_eq!(handle.schema().len(), 1);
    }

    #[test]
    fn push_factory_binds_named_channels() {
        let factory = PushWrapperFactory::new();
        let schema = Arc::new(StreamSchema::from_pairs(&[("v", DataType::Integer)]).unwrap());
        let handle = factory.handle("feed-1", schema);
        let mut wrapper = factory
            .create(&AddressSpec::new("push").with_predicate("channel", "feed-1"))
            .unwrap();
        handle
            .push_values(vec![Value::Integer(9)], Timestamp(1))
            .unwrap();
        assert_eq!(wrapper.poll(Timestamp(10)).unwrap().len(), 1);
        // A channel created from the descriptor side works too.
        let mut other = factory
            .create(
                &AddressSpec::new("push")
                    .with_predicate("channel", "feed-2")
                    .with_predicate("field-1", "temp")
                    .with_predicate("type-1", "integer"),
            )
            .unwrap();
        assert_eq!(other.output_schema().names(), vec!["TEMP"]);
        assert!(other.poll(Timestamp(0)).unwrap().is_empty());
        // Missing channel predicate is an error.
        assert!(factory.create(&AddressSpec::new("push")).is_err());
    }

    #[test]
    fn replay_wrapper_replays_and_loops() {
        let schema = Arc::new(StreamSchema::from_pairs(&[("v", DataType::Integer)]).unwrap());
        let csv = "# a comment\n0,10\n100,20\n200,30\n";
        let mut w = ReplayWrapper::parse_csv(schema.clone(), csv, false).unwrap();
        let first = w.poll(Timestamp(150)).unwrap();
        assert_eq!(first.len(), 2);
        assert_eq!(first[1].value("V"), Some(Value::Integer(20)));
        assert_eq!(w.poll(Timestamp(1_000)).unwrap().len(), 1);
        assert!(w.poll(Timestamp(10_000)).unwrap().is_empty());

        let mut looping = ReplayWrapper::parse_csv(schema, csv, true).unwrap();
        let burst = looping.poll(Timestamp(1_000)).unwrap();
        assert!(
            burst.len() > 3,
            "looped replay should repeat: {}",
            burst.len()
        );
    }

    #[test]
    fn replay_csv_validation() {
        let schema = Arc::new(StreamSchema::from_pairs(&[("v", DataType::Integer)]).unwrap());
        assert!(ReplayWrapper::parse_csv(schema.clone(), "abc,1", false).is_err());
        assert!(ReplayWrapper::parse_csv(schema.clone(), "0,notanint", false).is_err());
        assert!(ReplayWrapper::parse_csv(schema, "0", false).is_err());
    }

    #[test]
    fn replay_factory_named_and_inline_traces() {
        let factory = ReplayWrapperFactory::new();
        let schema = Arc::new(StreamSchema::from_pairs(&[("v", DataType::Double)]).unwrap());
        factory.register_trace(
            "calibration",
            schema,
            vec![TraceRow {
                offset: Duration::ZERO,
                values: vec![Value::Double(1.5)],
            }],
        );
        let mut named = factory
            .create(
                &AddressSpec::new("replay")
                    .with_predicate("trace-name", "calibration")
                    .with_predicate("loop", "false"),
            )
            .unwrap();
        assert_eq!(named.poll(Timestamp(10)).unwrap().len(), 1);

        let mut inline = factory
            .create(
                &AddressSpec::new("replay")
                    .with_predicate("trace", "0,1;50,2;100,3")
                    .with_predicate("field-1", "reading")
                    .with_predicate("type-1", "integer"),
            )
            .unwrap();
        assert_eq!(inline.poll(Timestamp(100)).unwrap().len(), 3);

        assert!(factory
            .create(&AddressSpec::new("replay").with_predicate("trace-name", "nosuch"))
            .is_err());
        assert!(factory.create(&AddressSpec::new("replay")).is_err());
    }

    #[test]
    fn scripted_wrapper_runs_the_closure() {
        let schema = Arc::new(
            StreamSchema::from_pairs(&[("n", DataType::Integer), ("sq", DataType::Integer)])
                .unwrap(),
        );
        let mut w = ScriptedWrapper::new(
            schema,
            Duration::from_millis(10),
            Box::new(|n, _| vec![Value::Integer(n as i64), Value::Integer((n * n) as i64)]),
        );
        let out = w.poll(Timestamp(50)).unwrap();
        assert_eq!(out.len(), 5);
        assert_eq!(out[4].value("SQ"), Some(Value::Integer(25)));
    }

    #[test]
    fn scripted_factory_produces_fixed_payloads() {
        let mut w = ScriptedWrapperFactory
            .create(
                &AddressSpec::new("scripted")
                    .with_predicate("interval", "100")
                    .with_predicate("payload-size", "16384"),
            )
            .unwrap();
        let out = w.poll(Timestamp(300)).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].value("PAYLOAD").unwrap().size_bytes(), 16 * 1024);
        assert_eq!(out[2].value("COUNTER"), Some(Value::Integer(3)));
    }
}
