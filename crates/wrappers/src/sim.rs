//! Device simulation primitives shared by the simulated wrappers.
//!
//! The paper's evaluation ran against 22 physical motes and 15 cameras; the reproduction
//! substitutes configurable device models (see DESIGN.md).  The models here keep the two
//! properties the experiments depend on — payload size and inter-arrival interval — exact,
//! and add controllable realism (sensor noise, dropped readings, bursts) for the examples
//! and stream-quality tests.

use gsn_types::{Duration, Timestamp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic pseudo-random source seeded per device so that two runs of a benchmark
/// produce identical streams.
#[derive(Debug, Clone)]
pub struct DeviceRng {
    rng: StdRng,
}

impl DeviceRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> DeviceRng {
        DeviceRng {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// A uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// A uniform float in `[low, high)`.
    pub fn range_f64(&mut self, low: f64, high: f64) -> f64 {
        if high <= low {
            return low;
        }
        self.rng.gen_range(low..high)
    }

    /// A uniform integer in `[low, high]`.
    pub fn range_i64(&mut self, low: i64, high: i64) -> i64 {
        if high <= low {
            return low;
        }
        self.rng.gen_range(low..=high)
    }

    /// True with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.rng.gen_bool(p.clamp(0.0, 1.0))
    }

    /// Fills a byte payload of the given size (compressible but non-constant content).
    pub fn payload(&mut self, size: usize) -> Vec<u8> {
        let mut bytes = vec![0u8; size];
        // Fill sparsely: real camera frames are not random noise, and filling every byte
        // from the RNG would dominate benchmark time for 75 KB payloads.
        let step = (size / 64).max(1);
        let mut i = 0;
        while i < size {
            bytes[i] = self.rng.gen();
            i += step;
        }
        bytes
    }
}

/// A bounded random walk, used for temperature / light / acceleration readings.
#[derive(Debug, Clone)]
pub struct RandomWalk {
    value: f64,
    min: f64,
    max: f64,
    max_step: f64,
}

impl RandomWalk {
    /// Creates a walk starting at `start`, bounded to `[min, max]`, moving by at most
    /// `max_step` per sample.
    pub fn new(start: f64, min: f64, max: f64, max_step: f64) -> RandomWalk {
        RandomWalk {
            value: start.clamp(min, max),
            min,
            max,
            max_step: max_step.abs(),
        }
    }

    /// Advances the walk and returns the new value.
    pub fn step(&mut self, rng: &mut DeviceRng) -> f64 {
        let delta = rng.range_f64(-self.max_step, self.max_step);
        self.value = (self.value + delta).clamp(self.min, self.max);
        self.value
    }

    /// The current value without advancing.
    pub fn current(&self) -> f64 {
        self.value
    }
}

/// Periodic production schedule: computes how many samples are due between polls.
///
/// Wrappers remember the last emission time; `due_times` returns every multiple of the
/// interval in `(last, now]`, so polling more or less often than the interval still
/// produces exactly one element per period — the property the Figure 3 experiment relies
/// on when sweeping the output interval from 10 ms to 1000 ms.
#[derive(Debug, Clone)]
pub struct Schedule {
    interval: Duration,
    next_due: Timestamp,
}

impl Schedule {
    /// Creates a schedule with the first element due one interval after `start`.
    pub fn new(start: Timestamp, interval: Duration) -> Schedule {
        let interval = if interval.as_millis() <= 0 {
            Duration::from_millis(1)
        } else {
            interval
        };
        Schedule {
            interval,
            next_due: start + interval,
        }
    }

    /// The production interval.
    pub fn interval(&self) -> Duration {
        self.interval
    }

    /// Returns every due timestamp up to and including `now`, advancing the schedule.
    pub fn due_times(&mut self, now: Timestamp) -> Vec<Timestamp> {
        let mut due = Vec::new();
        while self.next_due <= now {
            due.push(self.next_due);
            self.next_due += self.interval;
        }
        due
    }

    /// The next time an element will be due.
    pub fn next_due(&self) -> Timestamp {
        self.next_due
    }
}

/// Injects missing readings and disconnection periods (stream-quality testing).
#[derive(Debug, Clone)]
pub struct FailureModel {
    /// Probability that an individual reading is dropped (sensor glitch).
    pub drop_probability: f64,
    /// Probability per reading that a disconnection starts.
    pub disconnect_probability: f64,
    /// How long a disconnection lasts.
    pub disconnect_duration: Duration,
    disconnected_until: Option<Timestamp>,
}

impl FailureModel {
    /// A model that never fails.
    pub fn none() -> FailureModel {
        FailureModel {
            drop_probability: 0.0,
            disconnect_probability: 0.0,
            disconnect_duration: Duration::ZERO,
            disconnected_until: None,
        }
    }

    /// Creates a failure model.
    pub fn new(
        drop_probability: f64,
        disconnect_probability: f64,
        disconnect_duration: Duration,
    ) -> FailureModel {
        FailureModel {
            drop_probability,
            disconnect_probability,
            disconnect_duration,
            disconnected_until: None,
        }
    }

    /// Decides whether the reading due at `at` is actually produced.
    pub fn produces(&mut self, at: Timestamp, rng: &mut DeviceRng) -> bool {
        if let Some(until) = self.disconnected_until {
            if at < until {
                return false;
            }
            self.disconnected_until = None;
        }
        if self.disconnect_probability > 0.0 && rng.chance(self.disconnect_probability) {
            self.disconnected_until = Some(at.saturating_add(self.disconnect_duration));
            return false;
        }
        !(self.drop_probability > 0.0 && rng.chance(self.drop_probability))
    }

    /// True while the simulated device is in a disconnection period at `at`.
    pub fn is_disconnected(&self, at: Timestamp) -> bool {
        self.disconnected_until
            .map(|until| at < until)
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_rng_is_deterministic() {
        let mut a = DeviceRng::new(42);
        let mut b = DeviceRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.range_i64(0, 1000), b.range_i64(0, 1000));
        }
        let mut c = DeviceRng::new(43);
        let va: Vec<i64> = (0..10).map(|_| a.range_i64(0, 1000)).collect();
        let vc: Vec<i64> = (0..10).map(|_| c.range_i64(0, 1000)).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn rng_ranges_are_respected() {
        let mut rng = DeviceRng::new(1);
        for _ in 0..1000 {
            let f = rng.range_f64(2.0, 3.0);
            assert!((2.0..3.0).contains(&f));
            let i = rng.range_i64(-5, 5);
            assert!((-5..=5).contains(&i));
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u));
        }
        assert_eq!(rng.range_f64(5.0, 5.0), 5.0);
        assert_eq!(rng.range_i64(7, 7), 7);
        assert!(rng.chance(1.0));
        assert!(!rng.chance(0.0));
    }

    #[test]
    fn payload_has_requested_size() {
        let mut rng = DeviceRng::new(9);
        assert_eq!(rng.payload(15).len(), 15);
        assert_eq!(rng.payload(75 * 1024).len(), 75 * 1024);
        assert_eq!(rng.payload(0).len(), 0);
    }

    #[test]
    fn random_walk_stays_in_bounds() {
        let mut rng = DeviceRng::new(3);
        let mut walk = RandomWalk::new(20.0, 15.0, 30.0, 0.5);
        for _ in 0..10_000 {
            let v = walk.step(&mut rng);
            assert!((15.0..=30.0).contains(&v));
        }
        assert_eq!(walk.current(), walk.current());
        let clamped = RandomWalk::new(100.0, 0.0, 10.0, 1.0);
        assert_eq!(clamped.current(), 10.0);
    }

    #[test]
    fn schedule_emits_once_per_interval() {
        let mut s = Schedule::new(Timestamp(0), Duration::from_millis(100));
        assert_eq!(s.interval(), Duration::from_millis(100));
        assert!(s.due_times(Timestamp(50)).is_empty());
        assert_eq!(s.due_times(Timestamp(100)), vec![Timestamp(100)]);
        assert!(s.due_times(Timestamp(150)).is_empty());
        // Catch-up after a long gap emits every missed element.
        assert_eq!(
            s.due_times(Timestamp(500)),
            vec![
                Timestamp(200),
                Timestamp(300),
                Timestamp(400),
                Timestamp(500)
            ]
        );
        assert_eq!(s.next_due(), Timestamp(600));
    }

    #[test]
    fn schedule_rejects_non_positive_intervals() {
        let mut s = Schedule::new(Timestamp(0), Duration::ZERO);
        assert_eq!(s.interval(), Duration::from_millis(1));
        assert_eq!(s.due_times(Timestamp(3)).len(), 3);
    }

    #[test]
    fn failure_model_none_always_produces() {
        let mut rng = DeviceRng::new(5);
        let mut f = FailureModel::none();
        for i in 0..100 {
            assert!(f.produces(Timestamp(i), &mut rng));
        }
    }

    #[test]
    fn failure_model_drops_and_disconnects() {
        let mut rng = DeviceRng::new(5);
        let mut f = FailureModel::new(0.5, 0.0, Duration::ZERO);
        let produced = (0..1000)
            .filter(|i| f.produces(Timestamp(*i), &mut rng))
            .count();
        assert!(produced > 300 && produced < 700, "produced {produced}");

        let mut f = FailureModel::new(0.0, 1.0, Duration::from_millis(100));
        let mut rng = DeviceRng::new(6);
        assert!(!f.produces(Timestamp(0), &mut rng));
        assert!(f.is_disconnected(Timestamp(50)));
        assert!(!f.produces(Timestamp(50), &mut rng));
        // After the disconnection window a new disconnect immediately starts (p=1), so it
        // still produces nothing, but the window has advanced.
        assert!(!f.produces(Timestamp(150), &mut rng));
        assert!(f.is_disconnected(Timestamp(200)));
    }
}
