//! Container-level telemetry: the step-loop instruments, the query-repository
//! counters, and the sourced metrics the container refreshes at snapshot time.
//!
//! Three kinds of metric live here:
//!
//! * **Live instruments** ([`ContainerTelemetry`], [`QueryTelemetry`]) — recorded at
//!   the instrumentation point, on the hot path, through lock-free handles.  The
//!   per-phase step histograms and the query repository's incremental/fallback
//!   counters are the authoritative cells; nothing else counts these events.
//! * **Sourced metrics** ([`SourcedMetrics`]) — cumulative counters and levels whose
//!   authoritative home is an existing stats struct ([`gsn_storage::StorageStats`],
//!   [`gsn_sql::EngineStats`], [`crate::NotificationStats`], the simnet's
//!   [`gsn_network::NetworkStats`]).  The container *stores* the current totals into
//!   the registry when a snapshot is taken, so each number has exactly one
//!   authoritative cell and the registry is a view, not a second ledger.
//! * **Per-link labeled counters** — refreshed from the simnet's per-link stats with
//!   a `link="from->to"` label, one time series per directed link.
//!
//! Every metric name exported by the container is documented in `OBSERVABILITY.md`
//! at the repository root.

use gsn_telemetry::{Counter, Gauge, Histogram, MetricDesc, MetricsRegistry};

// -------------------------------------------------------------------------------------
// Step-loop phases
// -------------------------------------------------------------------------------------

/// Wall-clock duration of one full [`crate::GsnContainer::step`].
pub static STEP_MICROS: MetricDesc = MetricDesc::histogram(
    "gsn_step_micros",
    "Wall-clock duration of one container step",
    "microseconds",
);

/// Network-intake phase: draining the simnet inbox and answering peers.
pub static STEP_NETWORK_DRAIN_MICROS: MetricDesc = MetricDesc::histogram(
    "gsn_step_network_drain_micros",
    "Step phase: draining the network inbox (remote deliveries, peer requests)",
    "microseconds",
);

/// Pipeline phase: wrapper polling plus per-sensor pipeline execution (sharded across
/// the worker pool when `workers > 1`), including the in-shard query evaluations and
/// notification deliveries they trigger.
pub static STEP_PIPELINE_MICROS: MetricDesc = MetricDesc::histogram(
    "gsn_step_pipeline_micros",
    "Step phase: wrapper polling + sensor pipeline execution (incl. barrier wait)",
    "microseconds",
);

/// Post-barrier phase: sequential delivery of cross-shard loop-back outputs.
pub static STEP_POST_BARRIER_MICROS: MetricDesc = MetricDesc::histogram(
    "gsn_step_post_barrier_micros",
    "Step phase: sequential post-barrier delivery of cross-shard loop-back outputs",
    "microseconds",
);

/// Commit phase: retention pruning plus the per-step batched WAL fsync.
pub static STEP_COMMIT_MICROS: MetricDesc = MetricDesc::histogram(
    "gsn_step_commit_micros",
    "Step phase: retention pruning + WAL group commit",
    "microseconds",
);

// -------------------------------------------------------------------------------------
// Step-loop counters (absorbed from each StepReport)
// -------------------------------------------------------------------------------------

/// Steps executed.
pub static STEPS_TOTAL: MetricDesc =
    MetricDesc::counter("gsn_steps_total", "Container steps executed", "steps");

/// Stream elements that arrived from local wrappers.
pub static LOCAL_ARRIVALS_TOTAL: MetricDesc = MetricDesc::counter(
    "gsn_step_local_arrivals_total",
    "Stream elements that arrived from local wrappers",
    "elements",
);

/// Stream elements that arrived from remote deliveries (including loop-back routes).
pub static REMOTE_ARRIVALS_TOTAL: MetricDesc = MetricDesc::counter(
    "gsn_step_remote_arrivals_total",
    "Stream elements that arrived from remote deliveries",
    "elements",
);

/// Output stream elements produced by virtual sensors.
pub static OUTPUTS_TOTAL: MetricDesc = MetricDesc::counter(
    "gsn_step_outputs_total",
    "Output stream elements produced by virtual sensors",
    "elements",
);

/// Registered client-query evaluations performed by the step loop.
pub static QUERY_EVALUATIONS_TOTAL: MetricDesc = MetricDesc::counter(
    "gsn_step_query_evaluations_total",
    "Registered client-query evaluations performed by the step loop",
    "evaluations",
);

/// Pipeline errors.
pub static PIPELINE_ERRORS_TOTAL: MetricDesc = MetricDesc::counter(
    "gsn_step_errors_total",
    "Pipeline errors observed by the step loop",
    "errors",
);

/// Sources newly detected silent.
pub static SILENCE_EVENTS_TOTAL: MetricDesc = MetricDesc::counter(
    "gsn_step_silence_events_total",
    "Sources newly detected silent by the stream-quality monitor",
    "episodes",
);

// -------------------------------------------------------------------------------------
// Federation
// -------------------------------------------------------------------------------------

/// Round-trip time of one remote-cursor batch: from sending the `QueryRequest` /
/// `QueryNext` to the matching `QueryBatch` arriving (simulated-clock milliseconds).
pub static FEDERATION_BATCH_RTT_MILLIS: MetricDesc = MetricDesc::histogram(
    "gsn_federation_batch_rtt_millis",
    "Round-trip time of one remote-cursor batch (request sent to batch received)",
    "milliseconds",
);

/// Lossy-link recovery retransmissions (re-sent `QueryRequest`/`QueryNext`/
/// `MetricsRequest` messages).
pub static FEDERATION_RETRANSMITS_TOTAL: MetricDesc = MetricDesc::counter(
    "gsn_federation_retransmits_total",
    "Requests re-sent by the lossy-link recovery timers",
    "messages",
);

/// Metrics scrapes served to peers (`MetricsRequest` messages answered).
pub static FEDERATION_SCRAPES_SERVED_TOTAL: MetricDesc = MetricDesc::counter(
    "gsn_federation_scrapes_served_total",
    "Peer metrics scrapes answered with a MetricsSnapshot message",
    "scrapes",
);

/// Peer metrics snapshots received (`MetricsSnapshot` messages accepted).
pub static FEDERATION_PEER_SNAPSHOTS_TOTAL: MetricDesc = MetricDesc::counter(
    "gsn_federation_peer_snapshots_total",
    "Peer metrics snapshots received and stored",
    "snapshots",
);

/// Anti-entropy gossip rounds initiated by this node.
pub static FEDERATION_GOSSIP_ROUNDS_TOTAL: MetricDesc = MetricDesc::counter(
    "gsn_federation_gossip_rounds_total",
    "Anti-entropy gossip rounds initiated (one digest sent per round)",
    "rounds",
);

/// Encoded bytes of gossip digests and deltas sent by this node.
pub static FEDERATION_GOSSIP_BYTES_TOTAL: MetricDesc = MetricDesc::counter(
    "gsn_federation_gossip_bytes_total",
    "Encoded bytes of gossip digest and delta messages sent",
    "bytes",
);

/// Federated scatter-gather queries coordinated by this node.
pub static FEDERATION_SCATTER_QUERIES_TOTAL: MetricDesc = MetricDesc::counter(
    "gsn_federation_scatter_queries_total",
    "Federated scatter-gather queries issued with this node as coordinator",
    "queries",
);

/// Federated queries that could not be decomposed into partial aggregates.
pub static FEDERATION_SCATTER_FALLBACK_TOTAL: MetricDesc = MetricDesc::counter(
    "gsn_federation_scatter_fallback_total",
    "Federated queries that fell back to full row shipping",
    "queries",
);

/// Latency of one federated query: scatter fan-out to merged result.
pub static FEDERATION_SCATTER_LATENCY_MILLIS: MetricDesc = MetricDesc::histogram(
    "gsn_federation_scatter_latency_millis",
    "Latency of one federated query from scatter fan-out to merged result",
    "milliseconds",
);

/// Remote-cursor batches consumed without an explicit per-batch request.
pub static FEDERATION_PREFETCH_HITS_TOTAL: MetricDesc = MetricDesc::counter(
    "gsn_federation_prefetch_hits_total",
    "Remote-cursor batches consumed without a per-batch QueryNext (prefetch pipelining)",
    "batches",
);

/// Remote spans received by trace-collect assembly (answers to
/// `TraceCollectRequest` messages issued when a federated query completes).
pub static TRACE_REMOTE_SPANS_TOTAL: MetricDesc = MetricDesc::counter(
    "gsn_trace_remote_spans_total",
    "Remote spans received while assembling distributed trace trees",
    "spans",
);

/// Per-subsystem health state evaluated on gossip rounds
/// (labeled `subsystem="..."`; 0 = healthy, 1 = degraded, 2 = unhealthy).
pub static HEALTH_STATE: MetricDesc = MetricDesc::gauge(
    "gsn_health_state",
    "Health state of one subsystem (0 healthy, 1 degraded, 2 unhealthy)",
    "state",
)
.with_label("subsystem");

/// The live instrument handles of the container itself.
///
/// Created detached at container construction and adopted into the container's
/// [`MetricsRegistry`]; handles are cheap clones of shared cells, so per-shard
/// recordings merge for free.
#[derive(Debug, Clone, Default)]
pub struct ContainerTelemetry {
    /// Full-step duration.
    pub step_micros: Histogram,
    /// Network-drain phase duration.
    pub network_drain_micros: Histogram,
    /// Pipeline phase duration (poll + pipelines + barrier).
    pub pipeline_micros: Histogram,
    /// Post-barrier delivery phase duration.
    pub post_barrier_micros: Histogram,
    /// Prune + group-commit phase duration.
    pub commit_micros: Histogram,
    /// Steps executed.
    pub steps_total: Counter,
    /// Local wrapper arrivals.
    pub local_arrivals_total: Counter,
    /// Remote arrivals.
    pub remote_arrivals_total: Counter,
    /// Sensor outputs.
    pub outputs_total: Counter,
    /// Registered-query evaluations.
    pub query_evaluations_total: Counter,
    /// Pipeline errors.
    pub errors_total: Counter,
    /// Silence episodes.
    pub silence_events_total: Counter,
    /// Remote-cursor batch RTT.
    pub batch_rtt_millis: Histogram,
    /// Lossy-link retransmissions.
    pub retransmits_total: Counter,
    /// Peer scrapes served.
    pub scrapes_served_total: Counter,
    /// Peer snapshots received.
    pub peer_snapshots_total: Counter,
    /// Gossip rounds initiated.
    pub gossip_rounds_total: Counter,
    /// Gossip digest/delta bytes sent.
    pub gossip_bytes_total: Counter,
    /// Federated queries coordinated.
    pub scatter_queries_total: Counter,
    /// Federated queries that fell back to row shipping.
    pub scatter_fallback_total: Counter,
    /// Federated query latency (scatter to merge).
    pub scatter_latency_millis: Histogram,
    /// Batches consumed without a per-batch request (prefetch pipelining).
    pub prefetch_hits_total: Counter,
    /// Remote spans received by trace-collect assembly.
    pub remote_spans_total: Counter,
}

impl ContainerTelemetry {
    /// Fresh, detached handles.
    pub fn new() -> ContainerTelemetry {
        ContainerTelemetry::default()
    }

    /// Adopts every handle into `registry` so snapshots include them.
    pub fn register_into(&self, registry: &MetricsRegistry) {
        registry.register_histogram(&STEP_MICROS, &self.step_micros);
        registry.register_histogram(&STEP_NETWORK_DRAIN_MICROS, &self.network_drain_micros);
        registry.register_histogram(&STEP_PIPELINE_MICROS, &self.pipeline_micros);
        registry.register_histogram(&STEP_POST_BARRIER_MICROS, &self.post_barrier_micros);
        registry.register_histogram(&STEP_COMMIT_MICROS, &self.commit_micros);
        registry.register_counter(&STEPS_TOTAL, &self.steps_total);
        registry.register_counter(&LOCAL_ARRIVALS_TOTAL, &self.local_arrivals_total);
        registry.register_counter(&REMOTE_ARRIVALS_TOTAL, &self.remote_arrivals_total);
        registry.register_counter(&OUTPUTS_TOTAL, &self.outputs_total);
        registry.register_counter(&QUERY_EVALUATIONS_TOTAL, &self.query_evaluations_total);
        registry.register_counter(&PIPELINE_ERRORS_TOTAL, &self.errors_total);
        registry.register_counter(&SILENCE_EVENTS_TOTAL, &self.silence_events_total);
        registry.register_histogram(&FEDERATION_BATCH_RTT_MILLIS, &self.batch_rtt_millis);
        registry.register_counter(&FEDERATION_RETRANSMITS_TOTAL, &self.retransmits_total);
        registry.register_counter(&FEDERATION_SCRAPES_SERVED_TOTAL, &self.scrapes_served_total);
        registry.register_counter(&FEDERATION_PEER_SNAPSHOTS_TOTAL, &self.peer_snapshots_total);
        registry.register_counter(&FEDERATION_GOSSIP_ROUNDS_TOTAL, &self.gossip_rounds_total);
        registry.register_counter(&FEDERATION_GOSSIP_BYTES_TOTAL, &self.gossip_bytes_total);
        registry.register_counter(
            &FEDERATION_SCATTER_QUERIES_TOTAL,
            &self.scatter_queries_total,
        );
        registry.register_counter(
            &FEDERATION_SCATTER_FALLBACK_TOTAL,
            &self.scatter_fallback_total,
        );
        registry.register_histogram(
            &FEDERATION_SCATTER_LATENCY_MILLIS,
            &self.scatter_latency_millis,
        );
        registry.register_counter(&FEDERATION_PREFETCH_HITS_TOTAL, &self.prefetch_hits_total);
        registry.register_counter(&TRACE_REMOTE_SPANS_TOTAL, &self.remote_spans_total);
    }

    /// Folds one step report's counters into the cumulative totals.
    pub fn absorb_report(&self, report: &crate::StepReport) {
        self.local_arrivals_total.add(report.local_arrivals);
        self.remote_arrivals_total.add(report.remote_arrivals);
        self.outputs_total.add(report.outputs);
        self.query_evaluations_total
            .add(report.client_query_evaluations);
        self.errors_total.add(report.errors);
        self.silence_events_total.add(report.silence_events);
    }
}

// -------------------------------------------------------------------------------------
// Query repository
// -------------------------------------------------------------------------------------

/// Registered-query evaluations served by the incremental (delta-window) executor.
pub static QUERY_INCREMENTAL_TOTAL: MetricDesc = MetricDesc::counter(
    "gsn_query_incremental_total",
    "Registered-query evaluations served by the incremental (delta-window) executor",
    "evaluations",
);

/// Registered-query evaluations that fell back to full re-evaluation.
pub static QUERY_FALLBACK_TOTAL: MetricDesc = MetricDesc::counter(
    "gsn_query_fallback_total",
    "Registered-query evaluations that fell back to full re-evaluation",
    "evaluations",
);

/// Latency of one registered-query evaluation (incremental or full).
pub static QUERY_DELTA_EVAL_MICROS: MetricDesc = MetricDesc::histogram(
    "gsn_query_delta_eval_micros",
    "Latency of one registered-query evaluation (incremental delta fold or full re-run)",
    "microseconds",
);

/// The query repository's live instruments, shared by every partition (the cells are
/// container-wide: the per-shard recordings of a sharded step loop merge for free).
///
/// These counters are the *only* ledger of incremental-vs-fallback evaluation counts —
/// `QueryManagerStats` deliberately does not duplicate them.
#[derive(Debug, Clone, Default)]
pub struct QueryTelemetry {
    /// Incremental-path evaluations.
    pub incremental_evaluated: Counter,
    /// Full-path (fallback) evaluations.
    pub fallback_evaluated: Counter,
    /// Per-evaluation latency.
    pub eval_micros: Histogram,
}

impl QueryTelemetry {
    /// Fresh, detached handles.
    pub fn new() -> QueryTelemetry {
        QueryTelemetry::default()
    }

    /// Adopts every handle into `registry` so snapshots include them.
    pub fn register_into(&self, registry: &MetricsRegistry) {
        registry.register_counter(&QUERY_INCREMENTAL_TOTAL, &self.incremental_evaluated);
        registry.register_counter(&QUERY_FALLBACK_TOTAL, &self.fallback_evaluated);
        registry.register_histogram(&QUERY_DELTA_EVAL_MICROS, &self.eval_micros);
    }
}

// -------------------------------------------------------------------------------------
// Sourced metrics (refreshed from the subsystem stats structs at snapshot time)
// -------------------------------------------------------------------------------------

/// Tables currently managed by the storage layer.
pub static STORAGE_TABLES: MetricDesc =
    MetricDesc::gauge("gsn_storage_tables", "Tables currently managed", "tables");

/// Elements currently retained across all tables.
pub static STORAGE_RETAINED_ROWS: MetricDesc = MetricDesc::gauge(
    "gsn_storage_retained_rows",
    "Elements currently retained across all tables",
    "elements",
);

/// Bytes currently retained across all tables.
pub static STORAGE_RETAINED_BYTES: MetricDesc = MetricDesc::gauge(
    "gsn_storage_retained_bytes",
    "Payload bytes currently retained across all tables",
    "bytes",
);

/// Lifetime elements inserted.
pub static STORAGE_ROWS_INSERTED_TOTAL: MetricDesc = MetricDesc::counter(
    "gsn_storage_rows_inserted_total",
    "Elements inserted across all tables (lifetime)",
    "elements",
);

/// Lifetime elements pruned by retention.
pub static STORAGE_ROWS_PRUNED_TOTAL: MetricDesc = MetricDesc::counter(
    "gsn_storage_rows_pruned_total",
    "Elements removed by retention pruning (lifetime)",
    "elements",
);

/// Lifetime out-of-order arrivals.
pub static STORAGE_OUT_OF_ORDER_TOTAL: MetricDesc = MetricDesc::counter(
    "gsn_storage_out_of_order_total",
    "Elements that arrived with a timestamp older than their predecessor",
    "elements",
);

/// Lifetime payload bytes inserted.
pub static STORAGE_BYTES_INSERTED_TOTAL: MetricDesc = MetricDesc::counter(
    "gsn_storage_bytes_inserted_total",
    "Payload bytes inserted across all tables (lifetime)",
    "bytes",
);

/// Buffer-pool page requests served from a resident frame.
pub static STORAGE_POOL_HITS_TOTAL: MetricDesc = MetricDesc::counter(
    "gsn_storage_pool_hits_total",
    "Buffer-pool page requests served from a resident frame",
    "pages",
);

/// Buffer-pool page requests that read from disk.
pub static STORAGE_POOL_MISSES_TOTAL: MetricDesc = MetricDesc::counter(
    "gsn_storage_pool_misses_total",
    "Buffer-pool page requests that had to read from disk",
    "pages",
);

/// Buffer-pool frames reclaimed by the clock hand.
pub static STORAGE_POOL_EVICTIONS_TOTAL: MetricDesc = MetricDesc::counter(
    "gsn_storage_pool_evictions_total",
    "Buffer-pool frames reclaimed by the clock hand",
    "pages",
);

/// Dirty pages written back during eviction or flush.
pub static STORAGE_POOL_WRITEBACKS_TOTAL: MetricDesc = MetricDesc::counter(
    "gsn_storage_pool_writebacks_total",
    "Dirty pages written back during eviction or flush",
    "pages",
);

/// Pages resident in the shared buffer pool.
pub static STORAGE_POOL_RESIDENT_PAGES: MetricDesc = MetricDesc::gauge(
    "gsn_storage_pool_resident_pages",
    "Pages resident in the shared buffer pool",
    "pages",
);

/// Region-lock acquisitions that found the lock held (cross-thread contention on one
/// clock region of the sharded pool; ~0 when scans stripe cleanly across regions).
pub static STORAGE_POOL_CONTENDED_TOTAL: MetricDesc = MetricDesc::counter(
    "gsn_storage_pool_contended_total",
    "Buffer-pool region-lock acquisitions that found the lock held",
    "acquisitions",
);

/// Per-region page hits (labeled `region="N"`).
pub static STORAGE_POOL_REGION_HITS_TOTAL: MetricDesc = MetricDesc::counter(
    "gsn_storage_pool_region_hits_total",
    "Page requests served from a resident frame of one clock region",
    "pages",
)
.with_label("region");

/// Per-region page misses (labeled `region="N"`).
pub static STORAGE_POOL_REGION_MISSES_TOTAL: MetricDesc = MetricDesc::counter(
    "gsn_storage_pool_region_misses_total",
    "Page requests of one clock region that had to read from disk",
    "pages",
)
.with_label("region");

/// Per-region frame evictions (labeled `region="N"`).
pub static STORAGE_POOL_REGION_EVICTIONS_TOTAL: MetricDesc = MetricDesc::counter(
    "gsn_storage_pool_region_evictions_total",
    "Frames reclaimed by the clock hand of one region",
    "pages",
)
.with_label("region");

/// Per-region lock contention (labeled `region="N"`).
pub static STORAGE_POOL_REGION_CONTENDED_TOTAL: MetricDesc = MetricDesc::counter(
    "gsn_storage_pool_region_contended_total",
    "Lock acquisitions of one region that found the lock held",
    "acquisitions",
)
.with_label("region");

/// Spill migration passes across all spilled-window tables.
pub static STORAGE_SPILL_MIGRATIONS_TOTAL: MetricDesc = MetricDesc::counter(
    "gsn_storage_spill_migrations_total",
    "Cold-prefix spill migration passes across all spilled-window tables",
    "passes",
);

/// Elements currently moved to disk by spill migrations.
pub static STORAGE_SPILLED_ROWS: MetricDesc = MetricDesc::gauge(
    "gsn_storage_spilled_rows",
    "Elements moved to the disk-resident cold prefix of spilled windows",
    "elements",
);

/// Plans compiled by the SQL engines.
pub static SQL_PLANS_COMPILED_TOTAL: MetricDesc = MetricDesc::counter(
    "gsn_sql_plans_compiled_total",
    "Queries compiled (parse + plan + optimize) across all engines",
    "plans",
);

/// Compilations avoided by the prepared-plan cache.
pub static SQL_PLAN_CACHE_HITS_TOTAL: MetricDesc = MetricDesc::counter(
    "gsn_sql_plan_cache_hits_total",
    "Compilations avoided by the prepared-plan cache",
    "plans",
);

/// Plan executions.
pub static SQL_EXECUTIONS_TOTAL: MetricDesc = MetricDesc::counter(
    "gsn_sql_executions_total",
    "Plan executions across all engines",
    "executions",
);

/// Rows pulled out of base-table scans.
pub static SQL_ROWS_SCANNED_TOTAL: MetricDesc = MetricDesc::counter(
    "gsn_sql_rows_scanned_total",
    "Rows pulled out of base-table scans across all executions",
    "rows",
);

/// Rows returned to consumers.
pub static SQL_ROWS_RETURNED_TOTAL: MetricDesc = MetricDesc::counter(
    "gsn_sql_rows_returned_total",
    "Rows returned to consumers across all executions",
    "rows",
);

/// Compiled plans with at least one pushed-down scan spec.
pub static SQL_PUSHDOWN_APPLIED_TOTAL: MetricDesc = MetricDesc::counter(
    "gsn_sql_pushdown_applied_total",
    "Fresh compilations whose plan pushed predicates/projections/limits into a scan",
    "plans",
);

/// Rows dropped by residual predicate re-application above bounded scans.
pub static SQL_RESIDUAL_ROWS_FILTERED_TOTAL: MetricDesc = MetricDesc::counter(
    "gsn_sql_residual_rows_filtered_total",
    "Rows dropped re-applying pushed-down residual predicates above bounded scans",
    "rows",
);

/// Ad-hoc queries executed.
pub static QUERY_ADHOC_TOTAL: MetricDesc = MetricDesc::counter(
    "gsn_query_adhoc_total",
    "Ad-hoc (one-shot) queries executed",
    "queries",
);

/// Registered-query evaluations performed (incremental + full).
pub static QUERY_REGISTERED_EVALUATED_TOTAL: MetricDesc = MetricDesc::counter(
    "gsn_query_registered_evaluated_total",
    "Registered-query evaluations performed (incremental + full)",
    "evaluations",
);

/// Registered-query evaluations that failed.
pub static QUERY_REGISTERED_FAILED_TOTAL: MetricDesc = MetricDesc::counter(
    "gsn_query_registered_failed_total",
    "Registered-query evaluations that failed",
    "evaluations",
);

/// Client queries currently registered.
pub static QUERY_REGISTERED: MetricDesc = MetricDesc::gauge(
    "gsn_query_registered",
    "Client queries currently registered",
    "queries",
);

/// Notifications delivered to local channels.
pub static NOTIFY_LOCAL_DELIVERED_TOTAL: MetricDesc = MetricDesc::counter(
    "gsn_notify_local_delivered_total",
    "Notifications delivered to local channels",
    "notifications",
);

/// Local deliveries that failed (closed channel).
pub static NOTIFY_LOCAL_FAILED_TOTAL: MetricDesc = MetricDesc::counter(
    "gsn_notify_local_failed_total",
    "Local deliveries that failed (closed channel, subscription removed)",
    "notifications",
);

/// Stream elements delivered to remote subscribers.
pub static NOTIFY_REMOTE_DELIVERED_TOTAL: MetricDesc = MetricDesc::counter(
    "gsn_notify_remote_delivered_total",
    "Stream elements delivered to remote subscribers",
    "elements",
);

/// Stream elements buffered for disconnected remote subscribers.
pub static NOTIFY_REMOTE_BUFFERED_TOTAL: MetricDesc = MetricDesc::counter(
    "gsn_notify_remote_buffered_total",
    "Stream elements buffered for disconnected remote subscribers",
    "elements",
);

/// Stream elements dropped by overflowing disconnect buffers.
pub static NOTIFY_REMOTE_DROPPED_TOTAL: MetricDesc = MetricDesc::counter(
    "gsn_notify_remote_dropped_total",
    "Stream elements dropped because a disconnect buffer overflowed",
    "elements",
);

/// Messages accepted by the simulated network.
pub static NET_SENT_TOTAL: MetricDesc = MetricDesc::counter(
    "gsn_net_sent_total",
    "Messages accepted for delivery by the simulated network",
    "messages",
);

/// Messages dropped by lossy links.
pub static NET_DROPPED_TOTAL: MetricDesc = MetricDesc::counter(
    "gsn_net_dropped_total",
    "Messages dropped by lossy links",
    "messages",
);

/// Messages handed to receivers.
pub static NET_DELIVERED_TOTAL: MetricDesc = MetricDesc::counter(
    "gsn_net_delivered_total",
    "Messages handed to receivers",
    "messages",
);

/// Wire bytes accepted for delivery.
pub static NET_BYTES_SENT_TOTAL: MetricDesc = MetricDesc::counter(
    "gsn_net_bytes_sent_total",
    "Wire bytes accepted for delivery",
    "bytes",
);

/// Per-link messages sent (labeled `link="from->to"`).
pub static NET_LINK_SENT_TOTAL: MetricDesc = MetricDesc::counter(
    "gsn_net_link_sent_total",
    "Messages accepted for delivery on one directed link",
    "messages",
)
.with_label("link");

/// Per-link messages dropped (labeled `link="from->to"`).
pub static NET_LINK_DROPPED_TOTAL: MetricDesc = MetricDesc::counter(
    "gsn_net_link_dropped_total",
    "Messages dropped by one directed link",
    "messages",
)
.with_label("link");

/// Per-link messages delivered (labeled `link="from->to"`).
pub static NET_LINK_DELIVERED_TOTAL: MetricDesc = MetricDesc::counter(
    "gsn_net_link_delivered_total",
    "Messages handed to the receiver of one directed link",
    "messages",
)
.with_label("link");

/// Per-link wire bytes sent (labeled `link="from->to"`).
pub static NET_LINK_BYTES_TOTAL: MetricDesc = MetricDesc::counter(
    "gsn_net_link_bytes_total",
    "Wire bytes accepted for delivery on one directed link",
    "bytes",
)
.with_label("link");

/// Virtual sensors currently deployed.
pub static SENSORS_DEPLOYED: MetricDesc = MetricDesc::gauge(
    "gsn_sensors_deployed",
    "Virtual sensors currently deployed",
    "sensors",
);

/// Streaming cursors currently held open for remote peers.
pub static REMOTE_CURSORS_OPEN: MetricDesc = MetricDesc::gauge(
    "gsn_remote_cursors_open",
    "Streaming cursors currently held open on behalf of remote peers",
    "cursors",
);

/// Remote queries issued by this container and still tracked.
pub static REMOTE_QUERIES_PENDING: MetricDesc = MetricDesc::gauge(
    "gsn_remote_queries_pending",
    "Remote queries issued by this container and still tracked",
    "queries",
);

/// Directory registrations observed by this node (shared directory or local replica).
pub static DIRECTORY_REGISTRATIONS_TOTAL: MetricDesc = MetricDesc::counter(
    "gsn_directory_registrations_total",
    "Sensor registrations processed by the directory this node sees",
    "registrations",
);

/// Directory deregistrations observed by this node.
pub static DIRECTORY_DEREGISTRATIONS_TOTAL: MetricDesc = MetricDesc::counter(
    "gsn_directory_deregistrations_total",
    "Sensor deregistrations processed by the directory this node sees",
    "deregistrations",
);

/// Directory lookups served to this node.
pub static DIRECTORY_LOOKUPS_TOTAL: MetricDesc = MetricDesc::counter(
    "gsn_directory_lookups_total",
    "Directory lookups served to this node",
    "lookups",
);

/// Members of the placement ring, as this node sees it.
pub static FEDERATION_RING_MEMBERS: MetricDesc = MetricDesc::gauge(
    "gsn_federation_ring_members",
    "Members of the placement ring in this node's current view",
    "nodes",
);

/// Share of the token space primarily owned by this node.
pub static FEDERATION_RING_OWNERSHIP_PERMILLE: MetricDesc = MetricDesc::gauge(
    "gsn_federation_ring_ownership_permille",
    "Fraction of the hash-token space whose primary owner is this node",
    "permille",
);

/// Records (including tombstones) held by the local directory replica.
pub static FEDERATION_REPLICA_RECORDS: MetricDesc = MetricDesc::gauge(
    "gsn_federation_replica_records",
    "Records held by the local directory replica, tombstones included",
    "records",
);

/// Remote directory records applied by gossip.
pub static FEDERATION_GOSSIP_APPLIED_TOTAL: MetricDesc = MetricDesc::counter(
    "gsn_federation_gossip_records_applied_total",
    "Remote directory records applied to the local replica by gossip",
    "records",
);

/// Remote directory records ignored as stale.
pub static FEDERATION_GOSSIP_STALE_TOTAL: MetricDesc = MetricDesc::counter(
    "gsn_federation_gossip_records_stale_total",
    "Remote directory records ignored because the local version was newer",
    "records",
);

/// Handles for every sourced metric, plus the refresh that stores the current totals.
#[derive(Debug, Clone, Default)]
pub struct SourcedMetrics {
    storage_tables: Gauge,
    storage_retained_rows: Gauge,
    storage_retained_bytes: Gauge,
    storage_rows_inserted: Counter,
    storage_rows_pruned: Counter,
    storage_out_of_order: Counter,
    storage_bytes_inserted: Counter,
    pool_hits: Counter,
    pool_misses: Counter,
    pool_evictions: Counter,
    pool_writebacks: Counter,
    pool_contended: Counter,
    pool_resident_pages: Gauge,
    spill_migrations: Counter,
    spilled_rows: Gauge,
    sql_compiled: Counter,
    sql_cache_hits: Counter,
    sql_executions: Counter,
    sql_rows_scanned: Counter,
    sql_rows_returned: Counter,
    sql_pushdown_applied: Counter,
    sql_residual_rows_filtered: Counter,
    query_adhoc: Counter,
    query_registered_evaluated: Counter,
    query_registered_failed: Counter,
    query_registered: Gauge,
    notify_local_delivered: Counter,
    notify_local_failed: Counter,
    notify_remote_delivered: Counter,
    notify_remote_buffered: Counter,
    notify_remote_dropped: Counter,
    net_sent: Counter,
    net_dropped: Counter,
    net_delivered: Counter,
    net_bytes_sent: Counter,
    sensors_deployed: Gauge,
    remote_cursors_open: Gauge,
    remote_queries_pending: Gauge,
    directory_registrations: Counter,
    directory_deregistrations: Counter,
    directory_lookups: Counter,
    ring_members: Gauge,
    ring_ownership_permille: Gauge,
    replica_records: Gauge,
    gossip_applied: Counter,
    gossip_stale: Counter,
}

/// The subsystem totals [`SourcedMetrics::refresh`] stores into the registry.
#[derive(Debug, Clone, Copy, Default)]
pub struct SourcedTotals<'a> {
    /// Node-level storage statistics.
    pub storage: Option<&'a gsn_storage::StorageStats>,
    /// Merged SQL-engine statistics.
    pub engine: Option<&'a gsn_sql::EngineStats>,
    /// Merged query-repository statistics.
    pub queries: Option<&'a crate::QueryManagerStats>,
    /// Client queries currently registered.
    pub registered_queries: usize,
    /// Notification-manager statistics.
    pub notifications: Option<&'a crate::NotificationStats>,
    /// Whole-network delivery statistics.
    pub network: Option<gsn_network::NetworkStats>,
    /// Virtual sensors currently deployed.
    pub sensors: usize,
    /// Open remote cursors.
    pub remote_cursors: usize,
    /// Pending remote queries.
    pub remote_queries: usize,
    /// Shared-directory statistics (federation with a central directory).
    pub directory: Option<gsn_network::DirectoryStats>,
    /// Replicated-directory statistics (mesh federation).
    pub replica: Option<gsn_federation::ReplicaStats>,
    /// Placement-ring members in this node's view.
    pub ring_members: usize,
    /// Token-space share primarily owned by this node (permille).
    pub ring_ownership_permille: u64,
    /// Records (tombstones included) held by the local replica.
    pub replica_records: usize,
}

impl SourcedMetrics {
    /// Fresh, detached handles.
    pub fn new() -> SourcedMetrics {
        SourcedMetrics::default()
    }

    /// Adopts every handle into `registry` so snapshots include them (at zero until the
    /// first [`refresh`](Self::refresh)).
    pub fn register_into(&self, registry: &MetricsRegistry) {
        registry.register_gauge(&STORAGE_TABLES, &self.storage_tables);
        registry.register_gauge(&STORAGE_RETAINED_ROWS, &self.storage_retained_rows);
        registry.register_gauge(&STORAGE_RETAINED_BYTES, &self.storage_retained_bytes);
        registry.register_counter(&STORAGE_ROWS_INSERTED_TOTAL, &self.storage_rows_inserted);
        registry.register_counter(&STORAGE_ROWS_PRUNED_TOTAL, &self.storage_rows_pruned);
        registry.register_counter(&STORAGE_OUT_OF_ORDER_TOTAL, &self.storage_out_of_order);
        registry.register_counter(&STORAGE_BYTES_INSERTED_TOTAL, &self.storage_bytes_inserted);
        registry.register_counter(&STORAGE_POOL_HITS_TOTAL, &self.pool_hits);
        registry.register_counter(&STORAGE_POOL_MISSES_TOTAL, &self.pool_misses);
        registry.register_counter(&STORAGE_POOL_EVICTIONS_TOTAL, &self.pool_evictions);
        registry.register_counter(&STORAGE_POOL_WRITEBACKS_TOTAL, &self.pool_writebacks);
        registry.register_counter(&STORAGE_POOL_CONTENDED_TOTAL, &self.pool_contended);
        registry.register_gauge(&STORAGE_POOL_RESIDENT_PAGES, &self.pool_resident_pages);
        registry.register_counter(&STORAGE_SPILL_MIGRATIONS_TOTAL, &self.spill_migrations);
        registry.register_gauge(&STORAGE_SPILLED_ROWS, &self.spilled_rows);
        registry.register_counter(&SQL_PLANS_COMPILED_TOTAL, &self.sql_compiled);
        registry.register_counter(&SQL_PLAN_CACHE_HITS_TOTAL, &self.sql_cache_hits);
        registry.register_counter(&SQL_EXECUTIONS_TOTAL, &self.sql_executions);
        registry.register_counter(&SQL_ROWS_SCANNED_TOTAL, &self.sql_rows_scanned);
        registry.register_counter(&SQL_ROWS_RETURNED_TOTAL, &self.sql_rows_returned);
        registry.register_counter(&SQL_PUSHDOWN_APPLIED_TOTAL, &self.sql_pushdown_applied);
        registry.register_counter(
            &SQL_RESIDUAL_ROWS_FILTERED_TOTAL,
            &self.sql_residual_rows_filtered,
        );
        registry.register_counter(&QUERY_ADHOC_TOTAL, &self.query_adhoc);
        registry.register_counter(
            &QUERY_REGISTERED_EVALUATED_TOTAL,
            &self.query_registered_evaluated,
        );
        registry.register_counter(
            &QUERY_REGISTERED_FAILED_TOTAL,
            &self.query_registered_failed,
        );
        registry.register_gauge(&QUERY_REGISTERED, &self.query_registered);
        registry.register_counter(&NOTIFY_LOCAL_DELIVERED_TOTAL, &self.notify_local_delivered);
        registry.register_counter(&NOTIFY_LOCAL_FAILED_TOTAL, &self.notify_local_failed);
        registry.register_counter(
            &NOTIFY_REMOTE_DELIVERED_TOTAL,
            &self.notify_remote_delivered,
        );
        registry.register_counter(&NOTIFY_REMOTE_BUFFERED_TOTAL, &self.notify_remote_buffered);
        registry.register_counter(&NOTIFY_REMOTE_DROPPED_TOTAL, &self.notify_remote_dropped);
        registry.register_counter(&NET_SENT_TOTAL, &self.net_sent);
        registry.register_counter(&NET_DROPPED_TOTAL, &self.net_dropped);
        registry.register_counter(&NET_DELIVERED_TOTAL, &self.net_delivered);
        registry.register_counter(&NET_BYTES_SENT_TOTAL, &self.net_bytes_sent);
        registry.register_gauge(&SENSORS_DEPLOYED, &self.sensors_deployed);
        registry.register_gauge(&REMOTE_CURSORS_OPEN, &self.remote_cursors_open);
        registry.register_gauge(&REMOTE_QUERIES_PENDING, &self.remote_queries_pending);
        registry.register_counter(
            &DIRECTORY_REGISTRATIONS_TOTAL,
            &self.directory_registrations,
        );
        registry.register_counter(
            &DIRECTORY_DEREGISTRATIONS_TOTAL,
            &self.directory_deregistrations,
        );
        registry.register_counter(&DIRECTORY_LOOKUPS_TOTAL, &self.directory_lookups);
        registry.register_gauge(&FEDERATION_RING_MEMBERS, &self.ring_members);
        registry.register_gauge(
            &FEDERATION_RING_OWNERSHIP_PERMILLE,
            &self.ring_ownership_permille,
        );
        registry.register_gauge(&FEDERATION_REPLICA_RECORDS, &self.replica_records);
        registry.register_counter(&FEDERATION_GOSSIP_APPLIED_TOTAL, &self.gossip_applied);
        registry.register_counter(&FEDERATION_GOSSIP_STALE_TOTAL, &self.gossip_stale);
    }

    /// Stores the current subsystem totals into the registry cells.
    pub fn refresh(&self, totals: &SourcedTotals<'_>) {
        if let Some(storage) = totals.storage {
            self.storage_tables.set(storage.tables as i64);
            self.storage_retained_rows
                .set(storage.retained_elements as i64);
            self.storage_retained_bytes
                .set(storage.retained_bytes as i64);
            self.storage_rows_inserted.store(storage.totals.inserted);
            self.storage_rows_pruned.store(storage.totals.pruned);
            self.storage_out_of_order.store(storage.totals.out_of_order);
            self.storage_bytes_inserted
                .store(storage.totals.bytes_inserted);
            self.pool_hits.store(storage.pool.hits);
            self.pool_misses.store(storage.pool.misses);
            self.pool_evictions.store(storage.pool.evictions);
            self.pool_writebacks.store(storage.pool.writebacks);
            self.pool_contended.store(storage.pool.contended);
            self.pool_resident_pages
                .set(storage.pool.resident_pages as i64);
            self.spill_migrations.store(storage.spill_migrations);
            self.spilled_rows.set(storage.spilled_rows as i64);
        }
        if let Some(engine) = totals.engine {
            self.sql_compiled.store(engine.compiled);
            self.sql_cache_hits.store(engine.cache_hits);
            self.sql_executions.store(engine.executions);
            self.sql_rows_scanned.store(engine.rows_scanned);
            self.sql_rows_returned.store(engine.rows_returned);
            self.sql_pushdown_applied.store(engine.pushdown_applied);
            self.sql_residual_rows_filtered
                .store(engine.rows_residual_filtered);
        }
        if let Some(queries) = totals.queries {
            self.query_adhoc.store(queries.adhoc_executed);
            self.query_registered_evaluated
                .store(queries.registered_evaluated);
            self.query_registered_failed
                .store(queries.registered_failed);
        }
        self.query_registered.set(totals.registered_queries as i64);
        if let Some(notifications) = totals.notifications {
            self.notify_local_delivered
                .store(notifications.local_delivered);
            self.notify_local_failed.store(notifications.local_failed);
            self.notify_remote_delivered
                .store(notifications.remote_delivered);
            self.notify_remote_buffered
                .store(notifications.remote_buffered);
            self.notify_remote_dropped
                .store(notifications.remote_dropped);
        }
        if let Some(network) = totals.network {
            self.net_sent.store(network.sent);
            self.net_dropped.store(network.dropped);
            self.net_delivered.store(network.delivered);
            self.net_bytes_sent.store(network.bytes_sent);
        }
        self.sensors_deployed.set(totals.sensors as i64);
        self.remote_cursors_open.set(totals.remote_cursors as i64);
        self.remote_queries_pending
            .set(totals.remote_queries as i64);
        if let Some(directory) = totals.directory {
            self.directory_registrations.store(directory.registrations);
            self.directory_deregistrations
                .store(directory.deregistrations);
            self.directory_lookups.store(directory.lookups);
        }
        if let Some(replica) = totals.replica {
            self.directory_registrations.store(replica.registrations);
            self.directory_deregistrations
                .store(replica.deregistrations);
            self.directory_lookups.store(replica.lookups);
            self.gossip_applied.store(replica.records_applied);
            self.gossip_stale.store(replica.records_stale);
        }
        self.ring_members.set(totals.ring_members as i64);
        self.ring_ownership_permille
            .set(totals.ring_ownership_permille as i64);
        self.replica_records.set(totals.replica_records as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsn_telemetry::MetricsRegistry;

    #[test]
    fn container_telemetry_registers_and_absorbs() {
        let registry = MetricsRegistry::new();
        let telemetry = ContainerTelemetry::new();
        telemetry.register_into(&registry);
        let report = crate::StepReport {
            local_arrivals: 3,
            remote_arrivals: 1,
            outputs: 2,
            client_query_evaluations: 5,
            errors: 1,
            silence_events: 1,
            processing_micros: 42,
        };
        telemetry.absorb_report(&report);
        telemetry.absorb_report(&report);
        let snapshot = registry.snapshot();
        assert_eq!(
            snapshot
                .get("gsn_step_local_arrivals_total")
                .and_then(|s| s.as_counter()),
            Some(6)
        );
        assert_eq!(
            snapshot
                .get("gsn_step_query_evaluations_total")
                .and_then(|s| s.as_counter()),
            Some(10)
        );
    }

    #[test]
    fn sourced_metrics_store_the_current_totals() {
        let registry = MetricsRegistry::new();
        let sourced = SourcedMetrics::new();
        sourced.register_into(&registry);
        let mut storage = gsn_storage::StorageStats {
            tables: 2,
            retained_elements: 100,
            ..Default::default()
        };
        storage.totals.inserted = 150;
        storage.pool.hits = 40;
        let engine = gsn_sql::EngineStats {
            compiled: 3,
            cache_hits: 7,
            executions: 10,
            rows_scanned: 500,
            rows_returned: 50,
            pages_skipped: 12,
            pushdown_applied: 2,
            rows_residual_filtered: 9,
        };
        let totals = SourcedTotals {
            storage: Some(&storage),
            engine: Some(&engine),
            sensors: 4,
            ..Default::default()
        };
        sourced.refresh(&totals);
        // Refreshing twice must not double-count: store, not add.
        sourced.refresh(&totals);
        let snapshot = registry.snapshot();
        assert_eq!(
            snapshot
                .get("gsn_storage_rows_inserted_total")
                .and_then(|s| s.as_counter()),
            Some(150)
        );
        assert_eq!(
            snapshot
                .get("gsn_sql_rows_scanned_total")
                .and_then(|s| s.as_counter()),
            Some(500)
        );
        assert_eq!(
            snapshot
                .get("gsn_sql_pushdown_applied_total")
                .and_then(|s| s.as_counter()),
            Some(2)
        );
        assert_eq!(
            snapshot
                .get("gsn_sql_residual_rows_filtered_total")
                .and_then(|s| s.as_counter()),
            Some(9)
        );
        assert_eq!(
            snapshot
                .get("gsn_sensors_deployed")
                .and_then(|s| s.as_gauge()),
            Some(4)
        );
    }
}
