//! # gsn-core
//!
//! The GSN container — the heart of the middleware reproduced from "A Middleware for Fast
//! and Flexible Sensor Network Deployment" (VLDB 2006).
//!
//! A [`GsnContainer`] hosts a pool of virtual sensors deployed from XML descriptors,
//! manages their wrappers, storage, stream quality, query processing and notifications,
//! and participates in a peer-to-peer federation of containers for remote sensor access.
//!
//! ```
//! use std::sync::Arc;
//! use gsn_core::{ContainerConfig, GsnContainer};
//! use gsn_types::{Duration, SimulatedClock};
//!
//! let clock = SimulatedClock::new();
//! let mut container = GsnContainer::new(ContainerConfig::default(), Arc::new(clock.clone()));
//! container.deploy_xml(r#"
//!   <virtual-sensor name="quick-temp">
//!     <output-structure><field name="avg_temp" type="double"/></output-structure>
//!     <input-stream name="main">
//!       <stream-source alias="src1" storage-size="10">
//!         <address wrapper="mote"><predicate key="interval" val="100"/></address>
//!         <query>select avg(temperature) as avg_temp from WRAPPER</query>
//!       </stream-source>
//!       <query>select * from src1</query>
//!     </input-stream>
//!   </virtual-sensor>"#).unwrap();
//! clock.advance(Duration::from_secs(1));
//! let report = container.step();
//! assert_eq!(report.outputs, 10);
//! let avg = container.query("select avg(avg_temp) from quick_temp").unwrap();
//! assert_eq!(avg.row_count(), 1);
//! ```
//!
//! Module map (mirroring Figure 2 of the paper):
//!
//! * [`container`] — the container itself (interface layer + coordination).
//! * [`sensor`] — the virtual sensor manager / life-cycle manager per deployed sensor.
//! * [`ism`] — the input stream manager (stream quality, rate bounding).
//! * [`query`] — the query manager (query processor + query repository).
//! * [`notification`] — the notification manager.
//! * [`pool`] — worker pools backing `<life-cycle pool-size="N">`.
//! * [`federation`] — the multi-node harness (peer-to-peer overlay of containers).
//! * [`telemetry`] — the container's metric descriptors and instrument handles.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod container;
pub mod cursor;
pub mod federation;
pub mod ism;
pub mod notification;
pub mod pool;
pub mod query;
pub mod sensor;
pub mod telemetry;

pub use config::{system_clock, ContainerConfig};
pub use container::{ContainerStatus, GsnContainer, RemoteQueryResult, SensorStatus, StepReport};
pub use cursor::QueryCursor;
pub use federation::{Federation, Mesh};
pub use ism::{QualityPolicy, RateLimiter, SourceMonitor, SourceQuality};
pub use notification::{Notification, NotificationManager, NotificationStats, SubscriptionId};
pub use pool::WorkerPool;
pub use query::{
    shard_index, ClientQuery, ClientQueryId, ClientQueryResult, QueryManager, QueryManagerStats,
    QueryPartitionStatus, QueryRepository,
};
pub use sensor::{SensorStats, SourceKind, VirtualSensor};
pub use telemetry::{ContainerTelemetry, QueryTelemetry, SourcedMetrics, SourcedTotals};
