//! A federation of GSN containers: the multi-node harness.
//!
//! The paper's demo deploys four sensor networks across three GSN nodes connected in a
//! peer-to-peer fashion (Section 6, Figure 5).  [`Federation`] reproduces that topology in
//! one process: a shared simulated network and directory, a shared simulated clock, and
//! any number of containers.  Stepping the federation advances the clock and steps every
//! container twice per tick — once to produce and send, once to drain deliveries — so that
//! messages sent in a tick are observed within the same tick when link latency allows.

use std::collections::BTreeMap;
use std::sync::Arc;

use gsn_network::{Directory, LinkSpec, SimulatedNetwork};
use gsn_types::{Duration, GsnError, GsnResult, NodeId, SimulatedClock, Timestamp};

use crate::config::ContainerConfig;
use crate::container::{GsnContainer, StepReport};

/// A set of GSN containers sharing a simulated network, directory and clock.
pub struct Federation {
    network: Arc<SimulatedNetwork>,
    directory: Arc<Directory>,
    clock: SimulatedClock,
    nodes: BTreeMap<NodeId, GsnContainer>,
    next_node: u64,
}

impl Default for Federation {
    fn default() -> Self {
        Federation::new()
    }
}

impl std::fmt::Debug for Federation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Federation({} nodes)", self.nodes.len())
    }
}

impl Federation {
    /// Creates an empty federation starting at simulated time zero.
    pub fn new() -> Federation {
        Federation {
            network: Arc::new(SimulatedNetwork::new()),
            directory: Arc::new(Directory::new()),
            clock: SimulatedClock::new(),
            nodes: BTreeMap::new(),
            next_node: 1,
        }
    }

    /// The shared simulated clock.
    pub fn clock(&self) -> &SimulatedClock {
        &self.clock
    }

    /// The current simulated time.
    pub fn now(&self) -> Timestamp {
        use gsn_types::Clock as _;
        self.clock.now()
    }

    /// The shared network (for configuring links, partitions, inspecting statistics).
    pub fn network(&self) -> &Arc<SimulatedNetwork> {
        &self.network
    }

    /// The shared directory.
    pub fn directory(&self) -> &Arc<Directory> {
        &self.directory
    }

    /// Adds a container with an auto-assigned node id.
    pub fn add_node(&mut self, name: &str) -> GsnResult<NodeId> {
        let node_id = NodeId::new(self.next_node);
        self.next_node += 1;
        let config = ContainerConfig::named(node_id, name);
        self.add_node_with_config(config)
    }

    /// Adds a container with an explicit configuration.
    pub fn add_node_with_config(&mut self, config: ContainerConfig) -> GsnResult<NodeId> {
        let node_id = config.node_id;
        if self.nodes.contains_key(&node_id) {
            return Err(GsnError::already_exists(format!(
                "{node_id} already exists"
            )));
        }
        let container = GsnContainer::with_network(
            config,
            Arc::new(self.clock.clone()),
            Arc::clone(&self.network),
            Arc::clone(&self.directory),
        )?;
        self.nodes.insert(node_id, container);
        Ok(node_id)
    }

    /// The node ids, in order.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.nodes.keys().copied().collect()
    }

    /// Mutable access to a container.
    pub fn node_mut(&mut self, node: NodeId) -> GsnResult<&mut GsnContainer> {
        self.nodes
            .get_mut(&node)
            .ok_or_else(|| GsnError::not_found(format!("{node} is not part of this federation")))
    }

    /// Shared access to a container.
    pub fn node(&self, node: NodeId) -> GsnResult<&GsnContainer> {
        self.nodes
            .get(&node)
            .ok_or_else(|| GsnError::not_found(format!("{node} is not part of this federation")))
    }

    /// Configures the link between two nodes.
    pub fn set_link(&self, a: NodeId, b: NodeId, spec: LinkSpec) {
        self.network.set_link(a, b, spec);
    }

    /// Advances the simulated clock by `delta` and steps every container.
    ///
    /// Containers are stepped twice: the first pass polls wrappers and sends remote
    /// deliveries; the second pass drains whatever arrived within the same tick.
    pub fn step(&mut self, delta: Duration) -> StepReport {
        self.clock.advance(delta);
        let mut report = StepReport::default();
        for container in self.nodes.values_mut() {
            let r = container.step();
            report.absorb(r);
        }
        for container in self.nodes.values_mut() {
            let r = container.step();
            report.absorb(r);
        }
        report
    }

    /// Runs the federation for `total` simulated time in `tick`-sized steps, returning the
    /// aggregated report.
    pub fn run_for(&mut self, total: Duration, tick: Duration) -> StepReport {
        let mut report = StepReport::default();
        let ticks = (total.as_millis() / tick.as_millis().max(1)).max(1);
        for _ in 0..ticks {
            let r = self.step(tick);
            report.absorb(r);
        }
        report
    }

    /// Renders the status of every container.
    pub fn render_status(&self) -> String {
        let mut out = String::new();
        for container in self.nodes.values() {
            out.push_str(&container.status().render());
            out.push('\n');
        }
        out
    }
}

/// A federation of *mesh* containers: no shared directory, no shared anything except
/// the simulated network and clock.
///
/// Where [`Federation`] wires every container to one central [`Directory`] (the paper's
/// original architecture), `Mesh` gives each container its own gossip-replicated
/// directory plus a consistent-hash placement ring, so lookup and placement survive any
/// single node leaving.  Nodes join sequentially through [`add_node`](Mesh::add_node)
/// (each new node seeds its ring view from an existing member and announces the grown
/// view) and leave through [`remove_node`](Mesh::remove_node).
pub struct Mesh {
    network: Arc<SimulatedNetwork>,
    clock: SimulatedClock,
    nodes: BTreeMap<NodeId, GsnContainer>,
    next_node: u64,
}

impl Default for Mesh {
    fn default() -> Self {
        Mesh::new()
    }
}

impl std::fmt::Debug for Mesh {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Mesh({} nodes)", self.nodes.len())
    }
}

impl Mesh {
    /// Creates an empty mesh starting at simulated time zero.
    pub fn new() -> Mesh {
        Mesh {
            network: Arc::new(SimulatedNetwork::new()),
            clock: SimulatedClock::new(),
            nodes: BTreeMap::new(),
            next_node: 1,
        }
    }

    /// The shared simulated clock.
    pub fn clock(&self) -> &SimulatedClock {
        &self.clock
    }

    /// The current simulated time.
    pub fn now(&self) -> Timestamp {
        use gsn_types::Clock as _;
        self.clock.now()
    }

    /// The shared network (for configuring links, partitions, inspecting statistics).
    pub fn network(&self) -> &Arc<SimulatedNetwork> {
        &self.network
    }

    /// Adds a mesh container with an auto-assigned node id.  The new node seeds its
    /// ring view from an arbitrary existing member (the mesh's introducer), then
    /// announces the grown membership to everyone.
    pub fn add_node(&mut self, name: &str) -> GsnResult<NodeId> {
        let node_id = NodeId::new(self.next_node);
        self.next_node += 1;
        let config = ContainerConfig::named(node_id, name);
        self.add_node_with_config(config)
    }

    /// Adds a mesh container with an explicit configuration.
    pub fn add_node_with_config(&mut self, config: ContainerConfig) -> GsnResult<NodeId> {
        let node_id = config.node_id;
        if self.nodes.contains_key(&node_id) {
            return Err(GsnError::already_exists(format!(
                "{node_id} already exists"
            )));
        }
        let seed = self
            .nodes
            .values()
            .next()
            .map(|c| (c.ring_members(), c.ring_epoch()))
            .unwrap_or_default();
        let mut container = GsnContainer::with_mesh(
            config,
            Arc::new(self.clock.clone()),
            Arc::clone(&self.network),
        )?;
        container.mesh_bootstrap(&seed.0, seed.1);
        self.nodes.insert(node_id, container);
        // Drain the join announce (default links have 1 ms latency) so every member
        // adopts the grown view before the next join seeds from it.  Two joins seeding
        // from the same stale view would otherwise fork the ring at equal epochs.
        self.step(Duration::from_millis(2));
        Ok(node_id)
    }

    /// Removes a container from the mesh gracefully: its directory entries are
    /// tombstoned and pushed to the survivors along with the shrunk ring view, then the
    /// container is dropped.  Returns an error if the node is unknown.
    pub fn remove_node(&mut self, node: NodeId) -> GsnResult<()> {
        let mut container = self
            .nodes
            .remove(&node)
            .ok_or_else(|| GsnError::not_found(format!("{node} is not part of this mesh")))?;
        container.mesh_leave();
        Ok(())
    }

    /// The node ids, in order.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.nodes.keys().copied().collect()
    }

    /// Mutable access to a container.
    pub fn node_mut(&mut self, node: NodeId) -> GsnResult<&mut GsnContainer> {
        self.nodes
            .get_mut(&node)
            .ok_or_else(|| GsnError::not_found(format!("{node} is not part of this mesh")))
    }

    /// Shared access to a container.
    pub fn node(&self, node: NodeId) -> GsnResult<&GsnContainer> {
        self.nodes
            .get(&node)
            .ok_or_else(|| GsnError::not_found(format!("{node} is not part of this mesh")))
    }

    /// Configures the link between two nodes.
    pub fn set_link(&self, a: NodeId, b: NodeId, spec: LinkSpec) {
        self.network.set_link(a, b, spec);
    }

    /// Configures every pairwise link in the mesh at once.
    pub fn set_all_links(&self, spec: LinkSpec) {
        let ids = self.node_ids();
        for (i, a) in ids.iter().enumerate() {
            for b in &ids[i + 1..] {
                self.network.set_link(*a, *b, spec);
            }
        }
    }

    /// Advances the simulated clock by `delta` and steps every container twice (send
    /// pass, then drain pass), exactly like [`Federation::step`].
    pub fn step(&mut self, delta: Duration) -> StepReport {
        self.clock.advance(delta);
        let mut report = StepReport::default();
        for container in self.nodes.values_mut() {
            let r = container.step();
            report.absorb(r);
        }
        for container in self.nodes.values_mut() {
            let r = container.step();
            report.absorb(r);
        }
        report
    }

    /// Runs the mesh for `total` simulated time in `tick`-sized steps.
    pub fn run_for(&mut self, total: Duration, tick: Duration) -> StepReport {
        let mut report = StepReport::default();
        let ticks = (total.as_millis() / tick.as_millis().max(1)).max(1);
        for _ in 0..ticks {
            let r = self.step(tick);
            report.absorb(r);
        }
        report
    }

    /// Issues a federated query from `via` and steps the mesh until the scatter-gather
    /// completes, up to `max_ticks` ticks of `tick` each.
    pub fn federated_query(
        &mut self,
        via: NodeId,
        sql: &str,
        tick: Duration,
        max_ticks: usize,
    ) -> GsnResult<gsn_sql::Relation> {
        let request = self.node_mut(via)?.federated_query(sql)?;
        for _ in 0..max_ticks {
            if let Some(result) = self.node_mut(via)?.take_federated_result(request) {
                return result;
            }
            self.step(tick);
        }
        if let Some(result) = self.node_mut(via)?.take_federated_result(request) {
            return result;
        }
        Err(GsnError::internal(format!(
            "federated query did not complete within {max_ticks} ticks"
        )))
    }

    /// True when every pair of live replicas holds an identical record snapshot.
    pub fn replicas_converged(&self) -> bool {
        let mut snapshots = self.nodes.values().map(|c| c.replica_snapshot());
        let Some(first) = snapshots.next() else {
            return true;
        };
        snapshots.all(|s| s == first)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsn_types::DataType;
    use gsn_xml::{AddressSpec, InputStreamSpec, StreamSourceSpec, VirtualSensorDescriptor};

    fn producer_descriptor() -> VirtualSensorDescriptor {
        VirtualSensorDescriptor::builder("room-bc143-temperature")
            .unwrap()
            .metadata("type", "temperature")
            .metadata("location", "bc143")
            .output_field("temperature", DataType::Double)
            .unwrap()
            .permanent_storage(true)
            .input_stream(
                InputStreamSpec::new("main", "select * from src1").with_source(
                    StreamSourceSpec::new(
                        "src1",
                        AddressSpec::new("mote").with_predicate("interval", "100"),
                        "select avg(temperature) as temperature from WRAPPER",
                    )
                    .with_window(gsn_storage::WindowSpec::Count(5)),
                ),
            )
            .build()
            .unwrap()
    }

    fn consumer_descriptor() -> VirtualSensorDescriptor {
        // The paper's Figure 1: a virtual sensor averaging a *remote* temperature stream
        // addressed purely by predicates.
        VirtualSensorDescriptor::builder("averaged-bc143")
            .unwrap()
            .output_field("temperature", DataType::Double)
            .unwrap()
            .permanent_storage(true)
            .input_stream(
                InputStreamSpec::new("dummy", "select * from src1").with_source(
                    StreamSourceSpec::new(
                        "src1",
                        AddressSpec::new("remote")
                            .with_predicate("type", "temperature")
                            .with_predicate("location", "bc143"),
                        "select avg(temperature) as temperature from WRAPPER",
                    )
                    .with_window(gsn_storage::WindowSpec::Time(Duration::from_secs(10))),
                ),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn federation_setup_and_node_access() {
        let mut fed = Federation::new();
        let a = fed.add_node("node-a").unwrap();
        let b = fed.add_node("node-b").unwrap();
        assert_eq!(fed.node_ids(), vec![a, b]);
        assert!(fed.node(a).is_ok());
        assert!(fed.node_mut(b).is_ok());
        assert!(fed.node(NodeId::new(99)).is_err());
        assert!(fed
            .add_node_with_config(ContainerConfig::named(a, "dup"))
            .is_err());
        assert_eq!(fed.now(), Timestamp::EPOCH);
    }

    #[test]
    fn remote_virtual_sensor_flows_across_nodes() {
        let mut fed = Federation::new();
        let producer_node = fed.add_node("producer").unwrap();
        let consumer_node = fed.add_node("consumer").unwrap();
        fed.set_link(producer_node, consumer_node, LinkSpec::lan());

        fed.node_mut(producer_node)
            .unwrap()
            .deploy(producer_descriptor())
            .unwrap();
        // The directory now knows the producer, so the consumer's remote source resolves.
        fed.node_mut(consumer_node)
            .unwrap()
            .deploy(consumer_descriptor())
            .unwrap();
        assert_eq!(fed.directory().len(), 2);

        let report = fed.run_for(Duration::from_secs(2), Duration::from_millis(100));
        assert!(report.outputs > 0);
        assert!(report.remote_arrivals > 0, "remote deliveries expected");

        // The consumer's output table contains averaged remote temperatures.
        let rel = fed
            .node_mut(consumer_node)
            .unwrap()
            .query("select count(*) as n, avg(temperature) as t from averaged_bc143")
            .unwrap();
        let n = rel.rows()[0][0].as_integer().unwrap();
        assert!(n > 0, "consumer produced no outputs");
        let t = rel.rows()[0][1].as_double().unwrap();
        assert!((10.0..=40.0).contains(&t), "implausible temperature {t}");

        let status = fed.render_status();
        assert!(status.contains("producer"));
        assert!(status.contains("consumer"));
        assert!(fed.network().stats().delivered > 0);
    }

    #[test]
    fn remote_streaming_query_ships_incremental_batches() {
        let mut fed = Federation::new();
        let producer_node = fed.add_node("producer").unwrap();
        let client_node = fed.add_node("client").unwrap();
        fed.set_link(producer_node, client_node, LinkSpec::lan());
        fed.node_mut(producer_node)
            .unwrap()
            .deploy(producer_descriptor())
            .unwrap();
        // Accumulate ~20 output rows in the producer's permanent-storage table.
        fed.run_for(Duration::from_secs(2), Duration::from_millis(100));

        let request = fed
            .node_mut(client_node)
            .unwrap()
            .remote_query(
                producer_node,
                "select temperature from room_bc143_temperature",
                4,
            )
            .unwrap();
        let mut result = None;
        for _ in 0..50 {
            fed.step(Duration::from_millis(10));
            if let Some(r) = fed
                .node_mut(client_node)
                .unwrap()
                .take_remote_query_result(request)
            {
                result = Some(r.unwrap());
                break;
            }
        }
        let result = result.expect("remote query never completed");
        assert!(result.relation.row_count() >= 20, "{result:?}");
        assert!(
            result.batches > 1,
            "result should ship in multiple batches, got {}",
            result.batches
        );
        assert_eq!(result.relation.columns()[0].name, "TEMPERATURE");
        // All server-side cursors are closed once the stream completes.
        assert_eq!(fed.node(producer_node).unwrap().open_remote_cursors(), 0);

        // A failing remote query surfaces the server's error.
        let request = fed
            .node_mut(client_node)
            .unwrap()
            .remote_query(producer_node, "select * from nosuch_table", 4)
            .unwrap();
        let mut error = None;
        for _ in 0..50 {
            fed.step(Duration::from_millis(10));
            if let Some(r) = fed
                .node_mut(client_node)
                .unwrap()
                .take_remote_query_result(request)
            {
                error = Some(r.unwrap_err());
                break;
            }
        }
        let error = error.expect("error never surfaced").to_string();
        assert!(error.contains("nosuch_table"), "{error}");
    }

    #[test]
    fn remote_streaming_query_survives_a_lossy_link() {
        let mut fed = Federation::new();
        let producer_node = fed.add_node("producer").unwrap();
        let client_node = fed.add_node("client").unwrap();
        // A wireless link dropping ~30% of all messages: QueryRequest, QueryNext and
        // QueryBatch messages are all lost regularly.  Batch sequence numbers plus the
        // client's re-request timer must recover every loss.
        fed.set_link(producer_node, client_node, LinkSpec::wireless(5, 0.3));
        fed.node_mut(producer_node)
            .unwrap()
            .deploy(producer_descriptor())
            .unwrap();
        fed.run_for(Duration::from_secs(2), Duration::from_millis(100));
        let reference = fed
            .node_mut(producer_node)
            .unwrap()
            .query("select count(*) as n from room_bc143_temperature")
            .unwrap()
            .rows()[0][0]
            .as_integer()
            .unwrap();
        assert!(reference >= 20);

        let request = fed
            .node_mut(client_node)
            .unwrap()
            .remote_query(
                producer_node,
                "select pk, temperature from room_bc143_temperature",
                2,
            )
            .unwrap();
        let mut result = None;
        // Retries pace at 2 s; give the exchange plenty of simulated time.
        for _ in 0..400 {
            fed.step(Duration::from_millis(500));
            if let Some(r) = fed
                .node_mut(client_node)
                .unwrap()
                .take_remote_query_result(request)
            {
                result = Some(r.unwrap());
                break;
            }
        }
        let result = result.expect("remote query never completed over the lossy link");
        // At least the pre-query snapshot arrived (the producer keeps producing while
        // retries run, so the cursor's own snapshot may be larger)...
        assert!(
            result.relation.row_count() as i64 >= reference,
            "{result:?}"
        );
        assert!(result.batches > 1);
        // ...and the PK column is gap-free and duplicate-free from row 1: retransmitted
        // batches were deduplicated and no dropped batch left a hole.
        let pks: Vec<i64> = result
            .relation
            .rows()
            .iter()
            .map(|r| r[0].as_integer().unwrap())
            .collect();
        let expected: Vec<i64> = (1..=pks.len() as i64).collect();
        assert_eq!(pks, expected);
        assert!(
            fed.network().stats().dropped > 0,
            "the link was supposed to be lossy"
        );
    }

    #[test]
    fn abandoned_remote_cursors_are_reaped() {
        let mut fed = Federation::new();
        let producer_node = fed.add_node("producer").unwrap();
        let client_node = fed.add_node("client").unwrap();
        fed.node_mut(producer_node)
            .unwrap()
            .deploy(producer_descriptor())
            .unwrap();
        fed.run_for(Duration::from_secs(1), Duration::from_millis(100));

        // A raw QueryRequest whose follow-up pulls never come: the request id is
        // unknown on the client container, so it drops the first QueryBatch and sends
        // no QueryNext — the server-side cursor is abandoned mid-stream.
        fed.network()
            .send(
                client_node,
                producer_node,
                gsn_network::Message::QueryRequest {
                    request: 999,
                    sql: "select temperature from room_bc143_temperature".into(),
                    batch_rows: 1,
                    prefetch: false,
                    trace: None,
                },
                fed.now(),
            )
            .unwrap();
        fed.step(Duration::from_millis(100));
        assert_eq!(fed.node(producer_node).unwrap().open_remote_cursors(), 1);

        // A client request whose responses can never come back (the link partitions
        // right after the request is sent) is a stalled client-side entry.
        let stalled = fed
            .node_mut(client_node)
            .unwrap()
            .remote_query(producer_node, "select 1 from room_bc143_temperature", 4)
            .unwrap();
        fed.network().partition(client_node, producer_node);
        fed.step(Duration::from_millis(100));
        assert_eq!(fed.node(client_node).unwrap().pending_remote_queries(), 1);

        // Once the idle timeout elapses, the step loops reap both the abandoned
        // server cursor and the stalled client request, so neither side leaks.
        fed.run_for(Duration::from_secs(61), Duration::from_secs(1));
        assert_eq!(fed.node(producer_node).unwrap().open_remote_cursors(), 0);
        assert_eq!(fed.node(client_node).unwrap().pending_remote_queries(), 0);
        assert!(fed
            .node_mut(client_node)
            .unwrap()
            .take_remote_query_result(stalled)
            .is_none());

        // Cancellation removes a tracked request immediately.
        fed.network().heal_partition(client_node, producer_node);
        let cancelled = fed
            .node_mut(client_node)
            .unwrap()
            .remote_query(producer_node, "select 1 from room_bc143_temperature", 4)
            .unwrap();
        assert!(fed
            .node_mut(client_node)
            .unwrap()
            .cancel_remote_query(cancelled));
        assert!(!fed
            .node_mut(client_node)
            .unwrap()
            .cancel_remote_query(cancelled));
        assert_eq!(fed.node(client_node).unwrap().pending_remote_queries(), 0);
    }

    #[test]
    fn consumer_without_matching_producer_fails_to_deploy() {
        let mut fed = Federation::new();
        let node = fed.add_node("lonely").unwrap();
        let err = fed
            .node_mut(node)
            .unwrap()
            .deploy(consumer_descriptor())
            .unwrap_err();
        assert_eq!(err.category(), "not-found");
    }

    #[test]
    fn partition_buffers_then_recovers() {
        let mut fed = Federation::new();
        let producer_node = fed.add_node("producer").unwrap();
        let consumer_node = fed.add_node("consumer").unwrap();
        fed.node_mut(producer_node)
            .unwrap()
            .deploy(producer_descriptor())
            .unwrap();
        fed.node_mut(consumer_node)
            .unwrap()
            .deploy(consumer_descriptor())
            .unwrap();
        // Let the subscription get established.
        fed.run_for(Duration::from_millis(300), Duration::from_millis(100));

        fed.network().partition(producer_node, consumer_node);
        fed.run_for(Duration::from_secs(1), Duration::from_millis(100));
        let consumer_count_during = fed
            .node_mut(consumer_node)
            .unwrap()
            .query("select count(*) from averaged_bc143")
            .unwrap()
            .rows()[0][0]
            .as_integer()
            .unwrap();

        fed.network().heal_partition(producer_node, consumer_node);
        fed.run_for(Duration::from_secs(1), Duration::from_millis(100));
        let consumer_count_after = fed
            .node_mut(consumer_node)
            .unwrap()
            .query("select count(*) from averaged_bc143")
            .unwrap()
            .rows()[0][0]
            .as_integer()
            .unwrap();
        assert!(
            consumer_count_after > consumer_count_during,
            "delivery should resume after the partition heals ({consumer_count_during} -> {consumer_count_after})"
        );
        // The producer buffered (and possibly dropped) elements while partitioned.
        let producer_status = fed.node(producer_node).unwrap().status();
        assert!(
            producer_status.notifications.remote_buffered > 0,
            "disconnect buffer should have been used"
        );
    }

    fn local_count(container: &mut GsnContainer) -> i64 {
        container
            .query("select count(*) as n from room_bc143_temperature")
            .unwrap()
            .rows()[0][0]
            .as_integer()
            .unwrap()
    }

    #[test]
    fn mesh_gossip_replicates_directory_for_remote_deploys() {
        let mut mesh = Mesh::new();
        let a = mesh.add_node("node-a").unwrap();
        let b = mesh.add_node("node-b").unwrap();
        let c = mesh.add_node("node-c").unwrap();
        assert_eq!(mesh.node_ids(), vec![a, b, c]);
        for node in [a, b, c] {
            assert_eq!(mesh.node(node).unwrap().ring_members(), vec![a, b, c]);
            assert!(mesh.node(node).unwrap().mesh_enabled());
        }

        mesh.node_mut(a)
            .unwrap()
            .deploy(producer_descriptor())
            .unwrap();
        // The consumer cannot deploy before gossip has replicated the producer's entry.
        let err = mesh
            .node_mut(c)
            .unwrap()
            .deploy(consumer_descriptor())
            .unwrap_err();
        assert_eq!(err.category(), "not-found");

        mesh.run_for(Duration::from_secs(1), Duration::from_millis(100));
        assert!(mesh.replicas_converged(), "gossip did not converge");
        assert_eq!(
            mesh.node(c)
                .unwrap()
                .replica_lookup(&[("location".into(), "bc143".into())])
                .len(),
            1
        );
        // Now the remote stream source resolves from c's local replica — no central
        // directory exists anywhere in this test.
        mesh.node_mut(c)
            .unwrap()
            .deploy(consumer_descriptor())
            .unwrap();
        mesh.run_for(Duration::from_secs(2), Duration::from_millis(100));
        let rel = mesh
            .node_mut(c)
            .unwrap()
            .query("select count(*) as n from averaged_bc143")
            .unwrap();
        assert!(rel.rows()[0][0].as_integer().unwrap() > 0);
        assert!(mesh.network().sent_of_kind("gossip-digest") > 0);
        assert!(mesh.network().sent_of_kind("gossip-delta") > 0);
    }

    #[test]
    fn mesh_partial_aggregate_ships_no_row_batches() {
        let mut mesh = Mesh::new();
        let a = mesh.add_node("node-a").unwrap();
        let b = mesh.add_node("node-b").unwrap();
        let c = mesh.add_node("node-c").unwrap();
        // Every node hosts a shard of the same logical table.
        for node in [a, b, c] {
            mesh.node_mut(node)
                .unwrap()
                .deploy(producer_descriptor())
                .unwrap();
        }
        mesh.run_for(Duration::from_secs(2), Duration::from_millis(100));
        assert!(mesh.replicas_converged());

        let before: i64 = [a, b, c]
            .iter()
            .map(|n| local_count(mesh.node_mut(*n).unwrap()))
            .sum();
        let rel = mesh
            .federated_query(
                a,
                "select count(*) as n, avg(temperature) as t from room_bc143_temperature",
                Duration::from_millis(100),
                50,
            )
            .unwrap();
        let after: i64 = [a, b, c]
            .iter()
            .map(|n| local_count(mesh.node_mut(*n).unwrap()))
            .sum();
        let n = rel.rows()[0][0].as_integer().unwrap();
        // Producers keep producing while the scatter runs, so the federated count sits
        // between the pre-issue and post-completion totals.
        assert!(
            (before..=after).contains(&n),
            "federated count {n} outside [{before}, {after}]"
        );
        let t = rel.rows()[0][1].as_double().unwrap();
        assert!((10.0..=40.0).contains(&t), "implausible avg {t}");
        // The whole aggregate travelled as partial-aggregate frames: not one row batch.
        assert_eq!(mesh.network().sent_of_kind("query-batch"), 0);
        assert!(mesh.network().sent_of_kind("partial-aggregate-request") >= 2);
        assert!(mesh.network().sent_of_kind("partial-aggregate-reply") >= 2);
    }

    #[test]
    fn mesh_row_ship_fallback_unions_rows() {
        let mut mesh = Mesh::new();
        let a = mesh.add_node("node-a").unwrap();
        let b = mesh.add_node("node-b").unwrap();
        for node in [a, b] {
            mesh.node_mut(node)
                .unwrap()
                .deploy(producer_descriptor())
                .unwrap();
        }
        mesh.run_for(Duration::from_secs(2), Duration::from_millis(100));

        let before: i64 = [a, b]
            .iter()
            .map(|n| local_count(mesh.node_mut(*n).unwrap()))
            .sum();
        // A plain projection is not decomposable: the coordinator falls back to
        // shipping each host's rows and evaluating the SQL over the union.
        let rel = mesh
            .federated_query(
                b,
                "select temperature from room_bc143_temperature where temperature >= 0",
                Duration::from_millis(100),
                50,
            )
            .unwrap();
        let after: i64 = [a, b]
            .iter()
            .map(|n| local_count(mesh.node_mut(*n).unwrap()))
            .sum();
        let rows = rel.row_count() as i64;
        assert!(
            (before..=after).contains(&rows),
            "union row count {rows} outside [{before}, {after}]"
        );
        assert!(mesh.network().sent_of_kind("query-batch") > 0);
    }

    #[test]
    fn mesh_node_leave_keeps_federation_queryable() {
        let mut mesh = Mesh::new();
        let a = mesh.add_node("node-a").unwrap();
        let b = mesh.add_node("node-b").unwrap();
        let c = mesh.add_node("node-c").unwrap();
        for node in [a, b, c] {
            mesh.node_mut(node)
                .unwrap()
                .deploy(producer_descriptor())
                .unwrap();
        }
        mesh.run_for(Duration::from_secs(1), Duration::from_millis(100));
        assert!(mesh.replicas_converged());

        // Node b leaves gracefully: its entries are tombstoned, the ring shrinks.
        mesh.remove_node(b).unwrap();
        mesh.run_for(Duration::from_secs(1), Duration::from_millis(100));
        assert_eq!(mesh.node_ids(), vec![a, c]);
        assert!(mesh.replicas_converged());
        for node in [a, c] {
            assert_eq!(mesh.node(node).unwrap().ring_members(), vec![a, c]);
            assert_eq!(
                mesh.node(node)
                    .unwrap()
                    .replica_lookup(&[("location".into(), "bc143".into())])
                    .iter()
                    .filter(|e| e.node == b)
                    .count(),
                0,
                "departed node's entries must be tombstoned"
            );
        }
        // A federated aggregate still completes from the two survivors.
        let rel = mesh
            .federated_query(
                c,
                "select count(*) as n from room_bc143_temperature",
                Duration::from_millis(100),
                50,
            )
            .unwrap();
        assert!(rel.rows()[0][0].as_integer().unwrap() > 0);
    }

    #[test]
    fn prefetch_remote_query_matches_plain_result() {
        let mut fed = Federation::new();
        let producer_node = fed.add_node("producer").unwrap();
        let client_node = fed.add_node("client").unwrap();
        fed.set_link(producer_node, client_node, LinkSpec::lan());
        fed.node_mut(producer_node)
            .unwrap()
            .deploy(producer_descriptor())
            .unwrap();
        fed.run_for(Duration::from_secs(2), Duration::from_millis(100));

        let sql = "select pk, temperature from room_bc143_temperature where pk <= 20";
        let request = fed
            .node_mut(client_node)
            .unwrap()
            .remote_query_prefetch(producer_node, sql, 4)
            .unwrap();
        let mut prefetched = None;
        for _ in 0..50 {
            fed.step(Duration::from_millis(10));
            if let Some(r) = fed
                .node_mut(client_node)
                .unwrap()
                .take_remote_query_result(request)
            {
                prefetched = Some(r.unwrap());
                break;
            }
        }
        let prefetched = prefetched.expect("prefetch query never completed");
        assert_eq!(prefetched.relation.row_count(), 20);
        assert!(prefetched.batches > 1);
        // The client acked only every PREFETCH_ACK_EVERY batches; the skipped acks are
        // the prefetch hits.
        assert!(
            fed.node(client_node)
                .unwrap()
                .metrics_snapshot()
                .get("gsn_federation_prefetch_hits_total")
                .and_then(|s| s.as_counter())
                .unwrap_or(0)
                > 0
        );
        assert_eq!(fed.node(producer_node).unwrap().open_remote_cursors(), 0);

        let request = fed
            .node_mut(client_node)
            .unwrap()
            .remote_query(producer_node, sql, 4)
            .unwrap();
        let mut plain = None;
        for _ in 0..50 {
            fed.step(Duration::from_millis(10));
            if let Some(r) = fed
                .node_mut(client_node)
                .unwrap()
                .take_remote_query_result(request)
            {
                plain = Some(r.unwrap());
                break;
            }
        }
        let plain = plain.expect("plain query never completed");
        assert_eq!(
            plain.relation.rows(),
            prefetched.relation.rows(),
            "prefetch must not change results"
        );
    }

    #[test]
    fn prefetch_remote_query_survives_a_lossy_link() {
        let mut fed = Federation::new();
        let producer_node = fed.add_node("producer").unwrap();
        let client_node = fed.add_node("client").unwrap();
        fed.set_link(producer_node, client_node, LinkSpec::wireless(5, 0.3));
        fed.node_mut(producer_node)
            .unwrap()
            .deploy(producer_descriptor())
            .unwrap();
        fed.run_for(Duration::from_secs(2), Duration::from_millis(100));

        let request = fed
            .node_mut(client_node)
            .unwrap()
            .remote_query_prefetch(
                producer_node,
                "select pk from room_bc143_temperature where pk <= 20",
                2,
            )
            .unwrap();
        let mut result = None;
        for _ in 0..400 {
            fed.step(Duration::from_millis(500));
            if let Some(r) = fed
                .node_mut(client_node)
                .unwrap()
                .take_remote_query_result(request)
            {
                result = Some(r.unwrap());
                break;
            }
        }
        let result = result.expect("prefetch query never completed over the lossy link");
        let pks: Vec<i64> = result
            .relation
            .rows()
            .iter()
            .map(|r| r[0].as_integer().unwrap())
            .collect();
        let expected: Vec<i64> = (1..=20).collect();
        assert_eq!(pks, expected, "gaps or duplicates after retransmission");
        assert!(fed.network().stats().dropped > 0);
    }

    #[test]
    fn multiple_producers_same_metadata_resolve_deterministically() {
        let mut fed = Federation::new();
        let a = fed.add_node("a").unwrap();
        let b = fed.add_node("b").unwrap();
        let c = fed.add_node("c").unwrap();
        fed.node_mut(a)
            .unwrap()
            .deploy(producer_descriptor())
            .unwrap();
        // Node b publishes a different sensor with the same metadata.
        let mut alt = producer_descriptor();
        alt.name = gsn_types::VirtualSensorName::new("room-bc143-temperature-backup").unwrap();
        fed.node_mut(b).unwrap().deploy(alt).unwrap();
        // The consumer resolves to the deterministic first match (lowest node id).
        fed.node_mut(c)
            .unwrap()
            .deploy(consumer_descriptor())
            .unwrap();
        let report = fed.run_for(Duration::from_secs(1), Duration::from_millis(100));
        assert!(report.outputs > 0);
        let rel = fed
            .node_mut(c)
            .unwrap()
            .query("select count(*) from averaged_bc143")
            .unwrap();
        assert!(rel.rows()[0][0].as_integer().unwrap() > 0);
    }
}
