//! Container configuration.
//!
//! GSN aims at a "light-weight implementation (small memory foot-print, low hardware and
//! bandwidth requirements)" (paper, Section 1): a container is configured with a handful
//! of knobs rather than a heavyweight deployment descriptor of its own.

use std::path::PathBuf;
use std::sync::Arc;

use gsn_storage::{PersistentOptions, StorageOptions, SyncMode};
use gsn_types::{Clock, NodeId, SystemClock};

/// Configuration of one GSN container.
#[derive(Debug, Clone)]
pub struct ContainerConfig {
    /// The node identity used in the peer-to-peer overlay.
    pub node_id: NodeId,
    /// Human-readable container name (used in status reports and directory metadata).
    pub name: String,
    /// Default worker pool size for virtual sensors whose descriptor omits
    /// `<life-cycle pool-size="...">`.
    pub default_pool_size: usize,
    /// Worker threads for the container's sharded step loop.  `1` (the default) keeps
    /// the seed's sequential semantics: every sensor pipeline runs inline on the caller
    /// in deterministic name order.  `N > 1` shards the sensors across an `N`-thread
    /// [`crate::WorkerPool`] by name hash; per-sensor processing order (and therefore
    /// per-sensor output) is unchanged, only independent sensors overlap in time.
    pub workers: usize,
    /// Maximum number of virtual sensors this container will host (resource guard).
    pub max_virtual_sensors: usize,
    /// Capacity of the per-remote-subscriber disconnect buffer: how many output elements
    /// are retained for a subscriber that is temporarily unreachable.
    pub disconnect_buffer_capacity: usize,
    /// Whether queries submitted by clients are cached as prepared plans.
    pub query_cache_enabled: bool,
    /// Incremental (delta-window) evaluation of registered continuous queries.  On by
    /// default: queries whose plan the incremental executor can maintain are evaluated
    /// against only the rows that arrived since their previous evaluation, instead of
    /// re-executing the full history window per stream element.  Turn off to force
    /// full re-evaluation everywhere (ablation / parity-testing knob).
    pub incremental_queries: bool,
    /// Directory for persistent storage. When set, virtual sensors with
    /// `permanent-storage="true"` (or `backend="disk"`) keep their output history in
    /// page files here and recover it when a container re-opens the same directory.
    /// `None` keeps every table in memory (the seed behaviour).
    pub data_dir: Option<PathBuf>,
    /// Container-wide buffer-pool page budget shared by every persistent table
    /// (resident memory ≈ pages × 8 KiB, cross-table eviction).
    pub storage_pool_pages: usize,
    /// Clock regions the shared buffer pool is split into (pages stripe across regions
    /// by hash; concurrent scans of different pages lock different regions).  `0` (the
    /// default) lets the pool pick — currently 8, clamped to the page budget.
    pub storage_pool_regions: usize,
    /// Write-ahead-log durability mode for persistent tables.
    pub wal_sync: SyncMode,
    /// Group commit for [`SyncMode::Always`]: defer WAL fsyncs to one batched fsync per
    /// container step instead of one per insert.  On by default — the container commits
    /// at every step boundary, so durability moves from per-insert to per-step.
    pub wal_group_commit: bool,
    /// Pages per heap segment for persistent tables (fixed-capacity segment files are
    /// what lets the retention pass reclaim disk space).  The default is ≈1 MiB per
    /// segment.
    pub storage_segment_pages: u32,
    /// Run the storage maintenance pass (retention reclamation: head-segment deletion
    /// and boundary compaction) every this many steps, scheduled onto the worker pool
    /// when the step loop is sharded.  `0` disables maintenance.
    pub maintenance_interval_steps: u64,
    /// Resident-memory budget for source windows: when set (and `data_dir` is
    /// configured), a memory-backed window whose payload bytes exceed this budget
    /// transparently spills its cold prefix to a persistent segment store — very large
    /// time windows (`storage-size="30d"`) then query in bounded memory through the
    /// shared buffer pool.  `None` keeps windows fully resident (the seed behaviour).
    pub window_spill_bytes: Option<usize>,
    /// Structured tracing of pipeline spans.  Off by default: span begin/finish then
    /// costs one relaxed atomic load and allocates nothing.
    pub trace_enabled: bool,
    /// Ring-buffer capacity of the trace log (oldest spans overwritten first).
    pub trace_capacity: usize,
    /// Queries slower than this land in the slow-query log with their plan explain.
    /// `0` (the default) disables the log entirely — the observe path allocates
    /// nothing.
    pub slow_query_threshold_micros: u64,
    /// Thresholds of the mesh health model (evaluated on gossip rounds and
    /// gossiped to peers; standalone containers never evaluate them).
    pub health_thresholds: gsn_telemetry::HealthThresholds,
}

impl Default for ContainerConfig {
    fn default() -> Self {
        ContainerConfig {
            node_id: NodeId::LOCAL,
            name: "gsn-node".to_owned(),
            default_pool_size: 1,
            workers: 1,
            max_virtual_sensors: 1_024,
            disconnect_buffer_capacity: 64,
            query_cache_enabled: true,
            incremental_queries: true,
            data_dir: None,
            storage_pool_pages: 4 * PersistentOptions::default().pool_pages,
            storage_pool_regions: 0,
            wal_sync: SyncMode::default(),
            wal_group_commit: true,
            storage_segment_pages: PersistentOptions::default().segment_pages,
            maintenance_interval_steps: 8,
            window_spill_bytes: None,
            trace_enabled: false,
            trace_capacity: gsn_telemetry::DEFAULT_TRACE_CAPACITY,
            slow_query_threshold_micros: 0,
            health_thresholds: gsn_telemetry::HealthThresholds::default(),
        }
    }
}

impl ContainerConfig {
    /// A configuration for a named node.
    pub fn named(node_id: NodeId, name: &str) -> ContainerConfig {
        ContainerConfig {
            node_id,
            name: name.to_owned(),
            ..Default::default()
        }
    }

    /// Enables persistent storage under `data_dir`.
    pub fn with_data_dir(mut self, data_dir: impl Into<PathBuf>) -> ContainerConfig {
        self.data_dir = Some(data_dir.into());
        self
    }

    /// Sets the number of step-loop worker threads.
    pub fn with_workers(mut self, workers: usize) -> ContainerConfig {
        self.workers = workers.max(1);
        self
    }

    /// Enables disk spilling for source windows with the given resident budget
    /// (requires a data directory to take effect).
    pub fn with_window_spill(mut self, budget_bytes: usize) -> ContainerConfig {
        self.window_spill_bytes = Some(budget_bytes);
        self
    }

    /// Enables (or disables) structured tracing of pipeline spans.
    pub fn with_tracing(mut self, enabled: bool) -> ContainerConfig {
        self.trace_enabled = enabled;
        self
    }

    /// Logs queries slower than `micros` with their plan explain (`0` disables).
    pub fn with_slow_query_threshold(mut self, micros: u64) -> ContainerConfig {
        self.slow_query_threshold_micros = micros;
        self
    }

    /// Overrides the mesh health-model thresholds.
    pub fn with_health_thresholds(
        mut self,
        thresholds: gsn_telemetry::HealthThresholds,
    ) -> ContainerConfig {
        self.health_thresholds = thresholds;
        self
    }

    /// The storage-layer options derived from this configuration.
    pub fn storage_options(&self) -> StorageOptions {
        StorageOptions {
            data_dir: self.data_dir.clone(),
            persistent: PersistentOptions {
                pool_pages: self.storage_pool_pages,
                pool_regions: self.storage_pool_regions,
                sync: self.wal_sync,
                group_commit: self.wal_group_commit,
                segment_pages: self.storage_segment_pages,
                ..PersistentOptions::default()
            },
            window_spill_bytes: self.window_spill_bytes,
            // One shared WAL shard per step-loop worker: the worker that runs a
            // sensor's pipeline is the only appender to that sensor's shard (both use
            // the same name hash), and the per-step commit fsyncs once per active
            // shard instead of once per durable table.
            wal_shards: self.workers,
        }
    }
}

/// The clock a container runs on: wall-clock for live deployments, simulated for tests
/// and benchmark harnesses.
pub type SharedClock = Arc<dyn Clock>;

/// The default wall clock.
pub fn system_clock() -> SharedClock {
    Arc::new(SystemClock::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsn_types::SimulatedClock;

    #[test]
    fn defaults_are_sensible() {
        let c = ContainerConfig::default();
        assert_eq!(c.node_id, NodeId::LOCAL);
        assert_eq!(c.default_pool_size, 1);
        assert_eq!(c.workers, 1);
        assert!(c.wal_group_commit);
        assert!(c.max_virtual_sensors >= 1);
        assert!(c.query_cache_enabled);
        assert!(c.disconnect_buffer_capacity > 0);
        assert_eq!(ContainerConfig::default().with_workers(0).workers, 1);
        assert_eq!(ContainerConfig::default().with_workers(8).workers, 8);
    }

    #[test]
    fn named_sets_identity() {
        let c = ContainerConfig::named(NodeId::new(7), "camera-node");
        assert_eq!(c.node_id, NodeId::new(7));
        assert_eq!(c.name, "camera-node");
    }

    #[test]
    fn clocks_are_pluggable() {
        let wall = system_clock();
        assert!(wall.now().as_millis() > 0);
        let sim: SharedClock = Arc::new(SimulatedClock::new());
        assert_eq!(sim.now(), gsn_types::Timestamp::EPOCH);
    }
}
