//! The query manager: ad-hoc queries, the query repository of registered client queries,
//! and their evaluation against the live storage.
//!
//! "Query processing is done by the query manager (QM) which includes the query processor
//! being in charge of SQL parsing, query planning, and execution of queries [...].  The
//! query repository manages all registered queries (subscriptions) and defines and
//! maintains the set of currently active queries for the query processor" (paper,
//! Section 4).
//!
//! Registered client queries are the workload of the paper's Figure 4 experiment: N
//! clients each register a filtering query over a virtual sensor's output; every new
//! output element causes all affected queries to be (re-)executed and their results
//! delivered.

use std::collections::HashMap;

use gsn_sql::{OptimizerConfig, PreparedQuery, Relation, SqlEngine};
use gsn_storage::{CatalogView, LiveCatalog, StorageManager, WindowSpec};
use gsn_types::{GsnError, GsnResult, Timestamp};

/// Identifies a registered client query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClientQueryId(pub u64);

/// A query registered by a client (subscription-style continuous query).
#[derive(Debug, Clone)]
pub struct ClientQuery {
    /// The query id.
    pub id: ClientQueryId,
    /// The registering client's name (used for notification routing and status).
    pub client: String,
    /// The SQL text.
    pub sql: String,
    /// The compiled plan.
    prepared: PreparedQuery,
    /// The history window applied to each virtual sensor output table the query reads.
    pub history: WindowSpec,
    /// Optional uniform sampling applied to the history before evaluation.
    pub sampling_rate: Option<f64>,
}

impl ClientQuery {
    /// The virtual sensor output tables the query reads.
    pub fn referenced_tables(&self) -> &[String] {
        self.prepared.referenced_tables()
    }
}

/// One result of evaluating a registered query.
#[derive(Debug, Clone)]
pub struct ClientQueryResult {
    /// The query that produced the result.
    pub query_id: ClientQueryId,
    /// The registering client.
    pub client: String,
    /// The result relation.
    pub relation: Relation,
    /// When the evaluation happened.
    pub evaluated_at: Timestamp,
}

/// Statistics of the query manager.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryManagerStats {
    /// Ad-hoc queries executed.
    pub adhoc_executed: u64,
    /// Registered-query evaluations performed.
    pub registered_evaluated: u64,
    /// Registered-query evaluations that failed.
    pub registered_failed: u64,
}

/// The query manager of one container.
#[derive(Debug)]
pub struct QueryManager {
    engine: SqlEngine,
    repository: HashMap<ClientQueryId, ClientQuery>,
    /// Index from output-table name to the queries that read it.
    by_table: HashMap<String, Vec<ClientQueryId>>,
    next_id: u64,
    stats: QueryManagerStats,
}

impl QueryManager {
    /// Creates a query manager.
    pub fn new(cache_enabled: bool) -> QueryManager {
        let mut engine = SqlEngine::with_optimizer(OptimizerConfig::default());
        engine.set_cache_enabled(cache_enabled);
        QueryManager {
            engine,
            repository: HashMap::new(),
            by_table: HashMap::new(),
            next_id: 1,
            stats: QueryManagerStats::default(),
        }
    }

    /// Executes an ad-hoc (one-shot) query against the live storage, seeing the full
    /// retained history of every table.
    pub fn execute_adhoc(
        &mut self,
        sql: &str,
        storage: &StorageManager,
        now: Timestamp,
    ) -> GsnResult<Relation> {
        self.stats.adhoc_executed += 1;
        let catalog = LiveCatalog::new(storage, Vec::new(), now);
        self.engine.execute(sql, &catalog)
    }

    /// Registers a continuous client query.
    ///
    /// `history` bounds how much of each referenced table the query sees on every
    /// evaluation; `sampling_rate` optionally thins that history (both map directly to the
    /// random-query workload of the paper's Figure 4 experiment).
    pub fn register(
        &mut self,
        client: &str,
        sql: &str,
        history: WindowSpec,
        sampling_rate: Option<f64>,
    ) -> GsnResult<ClientQueryId> {
        let prepared = self.engine.prepare(sql)?;
        if prepared.referenced_tables().is_empty() {
            return Err(GsnError::sql_parse(
                "a registered query must read from at least one virtual sensor",
            ));
        }
        if let Some(rate) = sampling_rate {
            if !(rate > 0.0 && rate <= 1.0) {
                return Err(GsnError::config(format!(
                    "sampling rate must be in (0, 1], got {rate}"
                )));
            }
        }
        let id = ClientQueryId(self.next_id);
        self.next_id += 1;
        for table in prepared.referenced_tables() {
            self.by_table.entry(table.clone()).or_default().push(id);
        }
        self.repository.insert(
            id,
            ClientQuery {
                id,
                client: client.to_owned(),
                sql: sql.to_owned(),
                prepared,
                history,
                sampling_rate,
            },
        );
        Ok(id)
    }

    /// Removes a registered query.
    pub fn deregister(&mut self, id: ClientQueryId) -> GsnResult<()> {
        let removed = self
            .repository
            .remove(&id)
            .ok_or_else(|| GsnError::not_found(format!("no registered query {id:?}")))?;
        for table in removed.referenced_tables() {
            if let Some(ids) = self.by_table.get_mut(table) {
                ids.retain(|q| *q != id);
                if ids.is_empty() {
                    self.by_table.remove(table);
                }
            }
        }
        Ok(())
    }

    /// The registered queries, ordered by id.
    pub fn registered(&self) -> Vec<&ClientQuery> {
        let mut all: Vec<&ClientQuery> = self.repository.values().collect();
        all.sort_by_key(|q| q.id);
        all
    }

    /// Number of registered queries.
    pub fn registered_count(&self) -> usize {
        self.repository.len()
    }

    /// The registered queries that read `table`.
    pub fn queries_for_table(&self, table: &str) -> Vec<ClientQueryId> {
        self.by_table
            .get(&table.to_ascii_lowercase())
            .cloned()
            .unwrap_or_default()
    }

    /// Evaluates every registered query affected by a new element in `table`, returning
    /// the per-query results (failed evaluations are skipped and counted).
    ///
    /// This is the inner loop of the Figure 4 experiment: its cost for N registered
    /// clients is what the paper reports as "total processing time for the set of clients".
    pub fn evaluate_for_table(
        &mut self,
        table: &str,
        storage: &StorageManager,
        now: Timestamp,
    ) -> Vec<ClientQueryResult> {
        let ids = self.queries_for_table(table);
        let mut results = Vec::with_capacity(ids.len());
        for id in ids {
            let Some(query) = self.repository.get(&id) else {
                continue;
            };
            // Build a catalog exposing each referenced table through the query's history
            // window and sampling rate.
            let views: Vec<CatalogView> = query
                .referenced_tables()
                .iter()
                .map(|t| {
                    let mut view = CatalogView::new(t, t, query.history);
                    if let Some(rate) = query.sampling_rate {
                        view = view.with_sampling(rate);
                    }
                    view
                })
                .collect();
            let catalog = LiveCatalog::new(storage, views, now);
            let prepared = query.prepared.clone();
            let client = query.client.clone();
            match self.engine.execute_prepared(&prepared, &catalog) {
                Ok(relation) => {
                    self.stats.registered_evaluated += 1;
                    results.push(ClientQueryResult {
                        query_id: id,
                        client,
                        relation,
                        evaluated_at: now,
                    });
                }
                Err(_) => {
                    self.stats.registered_failed += 1;
                }
            }
        }
        results
    }

    /// Compiles a query (hitting the prepared cache) without executing it — the entry
    /// point for the container's cursor API, which opens the plan itself.
    pub fn prepare(&mut self, sql: &str) -> GsnResult<PreparedQuery> {
        self.engine.prepare(sql)
    }

    /// Folds a finished container cursor's row counters into the engine statistics
    /// (streaming executions count like materialised ones).
    pub fn record_cursor(&mut self, rows_scanned: u64, rows_returned: u64) {
        self.engine.record_cursor(rows_scanned, rows_returned);
    }

    /// Compiles a query without registering or executing it (used for EXPLAIN-style
    /// inspection through the container API).
    pub fn explain(&mut self, sql: &str) -> GsnResult<String> {
        Ok(self.engine.prepare(sql)?.explain())
    }

    /// Query manager statistics (including the SQL engine's compile/cache counters).
    pub fn stats(&self) -> (QueryManagerStats, gsn_sql::EngineStats) {
        (self.stats, self.engine.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsn_storage::Retention;
    use gsn_types::{DataType, StreamElement, StreamSchema, Value};
    use std::sync::Arc;

    fn storage_with_output() -> StorageManager {
        let storage = StorageManager::new();
        let schema = Arc::new(
            StreamSchema::from_pairs(&[
                ("temperature", DataType::Integer),
                ("room", DataType::Varchar),
            ])
            .unwrap(),
        );
        storage
            .create_table("room_temp", schema.clone(), Retention::Unbounded)
            .unwrap();
        for i in 0..20 {
            let e = StreamElement::new(
                schema.clone(),
                vec![
                    Value::Integer(15 + i),
                    Value::varchar(if i % 2 == 0 { "bc143" } else { "bc144" }),
                ],
                Timestamp(i * 100),
            )
            .unwrap();
            storage.insert("room_temp", e, Timestamp(i * 100)).unwrap();
        }
        storage
    }

    #[test]
    fn adhoc_queries_see_full_history() {
        let storage = storage_with_output();
        let mut qm = QueryManager::new(true);
        let rel = qm
            .execute_adhoc("select count(*) from room_temp", &storage, Timestamp(2_000))
            .unwrap();
        assert_eq!(rel.rows()[0][0], Value::Integer(20));
        assert_eq!(qm.stats().0.adhoc_executed, 1);
    }

    #[test]
    fn register_evaluate_and_deregister() {
        let storage = storage_with_output();
        let mut qm = QueryManager::new(true);
        let hot = qm
            .register(
                "client-1",
                "select temperature from room_temp where temperature > 30",
                WindowSpec::Count(100),
                None,
            )
            .unwrap();
        let avg = qm
            .register(
                "client-2",
                "select avg(temperature) from room_temp",
                WindowSpec::Time(gsn_types::Duration::from_secs(1)),
                None,
            )
            .unwrap();
        assert_eq!(qm.registered_count(), 2);
        assert_eq!(qm.queries_for_table("room_temp").len(), 2);
        assert_eq!(qm.queries_for_table("other").len(), 0);

        let results = qm.evaluate_for_table("room_temp", &storage, Timestamp(1_900));
        assert_eq!(results.len(), 2);
        let hot_result = results.iter().find(|r| r.query_id == hot).unwrap();
        assert_eq!(hot_result.client, "client-1");
        assert_eq!(hot_result.relation.row_count(), 4); // 31..34
        let avg_result = results.iter().find(|r| r.query_id == avg).unwrap();
        // Time window of 1s at t=1900 covers timestamps 900..1900 => temperatures 24..34.
        assert_eq!(avg_result.relation.rows()[0][0], Value::Double(29.0));

        qm.deregister(hot).unwrap();
        assert!(qm.deregister(hot).is_err());
        assert_eq!(qm.registered_count(), 1);
        assert_eq!(qm.queries_for_table("room_temp").len(), 1);
        assert_eq!(qm.registered()[0].id, avg);
    }

    #[test]
    fn sampling_thins_the_history() {
        let storage = storage_with_output();
        let mut qm = QueryManager::new(true);
        qm.register(
            "sampler",
            "select count(*) as n from room_temp",
            WindowSpec::Count(20),
            Some(0.5),
        )
        .unwrap();
        let results = qm.evaluate_for_table("room_temp", &storage, Timestamp(2_000));
        assert_eq!(results[0].relation.rows()[0][0], Value::Integer(10));
    }

    #[test]
    fn invalid_registrations_are_rejected() {
        let mut qm = QueryManager::new(true);
        assert!(qm
            .register("c", "select 1", WindowSpec::Count(1), None)
            .is_err());
        assert!(qm
            .register("c", "not sql at all", WindowSpec::Count(1), None)
            .is_err());
        assert!(qm
            .register("c", "select * from t", WindowSpec::Count(1), Some(0.0))
            .is_err());
        assert!(qm
            .register("c", "select * from t", WindowSpec::Count(1), Some(1.5))
            .is_err());
        assert_eq!(qm.registered_count(), 0);
    }

    #[test]
    fn failing_registered_queries_are_counted_not_fatal() {
        let storage = storage_with_output();
        let mut qm = QueryManager::new(true);
        // References a column that does not exist: registration succeeds (the table is
        // known only at run time) but evaluation fails.
        qm.register(
            "broken-client",
            "select nonexistent_column from room_temp",
            WindowSpec::Count(10),
            None,
        )
        .unwrap();
        qm.register(
            "ok-client",
            "select count(*) from room_temp",
            WindowSpec::Count(10),
            None,
        )
        .unwrap();
        let results = qm.evaluate_for_table("room_temp", &storage, Timestamp(2_000));
        assert_eq!(results.len(), 1);
        let (stats, _) = qm.stats();
        assert_eq!(stats.registered_evaluated, 1);
        assert_eq!(stats.registered_failed, 1);
    }

    #[test]
    fn prepared_query_cache_is_shared_across_clients() {
        let mut qm = QueryManager::new(true);
        let sql = "select avg(temperature) from room_temp";
        for i in 0..50 {
            qm.register(&format!("client-{i}"), sql, WindowSpec::Count(10), None)
                .unwrap();
        }
        let (_, engine_stats) = qm.stats();
        assert_eq!(engine_stats.compiled, 1);
        assert_eq!(engine_stats.cache_hits, 49);

        let mut uncached = QueryManager::new(false);
        for i in 0..10 {
            uncached
                .register(&format!("client-{i}"), sql, WindowSpec::Count(10), None)
                .unwrap();
        }
        assert_eq!(uncached.stats().1.compiled, 10);
    }

    #[test]
    fn explain_renders_plans() {
        let mut qm = QueryManager::new(true);
        let plan = qm
            .explain("select avg(temperature) from room_temp where room = 'bc143'")
            .unwrap();
        assert!(plan.contains("Aggregate"));
        assert!(plan.contains("Scan room_temp"));
        assert!(qm.explain("garbage").is_err());
    }
}
