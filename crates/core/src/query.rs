//! The query repository: ad-hoc queries, registered client queries, and their
//! evaluation against the live storage.
//!
//! "Query processing is done by the query manager (QM) which includes the query processor
//! being in charge of SQL parsing, query planning, and execution of queries [...].  The
//! query repository manages all registered queries (subscriptions) and defines and
//! maintains the set of currently active queries for the query processor" (paper,
//! Section 4).
//!
//! Registered client queries are the workload of the paper's Figure 4 experiment: N
//! clients each register a filtering query over a virtual sensor's output; every new
//! output element causes all affected queries to be (re-)executed and their results
//! delivered.  Two design decisions keep that inner loop off the container's critical
//! path:
//!
//! * **Incremental evaluation.**  Each registered query caches its catalog views at
//!   registration time and, when the plan shape allows it, holds a resident
//!   [`ContinuousPlan`]: per element, only the *delta* rows since the query's last-seen
//!   storage sequence are read (through the storage layer's delta cursor) and folded
//!   into running operator state, with window-slide retraction on the other end.  Plans
//!   the incremental executor cannot maintain (joins, sorts, `DISTINCT`, subqueries, …)
//!   fall back transparently to full re-evaluation over the live catalog.  Per-element
//!   cost drops from `O(window × queries)` to `O(delta × affected-queries)`.
//! * **A sharded repository.**  Queries live in partitions keyed by the same stable
//!   FNV hash (of the normalised table name) that assigns sensors to step-loop worker
//!   shards, so each worker evaluates its own sensors' registered queries under its own
//!   partition lock — no cross-shard serialisation on the hot path.  A query reading
//!   several tables is pinned to its first table's partition and is the only case where
//!   another shard's output must take a foreign partition lock.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use gsn_sql::{
    ContinuousPlan, EngineStats, OptimizerConfig, PreparedQuery, Relation, SqlEngine, WindowBound,
};
use gsn_storage::{
    sampling_stride, CatalogView, LiveCatalog, ScanBounds, StorageManager, StreamTable, WindowSpec,
};
use gsn_telemetry::{SlowQuery, SlowQueryLog, Stopwatch};
use gsn_types::{EpochCell, GsnError, GsnResult, StreamElement, Timestamp};
use parking_lot::{Mutex, RwLock};

use crate::telemetry::QueryTelemetry;

/// Identifies a registered client query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClientQueryId(pub u64);

/// Stable shard assignment shared by the step loop (sensor names) and the query
/// repository (table names): FNV-1a over the *normalised* name, modulo the shard count.
///
/// Normalisation lower-cases and maps `-` to `_`, so a sensor (`room-temp`) and its
/// output table (`room_temp`) land on the same shard — the worker that produces a
/// sensor's output owns the partition holding the queries that read it.
pub fn shard_index(name: &str, shards: usize) -> usize {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        let byte = if byte == b'-' {
            b'_'
        } else {
            byte.to_ascii_lowercase()
        };
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (hash % shards.max(1) as u64) as usize
}

/// A query registered by a client (subscription-style continuous query).
#[derive(Debug, Clone)]
pub struct ClientQuery {
    /// The query id.
    pub id: ClientQueryId,
    /// The registering client's name (used for notification routing and status).
    pub client: String,
    /// The SQL text.
    pub sql: String,
    /// The compiled plan.
    prepared: PreparedQuery,
    /// The history window applied to each virtual sensor output table the query reads.
    pub history: WindowSpec,
    /// Optional uniform sampling applied to the history before evaluation.
    pub sampling_rate: Option<f64>,
    /// Catalog views built once at registration time; full evaluations lend them to a
    /// [`LiveCatalog`] instead of rebuilding them per stream element.
    views: Vec<CatalogView>,
    /// Resident incremental state (compiled lazily on first evaluation, when the
    /// referenced table's schema is known).
    incremental: IncrementalSlot,
}

impl ClientQuery {
    /// The virtual sensor output tables the query reads.
    pub fn referenced_tables(&self) -> &[String] {
        self.prepared.referenced_tables()
    }

    /// True while the query evaluates through the incremental (delta-window) path.
    ///
    /// Listing snapshots from [`QueryRepository::registered`] drop the resident state,
    /// so this reads false on them even for incrementally evaluated queries; the
    /// repository's `incremental_evaluated` statistics are the authoritative signal.
    pub fn is_incremental(&self) -> bool {
        matches!(self.incremental, IncrementalSlot::Active(_))
    }

    /// A listing clone without the resident incremental window state (which can hold
    /// `O(window)` rows and is meaningless outside the owning repository).
    fn snapshot(&self) -> ClientQuery {
        ClientQuery {
            id: self.id,
            client: self.client.clone(),
            sql: self.sql.clone(),
            prepared: self.prepared.clone(),
            history: self.history,
            sampling_rate: self.sampling_rate,
            views: self.views.clone(),
            incremental: match self.incremental {
                IncrementalSlot::Unsupported => IncrementalSlot::Unsupported,
                _ => IncrementalSlot::Untried,
            },
        }
    }
}

#[derive(Debug, Clone)]
enum IncrementalSlot {
    /// Compilation not yet attempted (the table's schema is known only at run time).
    Untried,
    /// The plan shape cannot be maintained incrementally (or an evaluation failed);
    /// every evaluation uses the full path.
    Unsupported,
    /// Live resident state.
    Active(Box<ContinuousState>),
}

#[derive(Debug, Clone)]
struct ContinuousState {
    plan: ContinuousPlan,
    /// Identity of the table the state was seeded from.  A dropped-and-recreated
    /// table is a *different* allocation, so a pointer mismatch re-seeds even when the
    /// replacement accrued as many rows as the original (the weak reference keeps the
    /// old allocation's address from being reused while the state holds it).
    table: Weak<parking_lot::RwLock<StreamTable>>,
    /// Highest storage sequence folded into the resident state.
    last_seq: u64,
    /// Last evaluation instant: time-window retraction is monotone, so a regressing
    /// clock re-seeds the state instead of diverging.
    last_now: Timestamp,
}

/// One result of evaluating a registered query.
#[derive(Debug, Clone)]
pub struct ClientQueryResult {
    /// The query that produced the result.
    pub query_id: ClientQueryId,
    /// The registering client.
    pub client: String,
    /// The result relation.
    pub relation: Relation,
    /// When the evaluation happened.
    pub evaluated_at: Timestamp,
}

/// Statistics of the query repository (or one of its partitions).
///
/// The incremental-vs-fallback split is *not* duplicated here: those counts live only
/// in the repository's shared [`QueryTelemetry`] cells (see
/// [`QueryRepository::telemetry`]), which every metrics snapshot and status report
/// reads from.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryManagerStats {
    /// Ad-hoc queries executed.
    pub adhoc_executed: u64,
    /// Registered-query evaluations performed (incremental + full).
    pub registered_evaluated: u64,
    /// Registered-query evaluations that failed.
    pub registered_failed: u64,
}

impl QueryManagerStats {
    /// Adds another partition's counters into this one.
    pub fn absorb(&mut self, other: &QueryManagerStats) {
        self.adhoc_executed += other.adhoc_executed;
        self.registered_evaluated += other.registered_evaluated;
        self.registered_failed += other.registered_failed;
    }
}

/// Point-in-time view of one repository partition (surfaced in `ContainerStatus`).
#[derive(Debug, Clone)]
pub struct QueryPartitionStatus {
    /// The partition index (== the step-loop shard it is aligned with).
    pub partition: usize,
    /// Queries registered in this partition.
    pub registered: usize,
    /// The partition's counters.
    pub stats: QueryManagerStats,
}

/// One partition of the repository: its registered queries, their table index, and a
/// private SQL engine (prepared-plan cache + fallback executor).
#[derive(Debug)]
struct QueryPartition {
    engine: SqlEngine,
    repository: HashMap<ClientQueryId, ClientQuery>,
    /// Index from output-table name to the queries that read it, registration order.
    by_table: HashMap<String, Vec<ClientQueryId>>,
    stats: QueryManagerStats,
}

impl QueryPartition {
    fn new(cache_enabled: bool) -> QueryPartition {
        let mut engine = SqlEngine::with_optimizer(OptimizerConfig::default());
        engine.set_cache_enabled(cache_enabled);
        QueryPartition {
            engine,
            repository: HashMap::new(),
            by_table: HashMap::new(),
            stats: QueryManagerStats::default(),
        }
    }

    /// Evaluates this partition's queries reading `table`, appending to `out`.
    #[allow(clippy::too_many_arguments)]
    fn evaluate_for_table(
        &mut self,
        table: &str,
        storage: &StorageManager,
        now: Timestamp,
        incremental_enabled: bool,
        telemetry: &QueryTelemetry,
        slow_log: &SlowQueryLog,
        out: &mut Vec<ClientQueryResult>,
    ) {
        let ids = self.by_table.get(table).cloned().unwrap_or_default();
        for id in ids {
            let Some(query) = self.repository.get_mut(&id) else {
                continue;
            };
            let watch = Stopwatch::start();
            let incremental = if incremental_enabled {
                try_incremental(query, storage, now)
            } else {
                None
            };
            let outcome = match incremental {
                Some(relation) => {
                    telemetry.incremental_evaluated.inc();
                    Ok(relation)
                }
                None => {
                    // Full re-evaluation over the live catalog, with the views cached
                    // at registration time (no per-element catalog rebuild).
                    telemetry.fallback_evaluated.inc();
                    let catalog = LiveCatalog::new(storage, &query.views, now);
                    self.engine.execute_prepared(&query.prepared, &catalog)
                }
            };
            let micros = watch.elapsed_micros();
            telemetry.eval_micros.record(micros);
            match outcome {
                Ok(relation) => {
                    self.stats.registered_evaluated += 1;
                    slow_log.observe(micros, || SlowQuery {
                        sql: query.sql.clone(),
                        micros,
                        explain: query.prepared.explain(),
                        rows_scanned: 0,
                        rows_returned: relation.row_count() as u64,
                        hops: Vec::new(),
                    });
                    out.push(ClientQueryResult {
                        query_id: id,
                        client: query.client.clone(),
                        relation,
                        evaluated_at: now,
                    });
                }
                Err(_) => {
                    self.stats.registered_failed += 1;
                }
            }
        }
    }
}

/// Attempts the incremental path for one query: compiles the resident plan on first
/// use, then folds in the delta rows since the query's last-seen sequence.  Returns
/// `None` when the query must take the full path (unsupported shape, missing table, or
/// an incremental failure — which permanently downgrades the query).
fn try_incremental(
    query: &mut ClientQuery,
    storage: &StorageManager,
    now: Timestamp,
) -> Option<Relation> {
    if matches!(query.incremental, IncrementalSlot::Unsupported) {
        return None;
    }
    if query.referenced_tables().len() != 1 {
        query.incremental = IncrementalSlot::Unsupported;
        return None;
    }
    let table_name = query.referenced_tables()[0].clone();
    // An unknown table fails identically on the full path, keeping behaviour uniform.
    let table = storage.table(&table_name).ok()?;
    let result = advance_incremental(query, &table_name, &table, now);
    match result {
        Ok(relation) => relation,
        Err(_) => {
            // The resident state may no longer mirror full evaluation: downgrade.
            query.incremental = IncrementalSlot::Unsupported;
            None
        }
    }
}

fn advance_incremental(
    query: &mut ClientQuery,
    table_name: &str,
    table: &Arc<parking_lot::RwLock<StreamTable>>,
    now: Timestamp,
) -> GsnResult<Option<Relation>> {
    loop {
        match &mut query.incremental {
            IncrementalSlot::Unsupported => return Ok(None),
            IncrementalSlot::Untried => {
                let guard = table.read();
                let base = Relation::for_stream_schema(table_name, guard.schema());
                let stride = query.sampling_rate.and_then(sampling_stride);
                let Some(plan) =
                    ContinuousPlan::compile(query.prepared.plan(), base.columns(), stride)
                else {
                    drop(guard);
                    query.incremental = IncrementalSlot::Unsupported;
                    return Ok(None);
                };
                // Seed: the current window contents become the initial resident state
                // (one window-sized scan; every later evaluation reads only the delta).
                let last_seq = guard.last_sequence();
                // Time windows seed through an index-bounded range scan: the segment
                // index skips every page wholly older than the cutoff, so seeding a
                // short window over a long durable history reads O(window) pages, not
                // O(history).  The bound is a page-granular superset — `evaluate`'s
                // `WindowBound::Since` pruning pops any too-old leading rows.
                let mut scan = match query.history {
                    WindowSpec::Time(d) => {
                        let bounds = ScanBounds {
                            min_ts: Some(now.saturating_sub(d).as_millis()),
                            ..ScanBounds::default()
                        };
                        guard.open_scan_bounded(WindowSpec::Count(usize::MAX), now, &bounds)?
                    }
                    _ => guard.open_scan(query.history, now)?,
                };
                let mut delta = Vec::new();
                while let Some(batch) = guard.scan_next(&mut scan)? {
                    delta.extend(batch.iter().map(element_row));
                }
                let oldest = guard.first_live_sequence()?;
                drop(guard);
                let mut state = ContinuousState {
                    plan,
                    table: Arc::downgrade(table),
                    last_seq,
                    last_now: now,
                };
                let relation =
                    state
                        .plan
                        .evaluate(delta, window_bound(query.history, now), oldest)?;
                query.incremental = IncrementalSlot::Active(Box::new(state));
                return Ok(Some(relation));
            }
            IncrementalSlot::Active(state) => {
                if state.table.as_ptr() != Arc::as_ptr(table) {
                    // The table was dropped and recreated (undeploy/redeploy): the
                    // resident state describes the old incarnation, whatever the new
                    // one's sequence numbers look like.  Re-seed from scratch.
                    query.incremental = IncrementalSlot::Untried;
                    continue;
                }
                let guard = table.read();
                let new_last = guard.last_sequence();
                if now < state.last_now || new_last < state.last_seq {
                    // Clock regression (time retraction is monotone) or a sequence
                    // regression: re-seed from scratch.
                    drop(guard);
                    query.incremental = IncrementalSlot::Untried;
                    continue;
                }
                let mut scan = guard.open_delta_scan(state.last_seq)?;
                let mut delta = Vec::new();
                while let Some(batch) = guard.scan_next(&mut scan)? {
                    delta.extend(batch.iter().map(element_row));
                }
                let oldest = guard.first_live_sequence()?;
                drop(guard);
                let relation =
                    state
                        .plan
                        .evaluate(delta, window_bound(query.history, now), oldest)?;
                state.last_seq = new_last;
                state.last_now = now;
                return Ok(Some(relation));
            }
        }
    }
}

/// Flattens a stream element into the delta-row form the incremental executor consumes
/// (`[PK, TIMED, fields...]`, the scan layout).
fn element_row(element: &StreamElement) -> (u64, Timestamp, Vec<gsn_types::Value>) {
    let mut row = Vec::with_capacity(element.values().len() + 2);
    row.push(gsn_types::Value::Integer(element.sequence() as i64));
    row.push(gsn_types::Value::Timestamp(element.timestamp()));
    row.extend_from_slice(element.values());
    (element.sequence(), element.timestamp(), row)
}

/// Maps a query's history window to the incremental executor's bound at `now`.
fn window_bound(history: WindowSpec, now: Timestamp) -> WindowBound {
    match history {
        WindowSpec::Count(n) => WindowBound::Count(n),
        WindowSpec::LatestOnly => WindowBound::Count(1),
        WindowSpec::Time(d) => WindowBound::Since(now.saturating_sub(d)),
    }
}

/// The partitioned query repository of one container.
///
/// All methods take `&self`; partitions are internally locked.  See the module docs for
/// the sharding scheme.
#[derive(Debug)]
pub struct QueryRepository {
    partitions: Vec<Mutex<QueryPartition>>,
    /// Table name (lowercase) → partitions holding queries that read it, ascending.
    /// Epoch-published: every produced element consults this on the hot path, while
    /// writes happen only on (un)registration — readers take an `Arc` snapshot and
    /// never contend.
    routes: EpochCell<HashMap<String, Vec<usize>>>,
    /// Query id → owning partition.
    owners: RwLock<HashMap<ClientQueryId, usize>>,
    next_id: AtomicU64,
    incremental: bool,
    /// Shared instrument cells for the incremental/fallback split and per-evaluation
    /// latency — the single ledger of those counts (see [`QueryManagerStats`]).
    telemetry: QueryTelemetry,
    /// Registered-query evaluations slower than the configured threshold land here
    /// with their plan explain (disabled until a threshold is set).
    slow_queries: Arc<SlowQueryLog>,
}

/// Backwards-compatible name: a repository with one partition behaves exactly like the
/// former single-lock query manager.
pub type QueryManager = QueryRepository;

impl QueryRepository {
    /// Creates a single-partition repository (incremental evaluation enabled).
    pub fn new(cache_enabled: bool) -> QueryRepository {
        QueryRepository::with_partitions(1, cache_enabled, true)
    }

    /// Creates a repository with `partitions` shards (one per step-loop worker).
    pub fn with_partitions(
        partitions: usize,
        cache_enabled: bool,
        incremental: bool,
    ) -> QueryRepository {
        let partitions = partitions.max(1);
        QueryRepository {
            partitions: (0..partitions)
                .map(|_| Mutex::new(QueryPartition::new(cache_enabled)))
                .collect(),
            routes: EpochCell::new(HashMap::new()),
            owners: RwLock::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            incremental,
            telemetry: QueryTelemetry::new(),
            slow_queries: Arc::new(SlowQueryLog::default()),
        }
    }

    /// The repository's shared instrument handles (clones share the same cells).
    pub fn telemetry(&self) -> &QueryTelemetry {
        &self.telemetry
    }

    /// The slow-query log registered evaluations report into.  Disabled (zero
    /// threshold) until [`SlowQueryLog::set_threshold_micros`] is called on it.
    pub fn slow_query_log(&self) -> &Arc<SlowQueryLog> {
        &self.slow_queries
    }

    /// Hands every partition engine the shared SQL instrument handles (compile/open/
    /// execute latency histograms).
    pub fn set_sql_telemetry(&self, telemetry: &gsn_sql::SqlTelemetry) {
        for partition in &self.partitions {
            partition.lock().engine.set_telemetry(telemetry.clone());
        }
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Whether incremental (delta-window) evaluation is enabled.
    pub fn incremental_enabled(&self) -> bool {
        self.incremental
    }

    /// The partition owning queries whose first referenced table is `table`.
    pub fn partition_of_table(&self, table: &str) -> usize {
        shard_index(table, self.partitions.len())
    }

    /// Executes an ad-hoc (one-shot) query against the live storage, seeing the full
    /// retained history of every table.
    pub fn execute_adhoc(
        &self,
        sql: &str,
        storage: &StorageManager,
        now: Timestamp,
    ) -> GsnResult<Relation> {
        let mut partition = self.partitions[0].lock();
        partition.stats.adhoc_executed += 1;
        let catalog = LiveCatalog::new(storage, &[], now);
        partition.engine.execute(sql, &catalog)
    }

    /// Registers a continuous client query.
    ///
    /// `history` bounds how much of each referenced table the query sees on every
    /// evaluation; `sampling_rate` optionally thins that history (both map directly to
    /// the random-query workload of the paper's Figure 4 experiment).  The query's
    /// catalog views are built here, once, and its incremental state is compiled
    /// lazily on first evaluation.
    pub fn register(
        &self,
        client: &str,
        sql: &str,
        history: WindowSpec,
        sampling_rate: Option<f64>,
    ) -> GsnResult<ClientQueryId> {
        if let Some(rate) = sampling_rate {
            if !(rate > 0.0 && rate <= 1.0) {
                return Err(GsnError::config(format!(
                    "sampling rate must be in (0, 1], got {rate}"
                )));
            }
        }
        // A cache-free compile discovers the referenced tables (and therefore the
        // owning partition); the partition's engine then compiles through its cache.
        let probe = SqlEngine::compile(sql, &OptimizerConfig::default())?;
        let Some(first_table) = probe.referenced_tables().first() else {
            return Err(GsnError::sql_parse(
                "a registered query must read from at least one virtual sensor",
            ));
        };
        let partition_index = self.partition_of_table(first_table);
        let id = ClientQueryId(self.next_id.fetch_add(1, Ordering::Relaxed));

        let mut partition = self.partitions[partition_index].lock();
        let prepared = partition.engine.prepare(sql)?;
        let views: Vec<CatalogView> = prepared
            .referenced_tables()
            .iter()
            .map(|t| {
                let mut view = CatalogView::new(t, t, history);
                if let Some(rate) = sampling_rate {
                    view = view.with_sampling(rate);
                }
                view
            })
            .collect();
        for table in prepared.referenced_tables() {
            partition
                .by_table
                .entry(table.clone())
                .or_default()
                .push(id);
        }
        let tables = prepared.referenced_tables().to_vec();
        partition.repository.insert(
            id,
            ClientQuery {
                id,
                client: client.to_owned(),
                sql: sql.to_owned(),
                prepared,
                history,
                sampling_rate,
                views,
                incremental: IncrementalSlot::Untried,
            },
        );
        drop(partition);

        self.owners.write().insert(id, partition_index);
        self.routes.update(|routes| {
            let mut next = routes.clone();
            for table in tables {
                let entry = next.entry(table).or_default();
                if !entry.contains(&partition_index) {
                    entry.push(partition_index);
                    entry.sort_unstable();
                }
            }
            (next, ())
        });
        Ok(id)
    }

    /// Removes a registered query.
    pub fn deregister(&self, id: ClientQueryId) -> GsnResult<()> {
        let Some(partition_index) = self.owners.write().remove(&id) else {
            return Err(GsnError::not_found(format!("no registered query {id:?}")));
        };
        let mut partition = self.partitions[partition_index].lock();
        let removed = partition
            .repository
            .remove(&id)
            .ok_or_else(|| GsnError::not_found(format!("no registered query {id:?}")))?;
        let mut orphaned: Vec<String> = Vec::new();
        for table in removed.referenced_tables() {
            if let Some(ids) = partition.by_table.get_mut(table) {
                ids.retain(|q| *q != id);
                if ids.is_empty() {
                    partition.by_table.remove(table);
                    orphaned.push(table.clone());
                }
            }
        }
        drop(partition);
        if !orphaned.is_empty() {
            self.routes.update(|routes| {
                let mut next = routes.clone();
                for table in &orphaned {
                    if let Some(entry) = next.get_mut(table) {
                        entry.retain(|p| *p != partition_index);
                        if entry.is_empty() {
                            next.remove(table);
                        }
                    }
                }
                (next, ())
            });
        }
        Ok(())
    }

    /// The registered queries, ordered by id (listing snapshots — the resident
    /// incremental window state, which can hold `O(window)` rows per query, is *not*
    /// copied: active state snapshots as untried, so [`ClientQuery::is_incremental`]
    /// reads false on listings of incrementally evaluated queries).
    pub fn registered(&self) -> Vec<ClientQuery> {
        let mut all: Vec<ClientQuery> = self
            .partitions
            .iter()
            .flat_map(|p| {
                p.lock()
                    .repository
                    .values()
                    .map(ClientQuery::snapshot)
                    .collect::<Vec<_>>()
            })
            .collect();
        all.sort_by_key(|q| q.id);
        all
    }

    /// Number of registered queries.
    pub fn registered_count(&self) -> usize {
        self.partitions
            .iter()
            .map(|p| p.lock().repository.len())
            .sum()
    }

    /// The registered queries that read `table` (partition order, then registration
    /// order).
    pub fn queries_for_table(&self, table: &str) -> Vec<ClientQueryId> {
        let key = table.to_ascii_lowercase();
        let routes = self.routes.load();
        let mut ids = Vec::new();
        for &p in routes.get(&key).into_iter().flatten() {
            if let Some(partition_ids) = self.partitions[p].lock().by_table.get(&key) {
                ids.extend_from_slice(partition_ids);
            }
        }
        ids
    }

    /// Evaluates every registered query affected by a new element in `table`, returning
    /// the per-query results (failed evaluations are skipped and counted).
    ///
    /// This is the inner loop of the Figure 4 experiment: its cost for N registered
    /// clients is what the paper reports as "total processing time for the set of
    /// clients".  Single-table queries over `table` live in `table`'s own partition —
    /// the one aligned with the worker shard that produced the element — so the common
    /// case takes exactly one uncontended partition lock.
    pub fn evaluate_for_table(
        &self,
        table: &str,
        storage: &StorageManager,
        now: Timestamp,
    ) -> Vec<ClientQueryResult> {
        let key = table.to_ascii_lowercase();
        let routes = self.routes.load();
        let mut results = Vec::new();
        for &p in routes.get(&key).into_iter().flatten() {
            self.partitions[p].lock().evaluate_for_table(
                &key,
                storage,
                now,
                self.incremental,
                &self.telemetry,
                &self.slow_queries,
                &mut results,
            );
        }
        results
    }

    /// Compiles a query (hitting the prepared cache) without executing it — the entry
    /// point for the container's cursor API, which opens the plan itself.
    pub fn prepare(&self, sql: &str) -> GsnResult<PreparedQuery> {
        self.partitions[0].lock().engine.prepare(sql)
    }

    /// Folds a finished container cursor's counters into the engine statistics
    /// (streaming executions count like materialised ones).
    pub fn record_cursor(
        &self,
        rows_scanned: u64,
        rows_returned: u64,
        pages_skipped: u64,
        rows_residual_filtered: u64,
    ) {
        self.partitions[0].lock().engine.record_cursor(
            rows_scanned,
            rows_returned,
            pages_skipped,
            rows_residual_filtered,
        );
    }

    /// Compiles a query without registering or executing it (used for EXPLAIN-style
    /// inspection through the container API).
    pub fn explain(&self, sql: &str) -> GsnResult<String> {
        Ok(self.partitions[0].lock().engine.prepare(sql)?.explain())
    }

    /// Repository statistics, merged across partitions (including the SQL engines'
    /// compile/cache/row counters).
    pub fn stats(&self) -> (QueryManagerStats, EngineStats) {
        let mut stats = QueryManagerStats::default();
        let mut engine = EngineStats::default();
        for partition in &self.partitions {
            let partition = partition.lock();
            stats.absorb(&partition.stats);
            engine.absorb(&partition.engine.stats());
        }
        (stats, engine)
    }

    /// Per-partition registration counts and statistics (for status rendering).
    pub fn partition_status(&self) -> Vec<QueryPartitionStatus> {
        self.partitions
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let p = p.lock();
                QueryPartitionStatus {
                    partition: i,
                    registered: p.repository.len(),
                    stats: p.stats,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsn_storage::Retention;
    use gsn_types::{DataType, StreamElement, StreamSchema, Value};
    use std::sync::Arc;

    fn storage_with_output() -> StorageManager {
        let storage = StorageManager::new();
        let schema = Arc::new(
            StreamSchema::from_pairs(&[
                ("temperature", DataType::Integer),
                ("room", DataType::Varchar),
            ])
            .unwrap(),
        );
        storage
            .create_table("room_temp", schema.clone(), Retention::Unbounded)
            .unwrap();
        for i in 0..20 {
            let e = StreamElement::new(
                schema.clone(),
                vec![
                    Value::Integer(15 + i),
                    Value::varchar(if i % 2 == 0 { "bc143" } else { "bc144" }),
                ],
                Timestamp(i * 100),
            )
            .unwrap();
            storage.insert("room_temp", e, Timestamp(i * 100)).unwrap();
        }
        storage
    }

    #[test]
    fn adhoc_queries_see_full_history() {
        let storage = storage_with_output();
        let qm = QueryRepository::new(true);
        let rel = qm
            .execute_adhoc("select count(*) from room_temp", &storage, Timestamp(2_000))
            .unwrap();
        assert_eq!(rel.rows()[0][0], Value::Integer(20));
        assert_eq!(qm.stats().0.adhoc_executed, 1);
    }

    #[test]
    fn register_evaluate_and_deregister() {
        let storage = storage_with_output();
        let qm = QueryRepository::new(true);
        let hot = qm
            .register(
                "client-1",
                "select temperature from room_temp where temperature > 30",
                WindowSpec::Count(100),
                None,
            )
            .unwrap();
        let avg = qm
            .register(
                "client-2",
                "select avg(temperature) from room_temp",
                WindowSpec::Time(gsn_types::Duration::from_secs(1)),
                None,
            )
            .unwrap();
        assert_eq!(qm.registered_count(), 2);
        assert_eq!(qm.queries_for_table("room_temp").len(), 2);
        assert_eq!(qm.queries_for_table("other").len(), 0);

        let results = qm.evaluate_for_table("room_temp", &storage, Timestamp(1_900));
        assert_eq!(results.len(), 2);
        let hot_result = results.iter().find(|r| r.query_id == hot).unwrap();
        assert_eq!(hot_result.client, "client-1");
        assert_eq!(hot_result.relation.row_count(), 4); // 31..34
        let avg_result = results.iter().find(|r| r.query_id == avg).unwrap();
        // Time window of 1s at t=1900 covers timestamps 900..1900 => temperatures 24..34.
        assert_eq!(avg_result.relation.rows()[0][0], Value::Double(29.0));
        // Both query shapes are maintained incrementally.
        assert_eq!(qm.telemetry().incremental_evaluated.get(), 2);
        assert_eq!(qm.telemetry().fallback_evaluated.get(), 0);
        assert_eq!(qm.telemetry().eval_micros.summary().count, 2);

        qm.deregister(hot).unwrap();
        assert!(qm.deregister(hot).is_err());
        assert_eq!(qm.registered_count(), 1);
        assert_eq!(qm.queries_for_table("room_temp").len(), 1);
        assert_eq!(qm.registered()[0].id, avg);
    }

    #[test]
    fn incremental_matches_full_across_arrivals() {
        let schema = Arc::new(
            StreamSchema::from_pairs(&[
                ("temperature", DataType::Integer),
                ("room", DataType::Varchar),
            ])
            .unwrap(),
        );
        let queries = [
            "select temperature from room_temp where temperature > 20",
            "select count(*) as n, avg(temperature) as a from room_temp",
            "select room, max(temperature) as hi from room_temp group by room",
            "select min(temperature) from room_temp where room = 'bc143'",
        ];
        let windows = [
            WindowSpec::Count(7),
            WindowSpec::Time(gsn_types::Duration::from_millis(450)),
        ];
        for window in windows {
            let incremental_storage = StorageManager::new();
            let full_storage = StorageManager::new();
            for s in [&incremental_storage, &full_storage] {
                s.create_table("room_temp", schema.clone(), Retention::Unbounded)
                    .unwrap();
            }
            let incremental = QueryRepository::with_partitions(1, true, true);
            let full = QueryRepository::with_partitions(1, true, false);
            for (i, sql) in queries.iter().enumerate() {
                incremental
                    .register(&format!("c{i}"), sql, window, None)
                    .unwrap();
                full.register(&format!("c{i}"), sql, window, None).unwrap();
            }
            for i in 0..30i64 {
                let ts = Timestamp(100 * (i + 1));
                for s in [&incremental_storage, &full_storage] {
                    let e = StreamElement::new(
                        schema.clone(),
                        vec![
                            Value::Integer((i * 13) % 37),
                            Value::varchar(if i % 3 == 0 { "bc143" } else { "bc144" }),
                        ],
                        ts,
                    )
                    .unwrap();
                    s.insert("room_temp", e, ts).unwrap();
                }
                let a = incremental.evaluate_for_table("room_temp", &incremental_storage, ts);
                let b = full.evaluate_for_table("room_temp", &full_storage, ts);
                assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.relation.rows(), y.relation.rows(), "window {window:?}");
                    assert_eq!(x.relation.columns(), y.relation.columns());
                }
            }
            assert_eq!(
                incremental.telemetry().fallback_evaluated.get(),
                0,
                "window {window:?}"
            );
            assert_eq!(
                incremental.telemetry().incremental_evaluated.get(),
                30 * queries.len() as u64
            );
            assert_eq!(full.telemetry().incremental_evaluated.get(), 0);
        }
    }

    /// Epoch-snapshot staleness: a reader holding a routes snapshot across a
    /// deregistration keeps the generation it loaded — the removed route stays visible
    /// to it and every lookup completes — while new readers immediately observe the
    /// next generation with the route gone.
    #[test]
    fn route_snapshots_stay_readable_across_deregistration() {
        let storage = storage_with_output();
        let qm = QueryRepository::with_partitions(4, true, true);
        let id = qm
            .register(
                "client-1",
                "select avg(temperature) from room_temp",
                WindowSpec::Count(10),
                None,
            )
            .unwrap();
        let generation = qm.routes.generation();
        let stale = qm.routes.load();
        let partition = qm.partition_of_table("room_temp");
        assert_eq!(stale.get("room_temp"), Some(&vec![partition]));

        qm.deregister(id).unwrap();

        // The held snapshot is immutable: a reader mid-evaluation on the old
        // generation still resolves the route it started with.
        assert_eq!(stale.get("room_temp"), Some(&vec![partition]));
        // New loads see the replacement map, not a mutation of the old one.
        assert!(qm.routes.load().get("room_temp").is_none());
        assert!(qm.routes.generation() > generation);
        assert!(qm.queries_for_table("room_temp").is_empty());
        assert!(qm
            .evaluate_for_table("room_temp", &storage, Timestamp(2_000))
            .is_empty());
    }

    #[test]
    fn unsupported_shapes_fall_back_to_full_evaluation() {
        let storage = storage_with_output();
        let qm = QueryRepository::new(true);
        qm.register(
            "sorter",
            "select temperature from room_temp order by temperature desc limit 3",
            WindowSpec::Count(10),
            None,
        )
        .unwrap();
        let results = qm.evaluate_for_table("room_temp", &storage, Timestamp(2_000));
        assert_eq!(results[0].relation.row_count(), 3);
        assert_eq!(results[0].relation.rows()[0][0], Value::Integer(34));
        assert_eq!(qm.telemetry().fallback_evaluated.get(), 1);
        assert_eq!(qm.telemetry().incremental_evaluated.get(), 0);
        assert!(!qm.registered()[0].is_incremental());
    }

    #[test]
    fn sampling_thins_the_history() {
        let storage = storage_with_output();
        let qm = QueryRepository::new(true);
        qm.register(
            "sampler",
            "select count(*) as n from room_temp",
            WindowSpec::Count(20),
            Some(0.5),
        )
        .unwrap();
        let results = qm.evaluate_for_table("room_temp", &storage, Timestamp(2_000));
        assert_eq!(results[0].relation.rows()[0][0], Value::Integer(10));
    }

    #[test]
    fn invalid_registrations_are_rejected() {
        let qm = QueryRepository::new(true);
        assert!(qm
            .register("c", "select 1", WindowSpec::Count(1), None)
            .is_err());
        assert!(qm
            .register("c", "not sql at all", WindowSpec::Count(1), None)
            .is_err());
        assert!(qm
            .register("c", "select * from t", WindowSpec::Count(1), Some(0.0))
            .is_err());
        assert!(qm
            .register("c", "select * from t", WindowSpec::Count(1), Some(1.5))
            .is_err());
        assert_eq!(qm.registered_count(), 0);
    }

    #[test]
    fn failing_registered_queries_are_counted_not_fatal() {
        let storage = storage_with_output();
        let qm = QueryRepository::new(true);
        // References a column that does not exist: registration succeeds (the table is
        // known only at run time) but evaluation fails.
        qm.register(
            "broken-client",
            "select nonexistent_column from room_temp",
            WindowSpec::Count(10),
            None,
        )
        .unwrap();
        qm.register(
            "ok-client",
            "select count(*) from room_temp",
            WindowSpec::Count(10),
            None,
        )
        .unwrap();
        let results = qm.evaluate_for_table("room_temp", &storage, Timestamp(2_000));
        assert_eq!(results.len(), 1);
        let (stats, _) = qm.stats();
        assert_eq!(stats.registered_evaluated, 1);
        assert_eq!(stats.registered_failed, 1);
    }

    #[test]
    fn prepared_query_cache_is_shared_across_clients() {
        let qm = QueryRepository::new(true);
        let sql = "select avg(temperature) from room_temp";
        for i in 0..50 {
            qm.register(&format!("client-{i}"), sql, WindowSpec::Count(10), None)
                .unwrap();
        }
        let (_, engine_stats) = qm.stats();
        assert_eq!(engine_stats.compiled, 1);
        assert_eq!(engine_stats.cache_hits, 49);

        let uncached = QueryRepository::with_partitions(1, false, true);
        for i in 0..10 {
            uncached
                .register(&format!("client-{i}"), sql, WindowSpec::Count(10), None)
                .unwrap();
        }
        assert_eq!(uncached.stats().1.compiled, 10);
    }

    #[test]
    fn partitions_align_with_the_sensor_shards() {
        let qm = QueryRepository::with_partitions(4, true, true);
        // The sensor `room-temp` and its output table `room_temp` hash identically.
        assert_eq!(
            shard_index("room-temp", 4),
            qm.partition_of_table("room_temp")
        );
        assert_eq!(shard_index("ROOM_TEMP", 4), shard_index("room-temp", 4));

        let storage = storage_with_output();
        let id = qm
            .register(
                "c",
                "select count(*) from room_temp",
                WindowSpec::Count(5),
                None,
            )
            .unwrap();
        let owning = qm.partition_of_table("room_temp");
        let status = qm.partition_status();
        assert_eq!(status.len(), 4);
        assert_eq!(status[owning].registered, 1);
        assert_eq!(
            status.iter().map(|p| p.registered).sum::<usize>(),
            1,
            "the query lives in exactly one partition"
        );
        let results = qm.evaluate_for_table("room_temp", &storage, Timestamp(2_000));
        assert_eq!(results.len(), 1);
        assert_eq!(qm.partition_status()[owning].stats.registered_evaluated, 1);
        qm.deregister(id).unwrap();
        assert!(qm.queries_for_table("room_temp").is_empty());
    }

    #[test]
    fn cross_table_queries_are_pinned_to_one_partition() {
        let qm = QueryRepository::with_partitions(4, true, true);
        qm.register(
            "joiner",
            "select a.temperature from room_temp a join hall_temp b on a.room = b.room",
            WindowSpec::Count(5),
            None,
        )
        .unwrap();
        // Both tables route to the single owning partition.
        let ids_a = qm.queries_for_table("room_temp");
        let ids_b = qm.queries_for_table("hall_temp");
        assert_eq!(ids_a.len(), 1);
        assert_eq!(ids_a, ids_b);
        assert_eq!(
            qm.partition_status()
                .iter()
                .map(|p| p.registered)
                .sum::<usize>(),
            1
        );
    }

    #[test]
    fn incremental_state_reseeds_when_the_table_is_replaced() {
        let schema =
            Arc::new(StreamSchema::from_pairs(&[("temperature", DataType::Integer)]).unwrap());
        let storage = StorageManager::new();
        storage
            .create_table("t", schema.clone(), Retention::Unbounded)
            .unwrap();
        let qm = QueryRepository::new(true);
        qm.register(
            "c",
            "select count(*) as n from t",
            WindowSpec::Count(100),
            None,
        )
        .unwrap();
        qm.register(
            "s",
            "select sum(temperature) as s from t",
            WindowSpec::Count(100),
            None,
        )
        .unwrap();
        for i in 0..5i64 {
            let e =
                StreamElement::new(schema.clone(), vec![Value::Integer(i)], Timestamp(i)).unwrap();
            storage.insert("t", e, Timestamp(i)).unwrap();
        }
        let r = qm.evaluate_for_table("t", &storage, Timestamp(10));
        assert_eq!(r[0].relation.rows()[0][0], Value::Integer(5));
        assert_eq!(r[1].relation.rows()[0][0], Value::Integer(10)); // 0+1+2+3+4
                                                                    // Undeploy/redeploy: the table restarts with fresh sequence numbers.
        storage.drop_table("t").unwrap();
        storage
            .create_table("t", schema.clone(), Retention::Unbounded)
            .unwrap();
        let e = StreamElement::new(schema.clone(), vec![Value::Integer(9)], Timestamp(20)).unwrap();
        storage.insert("t", e, Timestamp(20)).unwrap();
        let r = qm.evaluate_for_table("t", &storage, Timestamp(20));
        assert_eq!(r[0].relation.rows()[0][0], Value::Integer(1));
        assert_eq!(r[1].relation.rows()[0][0], Value::Integer(9));

        // Replace again, this time refilling the new table to the *same* row count
        // before the next evaluation: sequence numbers alone cannot tell the
        // difference, so the table-identity check must force the re-seed.
        storage.drop_table("t").unwrap();
        storage
            .create_table("t", schema.clone(), Retention::Unbounded)
            .unwrap();
        for i in 0..2i64 {
            let ts = Timestamp(30 + i);
            let e = StreamElement::new(schema.clone(), vec![Value::Integer(100 + i)], ts).unwrap();
            storage.insert("t", e, ts).unwrap();
        }
        let r = qm.evaluate_for_table("t", &storage, Timestamp(40));
        assert_eq!(r[0].relation.rows()[0][0], Value::Integer(2));
        // Without the identity check the stale resident row (9) would merge with the
        // new table's delta (101) into 110 instead of 100 + 101.
        assert_eq!(r[1].relation.rows()[0][0], Value::Integer(201));
    }

    #[test]
    fn explain_renders_plans() {
        let qm = QueryRepository::new(true);
        let plan = qm
            .explain("select avg(temperature) from room_temp where room = 'bc143'")
            .unwrap();
        assert!(plan.contains("Aggregate"));
        assert!(plan.contains("Scan room_temp"));
        assert!(qm.explain("garbage").is_err());
    }

    #[test]
    fn shard_assignment_is_stable_and_total() {
        for shards in [1usize, 2, 4, 8] {
            for i in 0..64 {
                let name = format!("sensor-{i}");
                let a = shard_index(&name, shards);
                assert_eq!(a, shard_index(&name, shards));
                assert!(a < shards);
            }
        }
        let hit: std::collections::HashSet<usize> = (0..64)
            .map(|i| shard_index(&format!("sensor-{i}"), 4))
            .collect();
        assert_eq!(hit.len(), 4);
    }
}
