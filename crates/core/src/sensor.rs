//! The virtual sensor runtime: the paper's processing pipeline, instantiated per
//! deployment descriptor.
//!
//! A deployed virtual sensor owns, per input stream, a prepared output query and, per
//! stream source, a wrapper (or remote subscription), a windowed storage table, a
//! stream-quality monitor and a prepared per-source query.  The arrival of a stream
//! element triggers the five processing steps of Section 3:
//!
//! 1. timestamp the element (ISM),
//! 2. evaluate the windows of every source of the triggering input stream,
//! 3. run the per-source queries into temporary relations,
//! 4. run the output query over the temporary relations,
//! 5. persist and hand the new output element to the container for notification.

use std::sync::Arc;
use std::time::Instant;

use gsn_sql::{MemoryCatalog, PreparedQuery, Relation, SqlEngine};
use gsn_storage::{CatalogView, Retention, StorageManager};
use gsn_types::{
    GsnError, GsnResult, NodeId, StreamElement, StreamSchema, Timestamp, VirtualSensorName,
};
use gsn_wrappers::{Wrapper, WrapperRegistry};
use gsn_xml::{StreamSourceSpec, VirtualSensorDescriptor};

use crate::ism::{QualityPolicy, RateLimiter, SourceMonitor, SourceQuality};

/// Output history kept when a descriptor neither sets `permanent-storage="true"` nor an
/// explicit `<storage size>`: generous enough for ad-hoc queries over recent output,
/// bounded so a default-configured sensor cannot grow memory without limit.
const DEFAULT_OUTPUT_HISTORY: usize = 10_000;

/// Where a stream source's data comes from at runtime.
pub enum SourceKind {
    /// A local wrapper instance polled by the container.
    Local(Box<dyn Wrapper>),
    /// A subscription to a virtual sensor hosted on another node.
    Remote {
        /// The producing node.
        producer: NodeId,
        /// The remote virtual sensor name.
        sensor: String,
    },
}

impl std::fmt::Debug for SourceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SourceKind::Local(w) => write!(f, "Local({})", w.describe()),
            SourceKind::Remote { producer, sensor } => write!(f, "Remote({producer}/{sensor})"),
        }
    }
}

/// Identifies a source within a virtual sensor: (input stream index, source index).
pub type SourceRef = (usize, usize);

/// Runtime state of one stream source.
#[derive(Debug)]
pub struct SourceRuntime {
    /// The descriptor fragment.
    pub spec: StreamSourceSpec,
    /// Where the data comes from.
    pub kind: SourceKind,
    /// The storage table backing this source.
    pub table_name: String,
    /// Stream-quality monitor.
    pub monitor: SourceMonitor,
    /// The prepared per-source query (over `WRAPPER`).
    source_query: PreparedQuery,
}

/// Runtime state of one input stream.
#[derive(Debug)]
pub struct InputStreamRuntime {
    /// The input stream name.
    pub name: String,
    /// Rate bound for this input stream.
    pub rate_limiter: RateLimiter,
    /// The stream sources.
    pub sources: Vec<SourceRuntime>,
    /// The prepared output query (over the source aliases).
    output_query: PreparedQuery,
}

/// Processing statistics of one virtual sensor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SensorStats {
    /// Elements that arrived from sources.
    pub arrivals: u64,
    /// Pipeline executions triggered.
    pub triggers: u64,
    /// Output elements produced.
    pub outputs: u64,
    /// Pipeline executions that failed.
    pub errors: u64,
    /// Total pipeline processing time, in microseconds of wall-clock time.
    pub total_processing_micros: u64,
    /// The most recent pipeline processing time, in microseconds.
    pub last_processing_micros: u64,
}

impl SensorStats {
    /// Mean per-trigger processing time in milliseconds.
    pub fn mean_processing_ms(&self) -> f64 {
        if self.triggers == 0 {
            0.0
        } else {
            self.total_processing_micros as f64 / self.triggers as f64 / 1_000.0
        }
    }
}

/// A deployed virtual sensor.
pub struct VirtualSensor {
    descriptor: VirtualSensorDescriptor,
    output_schema: Arc<StreamSchema>,
    output_table: String,
    streams: Vec<InputStreamRuntime>,
    engine: SqlEngine,
    stats: SensorStats,
}

impl std::fmt::Debug for VirtualSensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "VirtualSensor({}, {} input streams)",
            self.descriptor.name,
            self.streams.len()
        )
    }
}

impl VirtualSensor {
    /// The storage table name used for a virtual sensor's output stream.
    pub fn output_table_name(name: &VirtualSensorName) -> String {
        name.as_str().replace('-', "_")
    }

    /// The storage table name used for one source of a virtual sensor.
    pub fn source_table_name(name: &VirtualSensorName, alias: &str) -> String {
        format!(
            "{}__{}",
            Self::output_table_name(name),
            alias.to_ascii_lowercase()
        )
    }

    /// Instantiates a virtual sensor from its descriptor.
    ///
    /// * local wrapper sources are created through `registry` and their production
    ///   schedules anchored at `deployed_at`;
    /// * remote sources are resolved through `resolve_remote`, which the container backs
    ///   with a directory lookup;
    /// * the source and output tables are created in `storage`.
    pub fn deploy(
        descriptor: VirtualSensorDescriptor,
        registry: &WrapperRegistry,
        storage: &StorageManager,
        mut resolve_remote: impl FnMut(&gsn_xml::AddressSpec) -> GsnResult<(NodeId, String)>,
        deployed_at: Timestamp,
    ) -> GsnResult<VirtualSensor> {
        descriptor.validate()?;
        let output_schema = Arc::new(descriptor.output_structure.clone());
        let output_table = Self::output_table_name(&descriptor.name);

        // Output storage: permanent => unbounded, otherwise the declared history window.
        // An omitted history keeps a generous default rather than everything: the
        // original GSN accumulates the output stream in its database table, but an
        // unbounded default on the *in-memory* backend would grow until OOM on a
        // long-running container. Descriptors that really want full history say
        // `permanent-storage="true"` (durable when the container has a data directory).
        let output_retention = if descriptor.storage.permanent {
            Retention::Unbounded
        } else {
            descriptor
                .storage
                .history
                .map(|w| w.retention())
                .unwrap_or(Retention::Elements(DEFAULT_OUTPUT_HISTORY))
        };
        // Backend choice: `permanent-storage="true"` (or backend="disk") goes to the
        // persistent page engine when the container has a data directory — re-deploying
        // on the same directory recovers the stored history. Source windows below stay
        // in memory: they are bounded by their window and rebuilt from live data.
        if descriptor.storage.wants_durable() {
            storage.create_table_durable(
                &output_table,
                Arc::clone(&output_schema),
                output_retention,
            )?;
        } else {
            storage.create_table(&output_table, Arc::clone(&output_schema), output_retention)?;
        }

        let mut engine = SqlEngine::new();
        let mut streams = Vec::new();
        let deploy_result: GsnResult<()> = (|| {
            for stream_spec in &descriptor.input_streams {
                let output_query = engine.prepare(&stream_spec.query)?;
                let mut sources = Vec::new();
                for source_spec in &stream_spec.sources {
                    let source_query = engine.prepare(&source_spec.query)?;
                    let kind = if source_spec.address.is_remote() {
                        let (producer, sensor) = resolve_remote(&source_spec.address)?;
                        SourceKind::Remote { producer, sensor }
                    } else {
                        let mut wrapper = registry.create(&source_spec.address)?;
                        // Anchor the wrapper's production schedule at deployment time so a
                        // sensor added while the container has been running for a while does
                        // not emit a catch-up burst of historical elements.
                        wrapper.start(deployed_at);
                        SourceKind::Local(wrapper)
                    };
                    let schema = match &kind {
                        SourceKind::Local(w) => w.output_schema(),
                        // The schema of a remote source is learned from the first
                        // delivered element; until then use the declared output structure
                        // of this sensor (remote sources deliver the producer's outputs).
                        SourceKind::Remote { .. } => Arc::clone(&output_schema),
                    };
                    let table_name = Self::source_table_name(&descriptor.name, &source_spec.alias);
                    storage.create_table(&table_name, schema, source_spec.window.retention())?;
                    sources.push(SourceRuntime {
                        spec: source_spec.clone(),
                        kind,
                        table_name,
                        monitor: SourceMonitor::new(QualityPolicy::default()),
                        source_query,
                    });
                }
                streams.push(InputStreamRuntime {
                    name: stream_spec.name.clone(),
                    rate_limiter: RateLimiter::from_rate(stream_spec.rate_limit),
                    sources,
                    output_query,
                });
            }
            Ok(())
        })();

        if let Err(e) = deploy_result {
            // Roll back the tables created so far so a failed deployment leaves no
            // *in-memory* trace. The output table is released, not dropped: a failed
            // re-deploy of a permanent-storage sensor must not delete the on-disk
            // history it just recovered.
            let _ = storage.release_table(&output_table);
            for stream_spec in &descriptor.input_streams {
                for source_spec in &stream_spec.sources {
                    let _ = storage.drop_table(&Self::source_table_name(
                        &descriptor.name,
                        &source_spec.alias,
                    ));
                }
            }
            return Err(e);
        }

        Ok(VirtualSensor {
            descriptor,
            output_schema,
            output_table,
            streams,
            engine,
            stats: SensorStats::default(),
        })
    }

    /// Removes the sensor's storage tables (called by the container on undeploy).
    pub fn teardown(&mut self, storage: &StorageManager) {
        let _ = storage.drop_table(&self.output_table);
        for stream in &self.streams {
            for source in &stream.sources {
                let _ = storage.drop_table(&source.table_name);
            }
        }
        for stream in &mut self.streams {
            for source in &mut stream.sources {
                if let SourceKind::Local(wrapper) = &mut source.kind {
                    wrapper.shutdown();
                }
            }
        }
    }

    /// The deployment descriptor.
    pub fn descriptor(&self) -> &VirtualSensorDescriptor {
        &self.descriptor
    }

    /// The sensor name.
    pub fn name(&self) -> &VirtualSensorName {
        &self.descriptor.name
    }

    /// The declared output schema.
    pub fn output_schema(&self) -> &Arc<StreamSchema> {
        &self.output_schema
    }

    /// The storage table holding the output stream.
    pub fn output_table(&self) -> &str {
        &self.output_table
    }

    /// Processing statistics.
    pub fn stats(&self) -> SensorStats {
        self.stats
    }

    /// Per-source stream-quality counters, keyed by `(input stream, alias)`.
    pub fn source_quality(&self) -> Vec<(String, String, SourceQuality)> {
        self.streams
            .iter()
            .flat_map(|s| {
                s.sources.iter().map(move |src| {
                    (
                        s.name.clone(),
                        src.spec.alias.clone(),
                        src.monitor.quality(),
                    )
                })
            })
            .collect()
    }

    /// The remote sources this sensor depends on: `(producer node, remote sensor, source ref)`.
    pub fn remote_sources(&self) -> Vec<(NodeId, String, SourceRef)> {
        let mut out = Vec::new();
        for (si, stream) in self.streams.iter().enumerate() {
            for (ci, source) in stream.sources.iter().enumerate() {
                if let SourceKind::Remote { producer, sensor } = &source.kind {
                    out.push((*producer, sensor.clone(), (si, ci)));
                }
            }
        }
        out
    }

    /// Adapts a remote source's storage table to the schema actually delivered by the
    /// producer.
    ///
    /// Remote schemas are not known at deployment time (the directory stores only
    /// discovery metadata), so the source table is created with a placeholder schema and
    /// re-created from the first delivered element.  Once data has been stored, a schema
    /// change is an error — the producer changed shape mid-stream.
    pub fn ensure_remote_schema(
        &mut self,
        source_ref: SourceRef,
        element: &StreamElement,
        storage: &StorageManager,
    ) -> GsnResult<()> {
        let (stream_idx, source_idx) = source_ref;
        let source = self
            .streams
            .get(stream_idx)
            .and_then(|s| s.sources.get(source_idx))
            .ok_or_else(|| GsnError::internal("invalid source reference"))?;
        if !matches!(source.kind, SourceKind::Remote { .. }) {
            return Ok(());
        }
        let table = storage.table(&source.table_name)?;
        let (compatible, empty) = {
            let guard = table.read();
            (
                guard.schema().is_compatible_with(element.schema()),
                guard.is_empty(),
            )
        };
        if compatible {
            return Ok(());
        }
        if !empty {
            return Err(GsnError::storage(format!(
                "remote source `{}` changed its schema mid-stream",
                source.spec.alias
            )));
        }
        storage.drop_table(&source.table_name)?;
        storage.create_table(
            &source.table_name,
            Arc::clone(element.schema()),
            source.spec.window.retention(),
        )?;
        Ok(())
    }

    /// Polls every local wrapper for elements due by `now`.
    pub fn poll_local_sources(&mut self, now: Timestamp) -> Vec<(SourceRef, StreamElement)> {
        let mut arrivals = Vec::new();
        for (si, stream) in self.streams.iter_mut().enumerate() {
            for (ci, source) in stream.sources.iter_mut().enumerate() {
                if let SourceKind::Local(wrapper) = &mut source.kind {
                    match wrapper.poll(now) {
                        Ok(elements) => {
                            for e in elements {
                                arrivals.push(((si, ci), e));
                            }
                        }
                        Err(err) if err.is_transient() => {
                            // Transient wrapper failures are a stream-quality event, not a
                            // sensor failure.
                            source.monitor.check_silence(now);
                        }
                        Err(_) => {
                            // Permanent wrapper errors are surfaced through statistics.
                        }
                    }
                }
            }
        }
        arrivals
    }

    /// Checks every source for silence (no data within the quality policy's threshold).
    pub fn check_silence(&mut self, now: Timestamp) -> Vec<(String, String)> {
        let mut newly_silent = Vec::new();
        for stream in &mut self.streams {
            for source in &mut stream.sources {
                if source.monitor.check_silence(now) {
                    newly_silent.push((stream.name.clone(), source.spec.alias.clone()));
                }
            }
        }
        newly_silent
    }

    /// Handles the arrival of one element for one source: runs the full pipeline and
    /// returns the new output element, if one was produced.
    pub fn process_arrival(
        &mut self,
        source_ref: SourceRef,
        element: StreamElement,
        now: Timestamp,
        storage: &StorageManager,
    ) -> GsnResult<Option<StreamElement>> {
        let started = Instant::now();
        self.stats.arrivals += 1;
        let (stream_idx, source_idx) = source_ref;
        let result = self.run_pipeline(stream_idx, source_idx, element, now, storage);
        let elapsed = started.elapsed().as_micros() as u64;
        self.stats.total_processing_micros += elapsed;
        self.stats.last_processing_micros = elapsed;
        match &result {
            Ok(Some(_)) => self.stats.outputs += 1,
            Ok(None) => {}
            Err(_) => self.stats.errors += 1,
        }
        result
    }

    fn run_pipeline(
        &mut self,
        stream_idx: usize,
        source_idx: usize,
        element: StreamElement,
        now: Timestamp,
        storage: &StorageManager,
    ) -> GsnResult<Option<StreamElement>> {
        let stream = self
            .streams
            .get_mut(stream_idx)
            .ok_or_else(|| GsnError::internal("invalid input stream index"))?;
        let source = stream
            .sources
            .get_mut(source_idx)
            .ok_or_else(|| GsnError::internal("invalid source index"))?;

        // Step 1: ISM intake (timestamping, quality accounting).
        let element = source.monitor.intake(element, now);

        // Store the raw element in the source's windowed table.
        storage.insert(&source.table_name, element, now)?;

        // Rate bound: the element is retained in the window but does not trigger a
        // pipeline execution when the input stream exceeds its configured rate.
        if !stream.rate_limiter.admit(now) {
            source.monitor.record_rate_limited();
            return Ok(None);
        }
        self.stats.triggers += 1;

        // Steps 2–3: per-source window evaluation + source queries into temporary relations.
        let mut temp_catalog = MemoryCatalog::new();
        for src in &stream.sources {
            let wrapper_catalog = storage.windowed_catalog(
                &[
                    CatalogView::new("wrapper", &src.table_name, src.spec.window)
                        .with_sampling(src.spec.sampling_rate),
                ],
                now,
            )?;
            let temp: Relation = self
                .engine
                .execute_prepared(&src.source_query, &wrapper_catalog)?;
            temp_catalog.register(&src.spec.alias, temp);
        }

        // Step 4: the output query over the temporary relations.
        let output_relation = self
            .engine
            .execute_prepared(&stream.output_query, &temp_catalog)?;

        // Step 5: bind the result to the output structure, persist, and hand it back for
        // notification by the container.
        let Some(output_element) = output_relation.to_stream_element(&self.output_schema, now)?
        else {
            return Ok(None);
        };
        let stored = storage.insert(&self.output_table, output_element, now)?;
        Ok(Some(stored))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsn_types::{DataType, Value};
    use gsn_xml::{AddressSpec, InputStreamSpec};

    fn mote_descriptor(name: &str, interval_ms: u32) -> VirtualSensorDescriptor {
        VirtualSensorDescriptor::builder(name)
            .unwrap()
            .output_field("avg_temp", DataType::Double)
            .unwrap()
            .permanent_storage(true)
            .input_stream(
                InputStreamSpec::new("main", "select * from src1").with_source(
                    StreamSourceSpec::new(
                        "src1",
                        AddressSpec::new("mote")
                            .with_predicate("interval", &interval_ms.to_string())
                            .with_predicate("seed", "11"),
                        "select avg(temperature) as avg_temp from WRAPPER",
                    )
                    .with_window(gsn_storage::WindowSpec::Count(10)),
                ),
            )
            .build()
            .unwrap()
    }

    fn deploy(descriptor: VirtualSensorDescriptor, storage: &StorageManager) -> VirtualSensor {
        let registry = WrapperRegistry::with_builtins();
        VirtualSensor::deploy(
            descriptor,
            &registry,
            storage,
            |_| Err(GsnError::not_found("no remote resolution in this test")),
            Timestamp::EPOCH,
        )
        .unwrap()
    }

    #[test]
    fn deploy_creates_tables_and_prepared_queries() {
        let storage = StorageManager::new();
        let vs = deploy(mote_descriptor("room-temp", 100), &storage);
        assert_eq!(vs.output_table(), "room_temp");
        assert!(storage.has_table("room_temp"));
        assert!(storage.has_table("room_temp__src1"));
        assert_eq!(vs.output_schema().names(), vec!["AVG_TEMP"]);
        assert!(vs.remote_sources().is_empty());
    }

    #[test]
    fn poll_and_process_produces_outputs() {
        let storage = StorageManager::new();
        let mut vs = deploy(mote_descriptor("room-temp", 100), &storage);
        let arrivals = vs.poll_local_sources(Timestamp(1_000));
        assert_eq!(arrivals.len(), 10);
        let mut outputs = 0;
        for (source_ref, element) in arrivals {
            let ts = element.timestamp();
            if vs
                .process_arrival(source_ref, element, ts, &storage)
                .unwrap()
                .is_some()
            {
                outputs += 1;
            }
        }
        assert_eq!(outputs, 10);
        let stats = vs.stats();
        assert_eq!(stats.arrivals, 10);
        assert_eq!(stats.triggers, 10);
        assert_eq!(stats.outputs, 10);
        assert_eq!(stats.errors, 0);
        assert!(stats.mean_processing_ms() >= 0.0);

        // The output table now holds 10 averaged readings, queryable through SQL.
        let table = storage.table("room_temp").unwrap();
        assert_eq!(table.read().len(), 10);
        let quality = vs.source_quality();
        assert_eq!(quality.len(), 1);
        assert_eq!(quality[0].2.accepted, 10);
    }

    #[test]
    fn output_values_are_window_averages() {
        let storage = StorageManager::new();
        // Use a push wrapper so the test controls the exact readings.
        let registry = WrapperRegistry::with_builtins();
        let descriptor = VirtualSensorDescriptor::builder("avg-two")
            .unwrap()
            .output_field("avg_temp", DataType::Double)
            .unwrap()
            .permanent_storage(true)
            .input_stream(
                InputStreamSpec::new("main", "select * from s").with_source(
                    StreamSourceSpec::new(
                        "s",
                        AddressSpec::new("push")
                            .with_predicate("channel", "test-feed")
                            .with_predicate("field-1", "temperature")
                            .with_predicate("type-1", "integer"),
                        "select avg(temperature) as avg_temp from WRAPPER",
                    )
                    .with_window(gsn_storage::WindowSpec::Count(2)),
                ),
            )
            .build()
            .unwrap();
        let mut vs = VirtualSensor::deploy(
            descriptor,
            &registry,
            &storage,
            |_| Err(GsnError::not_found("unused")),
            Timestamp::EPOCH,
        )
        .unwrap();

        let schema =
            Arc::new(StreamSchema::from_pairs(&[("temperature", DataType::Integer)]).unwrap());
        for (i, temp) in [10i64, 20, 40].iter().enumerate() {
            let e = StreamElement::new(schema.clone(), vec![Value::Integer(*temp)], Timestamp(0))
                .unwrap();
            let out = vs
                .process_arrival((0, 0), e, Timestamp((i as i64 + 1) * 100), &storage)
                .unwrap()
                .unwrap();
            let avg = out.value("AVG_TEMP").unwrap().as_double().unwrap();
            match i {
                0 => assert_eq!(avg, 10.0),
                1 => assert_eq!(avg, 15.0),
                _ => assert_eq!(avg, 30.0), // count window of 2: (20+40)/2
            }
        }
        // Elements arriving without a timestamp were stamped by the ISM.
        assert_eq!(vs.source_quality()[0].2.locally_timestamped, 3);
    }

    #[test]
    fn rate_limit_suppresses_excess_triggers() {
        let storage = StorageManager::new();
        let descriptor = VirtualSensorDescriptor::builder("bounded")
            .unwrap()
            .output_field("avg_temp", DataType::Double)
            .unwrap()
            .input_stream(
                InputStreamSpec::new("main", "select * from src1")
                    .with_rate_limit(10) // at most one trigger per 100 ms
                    .with_source(
                        StreamSourceSpec::new(
                            "src1",
                            AddressSpec::new("mote").with_predicate("interval", "10"),
                            "select avg(temperature) as avg_temp from WRAPPER",
                        )
                        .with_window(gsn_storage::WindowSpec::Count(100)),
                    ),
            )
            .build()
            .unwrap();
        let mut vs = deploy(descriptor, &storage);
        let arrivals = vs.poll_local_sources(Timestamp(1_000));
        assert_eq!(arrivals.len(), 100);
        let mut outputs = 0;
        for (source_ref, element) in arrivals {
            let ts = element.timestamp();
            if vs
                .process_arrival(source_ref, element, ts, &storage)
                .unwrap()
                .is_some()
            {
                outputs += 1;
            }
        }
        assert_eq!(outputs, 10);
        let quality = &vs.source_quality()[0].2;
        assert_eq!(quality.accepted, 100);
        assert_eq!(quality.rate_limited, 90);
        // Every element is still retained in the window even when it did not trigger.
        assert_eq!(storage.table("bounded__src1").unwrap().read().len(), 100);
    }

    #[test]
    fn failed_deployment_rolls_back_tables() {
        let storage = StorageManager::new();
        let registry = WrapperRegistry::with_builtins();
        // The second source names an unknown wrapper, so deployment fails after the first
        // source's table was created.
        let descriptor = VirtualSensorDescriptor::builder("broken")
            .unwrap()
            .output_field("v", DataType::Double)
            .unwrap()
            .input_stream(
                InputStreamSpec::new("main", "select * from a")
                    .with_source(StreamSourceSpec::new(
                        "a",
                        AddressSpec::new("mote"),
                        "select temperature as v from WRAPPER",
                    ))
                    .with_source(StreamSourceSpec::new(
                        "b",
                        AddressSpec::new("hyperspectral-imager"),
                        "select * from WRAPPER",
                    )),
            )
            .build()
            .unwrap();
        let result = VirtualSensor::deploy(
            descriptor,
            &registry,
            &storage,
            |_| Err(GsnError::not_found("unused")),
            Timestamp::EPOCH,
        );
        assert!(result.is_err());
        assert!(
            storage.table_names().is_empty(),
            "{:?}",
            storage.table_names()
        );
    }

    #[test]
    fn remote_sources_are_resolved_through_the_callback() {
        let storage = StorageManager::new();
        let registry = WrapperRegistry::with_builtins();
        let descriptor = VirtualSensorDescriptor::builder("follower")
            .unwrap()
            .output_field("avg_temp", DataType::Double)
            .unwrap()
            .input_stream(
                InputStreamSpec::new("main", "select * from r").with_source(
                    StreamSourceSpec::new(
                        "r",
                        AddressSpec::new("remote")
                            .with_predicate("type", "temperature")
                            .with_predicate("location", "bc143"),
                        "select avg(avg_temp) as avg_temp from WRAPPER",
                    )
                    .with_window(gsn_storage::WindowSpec::Count(5)),
                ),
            )
            .build()
            .unwrap();
        let vs = VirtualSensor::deploy(
            descriptor,
            &registry,
            &storage,
            |address| {
                assert_eq!(address.predicate("location"), Some("bc143"));
                Ok((NodeId::new(9), "room-bc143-temperature".to_owned()))
            },
            Timestamp::EPOCH,
        )
        .unwrap();
        let remotes = vs.remote_sources();
        assert_eq!(remotes.len(), 1);
        assert_eq!(remotes[0].0, NodeId::new(9));
        assert_eq!(remotes[0].1, "room-bc143-temperature");
        assert_eq!(remotes[0].2, (0, 0));
    }

    #[test]
    fn teardown_drops_tables_and_duplicate_deploy_fails() {
        let storage = StorageManager::new();
        let mut vs = deploy(mote_descriptor("once", 100), &storage);
        // A second deployment of the same name collides on the output table.
        let registry = WrapperRegistry::with_builtins();
        let dup = VirtualSensor::deploy(
            mote_descriptor("once", 100),
            &registry,
            &storage,
            |_| Err(GsnError::not_found("unused")),
            Timestamp::EPOCH,
        );
        assert!(dup.is_err());
        vs.teardown(&storage);
        assert!(storage.table_names().is_empty());
    }

    #[test]
    fn silence_detection_reports_quiet_sources() {
        let storage = StorageManager::new();
        let mut vs = deploy(mote_descriptor("quiet", 100), &storage);
        // Feed one arrival, then let a long time pass with no data.
        let arrivals = vs.poll_local_sources(Timestamp(100));
        let (source_ref, element) = arrivals.into_iter().next().unwrap();
        vs.process_arrival(source_ref, element, Timestamp(100), &storage)
            .unwrap();
        let silent = vs.check_silence(Timestamp(100 + 31_000));
        assert_eq!(silent.len(), 1);
        assert_eq!(silent[0].1, "src1");
        assert_eq!(vs.check_silence(Timestamp(100 + 62_000)).len(), 0);
    }
}
