//! The life-cycle manager's worker pool.
//!
//! Descriptors grant each virtual sensor a `<life-cycle pool-size="N">` (paper, Figure 1):
//! the number of threads available for its processing.  In GSN-RS this pool backs the
//! container's sharded step loop (`ContainerConfig::workers > 1`): each step submits one
//! job per sensor shard so that slow sensors (large camera frames) do not stall fast
//! ones, while `workers = 1` keeps the deterministic sequential path under a simulated
//! clock.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender};
use gsn_types::{GsnError, GsnResult};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size worker pool.
#[derive(Debug)]
pub struct WorkerPool {
    name: String,
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    submitted: Arc<AtomicU64>,
    completed: Arc<AtomicU64>,
    shutting_down: Arc<AtomicBool>,
}

impl WorkerPool {
    /// Creates a pool with `size` worker threads (at least one).
    pub fn new(name: &str, size: usize) -> WorkerPool {
        let size = size.max(1);
        let (sender, receiver): (Sender<Job>, Receiver<Job>) = unbounded();
        let completed = Arc::new(AtomicU64::new(0));
        let shutting_down = Arc::new(AtomicBool::new(false));
        let mut workers = Vec::with_capacity(size);
        for i in 0..size {
            let receiver = receiver.clone();
            let completed = Arc::clone(&completed);
            let thread_name = format!("{name}-worker-{i}");
            let handle = std::thread::Builder::new()
                .name(thread_name)
                .spawn(move || {
                    while let Ok(job) = receiver.recv() {
                        // A panicking job must not kill the worker: the pool would
                        // silently lose a thread for the container's lifetime and
                        // `backlog()` would report a permanent deficit.
                        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                        completed.fetch_add(1, Ordering::SeqCst);
                    }
                })
                .expect("failed to spawn worker thread");
            workers.push(handle);
        }
        WorkerPool {
            name: name.to_owned(),
            sender: Some(sender),
            workers,
            submitted: Arc::new(AtomicU64::new(0)),
            completed,
            shutting_down,
        }
    }

    /// The pool name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// Submits a job for asynchronous execution.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) -> GsnResult<()> {
        if self.shutting_down.load(Ordering::SeqCst) {
            return Err(GsnError::shutting_down(format!(
                "worker pool `{}` is shutting down",
                self.name
            )));
        }
        let sender = self
            .sender
            .as_ref()
            .ok_or_else(|| GsnError::shutting_down("worker pool has been shut down"))?;
        self.submitted.fetch_add(1, Ordering::SeqCst);
        sender
            .send(Box::new(job))
            .map_err(|_| GsnError::shutting_down("worker pool channel is closed"))
    }

    /// `(submitted, completed)` job counts.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.submitted.load(Ordering::SeqCst),
            self.completed.load(Ordering::SeqCst),
        )
    }

    /// Number of jobs submitted but not yet completed.
    pub fn backlog(&self) -> u64 {
        let (submitted, completed) = self.stats();
        submitted.saturating_sub(completed)
    }

    /// Blocks until every submitted job has completed (spin + yield; the pool is used for
    /// short pipeline jobs, not long-running work).
    pub fn wait_idle(&self) {
        while self.backlog() > 0 {
            std::thread::yield_now();
        }
    }

    /// Stops accepting work, waits for queued jobs and joins the workers.
    pub fn shutdown(&mut self) {
        self.shutting_down.store(true, Ordering::SeqCst);
        // Dropping the sender closes the channel; workers exit after draining it.
        self.sender.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn executes_submitted_jobs() {
        let pool = WorkerPool::new("test", 4);
        assert_eq!(pool.size(), 4);
        assert_eq!(pool.name(), "test");
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            pool.submit(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::SeqCst), 100);
        let (submitted, completed) = pool.stats();
        assert_eq!(submitted, 100);
        assert_eq!(completed, 100);
        assert_eq!(pool.backlog(), 0);
    }

    #[test]
    fn zero_size_is_clamped_to_one() {
        let pool = WorkerPool::new("tiny", 0);
        assert_eq!(pool.size(), 1);
        let flag = Arc::new(AtomicBool::new(false));
        let f = Arc::clone(&flag);
        pool.submit(move || f.store(true, Ordering::SeqCst))
            .unwrap();
        pool.wait_idle();
        assert!(flag.load(Ordering::SeqCst));
    }

    #[test]
    fn shutdown_drains_and_rejects_new_work() {
        let mut pool = WorkerPool::new("drain", 2);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let counter = Arc::clone(&counter);
            pool.submit(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 50);
        // Submitting after shutdown neither hangs nor panics: it returns a typed,
        // transient `shutting-down` error the caller can retry or surface.
        let err = pool.submit(|| {}).unwrap_err();
        assert_eq!(err.category(), "shutting-down");
        assert!(err.is_transient());
        // Repeated shutdown is idempotent, and stats survive it.
        pool.shutdown();
        let (submitted, completed) = pool.stats();
        assert_eq!(submitted, 50);
        assert_eq!(completed, 50);
    }

    #[test]
    fn panicking_jobs_do_not_kill_workers() {
        let pool = WorkerPool::new("panicky", 1);
        pool.submit(|| panic!("job exploded")).unwrap();
        // The single worker survived the panic and still executes later jobs.
        let flag = Arc::new(AtomicBool::new(false));
        let f = Arc::clone(&flag);
        pool.submit(move || f.store(true, Ordering::SeqCst))
            .unwrap();
        pool.wait_idle();
        assert!(flag.load(Ordering::SeqCst));
        let (submitted, completed) = pool.stats();
        assert_eq!(submitted, 2);
        assert_eq!(completed, 2);
    }

    #[test]
    fn jobs_run_concurrently() {
        let pool = WorkerPool::new("parallel", 4);
        let (tx, rx) = unbounded();
        // Four jobs that each wait until all four have started would deadlock on a
        // single-threaded pool; with four workers they all rendezvous.
        let barrier = Arc::new(std::sync::Barrier::new(4));
        for _ in 0..4 {
            let barrier = Arc::clone(&barrier);
            let tx = tx.clone();
            pool.submit(move || {
                barrier.wait();
                tx.send(()).unwrap();
            })
            .unwrap();
        }
        for _ in 0..4 {
            rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap();
        }
    }
}
