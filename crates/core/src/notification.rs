//! The notification manager.
//!
//! "The notification manager deals with the delivery of events and query results to the
//! registered clients.  The notification manager has an extensible architecture which
//! allows the user to customize it to any required notification channel" (paper,
//! Section 4).
//!
//! GSN-RS ships four channel kinds: an in-process crossbeam channel (the common case for
//! embedding applications), a callback, an in-memory log sink (examples, tests), and
//! remote delivery to a subscribed GSN node through the simulated network — including the
//! per-subscriber disconnect buffer used while a peer is unreachable.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};
use gsn_network::{Message, SimulatedNetwork, WireElement};
use gsn_types::{GsnError, GsnResult, NodeId, StreamElement, Timestamp};
use parking_lot::Mutex;

/// A delivered notification: a new output element (or client-query result summary) of a
/// virtual sensor.
#[derive(Debug, Clone, PartialEq)]
pub struct Notification {
    /// The virtual sensor that produced the data.
    pub sensor: String,
    /// The new output element.
    pub element: StreamElement,
    /// When the notification was generated (container clock).
    pub generated_at: Timestamp,
}

/// Identifies a local subscription.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubscriptionId(pub u64);

/// A local notification channel.
pub enum NotificationChannel {
    /// Deliver into a crossbeam channel.
    Channel(Sender<Notification>),
    /// Invoke a callback.
    Callback(Box<dyn Fn(&Notification) + Send + Sync>),
    /// Append to a shared in-memory log.
    Log(Arc<Mutex<Vec<Notification>>>),
}

impl std::fmt::Debug for NotificationChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NotificationChannel::Channel(_) => f.write_str("Channel"),
            NotificationChannel::Callback(_) => f.write_str("Callback"),
            NotificationChannel::Log(_) => f.write_str("Log"),
        }
    }
}

#[derive(Debug)]
struct LocalSubscription {
    sensor: String,
    channel: NotificationChannel,
}

#[derive(Debug)]
struct RemoteSubscriber {
    node: NodeId,
    sensor: String,
    /// Elements buffered while the subscriber is unreachable (the descriptor's
    /// `disconnect-buffer` behaviour, applied on the producing side).
    buffer: VecDeque<StreamElement>,
    buffer_capacity: usize,
    delivered: u64,
    dropped: u64,
}

/// Delivery statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NotificationStats {
    /// Notifications delivered to local channels.
    pub local_delivered: u64,
    /// Local deliveries that failed (closed channel) and led to subscription removal.
    pub local_failed: u64,
    /// Stream elements delivered to remote subscribers.
    pub remote_delivered: u64,
    /// Stream elements buffered for disconnected remote subscribers.
    pub remote_buffered: u64,
    /// Stream elements dropped because a disconnect buffer overflowed.
    pub remote_dropped: u64,
}

/// The notification manager of one container.
#[derive(Debug)]
pub struct NotificationManager {
    node: NodeId,
    next_id: u64,
    local: HashMap<SubscriptionId, LocalSubscription>,
    remote: Vec<RemoteSubscriber>,
    default_buffer_capacity: usize,
    stats: NotificationStats,
}

impl NotificationManager {
    /// Creates a manager for a node.
    pub fn new(node: NodeId, default_buffer_capacity: usize) -> NotificationManager {
        NotificationManager {
            node,
            next_id: 1,
            local: HashMap::new(),
            remote: Vec::new(),
            default_buffer_capacity: default_buffer_capacity.max(1),
            stats: NotificationStats::default(),
        }
    }

    /// Subscribes a local channel to a sensor's output, returning the subscription id and
    /// the receiving end.
    pub fn subscribe_channel(&mut self, sensor: &str) -> (SubscriptionId, Receiver<Notification>) {
        let (tx, rx) = unbounded();
        let id = self.add_local(sensor, NotificationChannel::Channel(tx));
        (id, rx)
    }

    /// Subscribes a callback.
    pub fn subscribe_callback(
        &mut self,
        sensor: &str,
        callback: impl Fn(&Notification) + Send + Sync + 'static,
    ) -> SubscriptionId {
        self.add_local(sensor, NotificationChannel::Callback(Box::new(callback)))
    }

    /// Subscribes an in-memory log sink.
    pub fn subscribe_log(
        &mut self,
        sensor: &str,
    ) -> (SubscriptionId, Arc<Mutex<Vec<Notification>>>) {
        let log = Arc::new(Mutex::new(Vec::new()));
        let id = self.add_local(sensor, NotificationChannel::Log(Arc::clone(&log)));
        (id, log)
    }

    fn add_local(&mut self, sensor: &str, channel: NotificationChannel) -> SubscriptionId {
        let id = SubscriptionId(self.next_id);
        self.next_id += 1;
        self.local.insert(
            id,
            LocalSubscription {
                sensor: sensor.to_ascii_lowercase(),
                channel,
            },
        );
        id
    }

    /// Cancels a local subscription.
    pub fn unsubscribe(&mut self, id: SubscriptionId) -> GsnResult<()> {
        self.local
            .remove(&id)
            .map(|_| ())
            .ok_or_else(|| GsnError::not_found(format!("no subscription {id:?}")))
    }

    /// Registers a remote subscriber (another GSN node) for a sensor's output.
    pub fn add_remote_subscriber(&mut self, node: NodeId, sensor: &str) {
        let sensor = sensor.to_ascii_lowercase();
        if self
            .remote
            .iter()
            .any(|r| r.node == node && r.sensor == sensor)
        {
            return;
        }
        self.remote.push(RemoteSubscriber {
            node,
            sensor,
            buffer: VecDeque::new(),
            buffer_capacity: self.default_buffer_capacity,
            delivered: 0,
            dropped: 0,
        });
    }

    /// Removes a remote subscriber.
    pub fn remove_remote_subscriber(&mut self, node: NodeId, sensor: &str) {
        let sensor = sensor.to_ascii_lowercase();
        self.remote
            .retain(|r| !(r.node == node && r.sensor == sensor));
    }

    /// Number of local subscriptions for a sensor (all sensors when `None`).
    pub fn local_subscriber_count(&self, sensor: Option<&str>) -> usize {
        match sensor {
            None => self.local.len(),
            Some(s) => self
                .local
                .values()
                .filter(|sub| sub.sensor.eq_ignore_ascii_case(s))
                .count(),
        }
    }

    /// Number of remote subscribers across all sensors.
    pub fn remote_subscriber_count(&self) -> usize {
        self.remote.len()
    }

    /// Delivers a new output element of `sensor` to every local and remote subscriber.
    pub fn notify(
        &mut self,
        sensor: &str,
        element: &StreamElement,
        now: Timestamp,
        network: Option<&SimulatedNetwork>,
    ) {
        let notification = Notification {
            sensor: sensor.to_ascii_lowercase(),
            element: element.clone(),
            generated_at: now,
        };

        // Local channels.
        let mut dead = Vec::new();
        for (id, sub) in &self.local {
            if !sub.sensor.eq_ignore_ascii_case(sensor) {
                continue;
            }
            let ok = match &sub.channel {
                NotificationChannel::Channel(tx) => tx.send(notification.clone()).is_ok(),
                NotificationChannel::Callback(cb) => {
                    cb(&notification);
                    true
                }
                NotificationChannel::Log(log) => {
                    log.lock().push(notification.clone());
                    true
                }
            };
            if ok {
                self.stats.local_delivered += 1;
            } else {
                self.stats.local_failed += 1;
                dead.push(*id);
            }
        }
        for id in dead {
            self.local.remove(&id);
        }

        // Remote subscribers.
        if let Some(network) = network {
            let node = self.node;
            for remote in &mut self.remote {
                if !remote.sensor.eq_ignore_ascii_case(sensor) {
                    continue;
                }
                // Flush anything buffered from an earlier disconnection first, so the
                // subscriber observes elements in order.
                let mut pending: Vec<StreamElement> = remote.buffer.drain(..).collect();
                pending.push(element.clone());
                let mut delivered_up_to = 0;
                for (i, e) in pending.iter().enumerate() {
                    let message = Message::StreamDelivery {
                        sensor: sensor.to_ascii_lowercase(),
                        element: WireElement::from_element(e),
                    };
                    match network.send(node, remote.node, message, now) {
                        Ok(_) => {
                            remote.delivered += 1;
                            self.stats.remote_delivered += 1;
                            delivered_up_to = i + 1;
                        }
                        Err(_) => break,
                    }
                }
                // Whatever was not delivered goes (back) into the disconnect buffer.
                for e in pending.into_iter().skip(delivered_up_to) {
                    if remote.buffer.len() >= remote.buffer_capacity {
                        remote.buffer.pop_front();
                        remote.dropped += 1;
                        self.stats.remote_dropped += 1;
                    }
                    remote.buffer.push_back(e);
                    self.stats.remote_buffered += 1;
                }
            }
        }
    }

    /// Per-remote-subscriber status: `(node, sensor, buffered, delivered, dropped)`.
    pub fn remote_status(&self) -> Vec<(NodeId, String, usize, u64, u64)> {
        self.remote
            .iter()
            .map(|r| {
                (
                    r.node,
                    r.sensor.clone(),
                    r.buffer.len(),
                    r.delivered,
                    r.dropped,
                )
            })
            .collect()
    }

    /// Delivery statistics.
    pub fn stats(&self) -> NotificationStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsn_types::{DataType, StreamSchema, Value};

    fn element(v: i64) -> StreamElement {
        let schema = Arc::new(StreamSchema::from_pairs(&[("v", DataType::Integer)]).unwrap());
        StreamElement::new(schema, vec![Value::Integer(v)], Timestamp(v)).unwrap()
    }

    #[test]
    fn channel_subscription_receives_matching_sensors_only() {
        let mut nm = NotificationManager::new(NodeId::LOCAL, 8);
        let (_id, rx) = nm.subscribe_channel("room-temp");
        nm.notify("room-temp", &element(1), Timestamp(1), None);
        nm.notify("other", &element(2), Timestamp(2), None);
        nm.notify("ROOM-TEMP", &element(3), Timestamp(3), None);
        let received: Vec<Notification> = rx.try_iter().collect();
        assert_eq!(received.len(), 2);
        assert_eq!(received[0].element.value("V"), Some(Value::Integer(1)));
        assert_eq!(received[1].generated_at, Timestamp(3));
        assert_eq!(nm.stats().local_delivered, 2);
    }

    #[test]
    fn callback_and_log_subscriptions() {
        let mut nm = NotificationManager::new(NodeId::LOCAL, 8);
        let hits = Arc::new(Mutex::new(0u32));
        let hits_clone = Arc::clone(&hits);
        nm.subscribe_callback("cam", move |_| {
            *hits_clone.lock() += 1;
        });
        let (_, log) = nm.subscribe_log("cam");
        nm.notify("cam", &element(1), Timestamp(1), None);
        nm.notify("cam", &element(2), Timestamp(2), None);
        assert_eq!(*hits.lock(), 2);
        assert_eq!(log.lock().len(), 2);
        assert_eq!(nm.local_subscriber_count(Some("cam")), 2);
        assert_eq!(nm.local_subscriber_count(None), 2);
    }

    #[test]
    fn unsubscribe_and_dead_channel_cleanup() {
        let mut nm = NotificationManager::new(NodeId::LOCAL, 8);
        let (id, rx) = nm.subscribe_channel("s");
        assert_eq!(nm.local_subscriber_count(None), 1);
        nm.unsubscribe(id).unwrap();
        assert!(nm.unsubscribe(id).is_err());
        assert_eq!(nm.local_subscriber_count(None), 0);

        // A dropped receiver causes the subscription to be garbage-collected on the next
        // notification.
        let (_id2, rx2) = nm.subscribe_channel("s");
        drop(rx2);
        drop(rx);
        nm.notify("s", &element(1), Timestamp(1), None);
        assert_eq!(nm.local_subscriber_count(None), 0);
        assert_eq!(nm.stats().local_failed, 1);
    }

    #[test]
    fn remote_delivery_goes_through_the_network() {
        let mut nm = NotificationManager::new(NodeId::new(1), 8);
        let network = SimulatedNetwork::new();
        network.add_node(NodeId::new(1)).unwrap();
        network.add_node(NodeId::new(2)).unwrap();
        nm.add_remote_subscriber(NodeId::new(2), "motes");
        nm.add_remote_subscriber(NodeId::new(2), "motes"); // duplicate is ignored
        assert_eq!(nm.remote_subscriber_count(), 1);
        nm.notify("motes", &element(5), Timestamp(10), Some(&network));
        let delivered = network.receive(NodeId::new(2), Timestamp(1_000));
        assert_eq!(delivered.len(), 1);
        match &delivered[0].message {
            Message::StreamDelivery { sensor, element } => {
                assert_eq!(sensor, "motes");
                assert_eq!(element.values[0], Value::Integer(5));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(nm.stats().remote_delivered, 1);
    }

    #[test]
    fn disconnect_buffer_holds_and_flushes_in_order() {
        let mut nm = NotificationManager::new(NodeId::new(1), 3);
        let network = SimulatedNetwork::new();
        network.add_node(NodeId::new(1)).unwrap();
        network.add_node(NodeId::new(2)).unwrap();
        nm.add_remote_subscriber(NodeId::new(2), "motes");

        network.partition(NodeId::new(1), NodeId::new(2));
        for i in 0..5 {
            nm.notify("motes", &element(i), Timestamp(i), Some(&network));
        }
        // Capacity 3: elements 0 and 1 were dropped, 2..4 buffered.
        let status = nm.remote_status();
        assert_eq!(status[0].2, 3);
        assert_eq!(nm.stats().remote_dropped, 2);

        network.heal_partition(NodeId::new(1), NodeId::new(2));
        nm.notify("motes", &element(5), Timestamp(5), Some(&network));
        let received = network.receive(NodeId::new(2), Timestamp(1_000));
        let values: Vec<Value> = received
            .iter()
            .map(|e| match &e.message {
                Message::StreamDelivery { element, .. } => element.values[0].clone(),
                _ => panic!(),
            })
            .collect();
        assert_eq!(
            values,
            vec![
                Value::Integer(2),
                Value::Integer(3),
                Value::Integer(4),
                Value::Integer(5)
            ]
        );
        assert_eq!(nm.remote_status()[0].2, 0);
    }

    #[test]
    fn remove_remote_subscriber_stops_delivery() {
        let mut nm = NotificationManager::new(NodeId::new(1), 8);
        let network = SimulatedNetwork::new();
        network.add_node(NodeId::new(1)).unwrap();
        network.add_node(NodeId::new(2)).unwrap();
        nm.add_remote_subscriber(NodeId::new(2), "motes");
        nm.remove_remote_subscriber(NodeId::new(2), "motes");
        nm.notify("motes", &element(1), Timestamp(1), Some(&network));
        assert!(network.receive(NodeId::new(2), Timestamp(100)).is_empty());
        assert_eq!(nm.remote_subscriber_count(), 0);
    }
}
