//! The input stream manager (ISM): stream-quality management.
//!
//! "the input stream manager (ISM) manages the input streams and ensures stream quality
//! (disconnections, unexpected delays, missing values, etc.)" (paper, Section 4).  The ISM
//! sits between the wrappers / remote deliveries and the storage layer: it timestamps
//! arrivals that carry no timestamp (processing step 1 of Section 3), enforces the
//! per-input-stream rate bound, detects silent sources and missing values, and keeps the
//! per-source quality counters surfaced in the container status report.

use gsn_types::{Duration, StreamElement, Timestamp, Value};

/// Quality counters for one stream source.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SourceQuality {
    /// Elements accepted from this source.
    pub accepted: u64,
    /// Elements that arrived without a timestamp and were stamped with the local clock.
    pub locally_timestamped: u64,
    /// Elements rejected by the rate bound.
    pub rate_limited: u64,
    /// Elements containing at least one NULL field (missing values).
    pub with_missing_values: u64,
    /// Arrivals whose observation delay (reception − production) exceeded the threshold.
    pub delayed: u64,
    /// Times the source was detected silent (no arrival for more than the silence
    /// threshold).
    pub silence_episodes: u64,
}

/// Per-input-stream rate bounding: GSN supports "bounding the rate of a data stream in
/// order to avoid overloads of the system" (Section 3).
#[derive(Debug, Clone)]
pub struct RateLimiter {
    /// Minimum spacing between accepted elements.
    min_spacing: Duration,
    last_accepted: Option<Timestamp>,
}

impl RateLimiter {
    /// Creates a limiter from an elements-per-second bound; `None` disables limiting.
    pub fn from_rate(per_second: Option<u32>) -> RateLimiter {
        let min_spacing = match per_second {
            None | Some(0) => Duration::ZERO,
            Some(r) => Duration::from_millis((1_000 / r.max(1) as i64).max(1)),
        };
        RateLimiter {
            min_spacing,
            last_accepted: None,
        }
    }

    /// True when an element arriving at `at` is admitted.
    pub fn admit(&mut self, at: Timestamp) -> bool {
        if self.min_spacing.is_zero() {
            return true;
        }
        match self.last_accepted {
            Some(last) if at - last < self.min_spacing => false,
            _ => {
                self.last_accepted = Some(at);
                true
            }
        }
    }

    /// The configured minimum spacing (zero = unlimited).
    pub fn min_spacing(&self) -> Duration {
        self.min_spacing
    }
}

/// Stream-quality policy for one source.
#[derive(Debug, Clone)]
pub struct QualityPolicy {
    /// Arrivals with an observation delay above this are counted as delayed.
    pub delay_threshold: Duration,
    /// A source with no arrival for longer than this is counted as silent.
    pub silence_threshold: Duration,
}

impl Default for QualityPolicy {
    fn default() -> Self {
        QualityPolicy {
            delay_threshold: Duration::from_secs(5),
            silence_threshold: Duration::from_secs(30),
        }
    }
}

/// The ISM state for one stream source.
#[derive(Debug)]
pub struct SourceMonitor {
    policy: QualityPolicy,
    quality: SourceQuality,
    last_arrival: Option<Timestamp>,
    currently_silent: bool,
}

impl SourceMonitor {
    /// Creates a monitor with the given policy.
    pub fn new(policy: QualityPolicy) -> SourceMonitor {
        SourceMonitor {
            policy,
            quality: SourceQuality::default(),
            last_arrival: None,
            currently_silent: false,
        }
    }

    /// Pre-processes an arriving element (paper, Section 3, step 1): assigns the local
    /// reception timestamp when the element has none (a timestamp equal to the epoch is
    /// treated as "absent", matching wrappers that do not set one), and updates the
    /// quality counters.
    pub fn intake(&mut self, element: StreamElement, now: Timestamp) -> StreamElement {
        let element = if element.timestamp() == Timestamp::EPOCH && now != Timestamp::EPOCH {
            self.quality.locally_timestamped += 1;
            element.with_timestamp(now)
        } else {
            element
        };
        if element.values().iter().any(Value::is_null) {
            self.quality.with_missing_values += 1;
        }
        if let Some(delay) = element.observation_delay() {
            if delay > self.policy.delay_threshold {
                self.quality.delayed += 1;
            }
        }
        self.quality.accepted += 1;
        self.last_arrival = Some(now);
        self.currently_silent = false;
        element
    }

    /// Records that an element was dropped by the rate bound.
    pub fn record_rate_limited(&mut self) {
        self.quality.rate_limited += 1;
    }

    /// Checks for silence at `now`; returns true when the source has just transitioned to
    /// silent (so the container can log / expose it once per episode).
    pub fn check_silence(&mut self, now: Timestamp) -> bool {
        let Some(last) = self.last_arrival else {
            return false;
        };
        if now - last > self.policy.silence_threshold && !self.currently_silent {
            self.currently_silent = true;
            self.quality.silence_episodes += 1;
            return true;
        }
        false
    }

    /// True when the source is currently considered silent.
    pub fn is_silent(&self) -> bool {
        self.currently_silent
    }

    /// The quality counters.
    pub fn quality(&self) -> SourceQuality {
        self.quality
    }

    /// The last arrival time, if any element has been seen.
    pub fn last_arrival(&self) -> Option<Timestamp> {
        self.last_arrival
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsn_types::{DataType, StreamSchema};
    use std::sync::Arc;

    fn element(ts: i64, value: Value) -> StreamElement {
        let schema = Arc::new(StreamSchema::from_pairs(&[("v", DataType::Double)]).unwrap());
        StreamElement::new(schema, vec![value], Timestamp(ts)).unwrap()
    }

    #[test]
    fn rate_limiter_spacing() {
        let mut rl = RateLimiter::from_rate(Some(10)); // 100 ms spacing
        assert_eq!(rl.min_spacing(), Duration::from_millis(100));
        assert!(rl.admit(Timestamp(0)));
        assert!(!rl.admit(Timestamp(50)));
        assert!(!rl.admit(Timestamp(99)));
        assert!(rl.admit(Timestamp(100)));
        assert!(rl.admit(Timestamp(500)));
    }

    #[test]
    fn rate_limiter_disabled() {
        let mut rl = RateLimiter::from_rate(None);
        for i in 0..100 {
            assert!(rl.admit(Timestamp(i)));
        }
        let mut rl = RateLimiter::from_rate(Some(0));
        assert!(rl.admit(Timestamp(0)));
        assert!(rl.admit(Timestamp(0)));
    }

    #[test]
    fn high_rates_round_to_one_millisecond() {
        let rl = RateLimiter::from_rate(Some(5_000));
        assert_eq!(rl.min_spacing(), Duration::from_millis(1));
    }

    #[test]
    fn intake_stamps_missing_timestamps() {
        let mut monitor = SourceMonitor::new(QualityPolicy::default());
        let stamped = monitor.intake(element(0, Value::Double(1.0)), Timestamp(500));
        assert_eq!(stamped.timestamp(), Timestamp(500));
        let kept = monitor.intake(element(300, Value::Double(1.0)), Timestamp(600));
        assert_eq!(kept.timestamp(), Timestamp(300));
        let q = monitor.quality();
        assert_eq!(q.accepted, 2);
        assert_eq!(q.locally_timestamped, 1);
        assert_eq!(monitor.last_arrival(), Some(Timestamp(600)));
    }

    #[test]
    fn intake_counts_missing_values_and_delays() {
        let mut monitor = SourceMonitor::new(QualityPolicy {
            delay_threshold: Duration::from_millis(100),
            ..Default::default()
        });
        monitor.intake(element(10, Value::Null), Timestamp(10));
        let schema = Arc::new(StreamSchema::from_pairs(&[("v", DataType::Double)]).unwrap());
        let delayed = StreamElement::new(schema, vec![Value::Double(1.0)], Timestamp(1_000))
            .unwrap()
            .with_produced_at(Timestamp(100));
        monitor.intake(delayed, Timestamp(1_000));
        let q = monitor.quality();
        assert_eq!(q.with_missing_values, 1);
        assert_eq!(q.delayed, 1);
    }

    #[test]
    fn silence_detection_fires_once_per_episode() {
        let mut monitor = SourceMonitor::new(QualityPolicy {
            silence_threshold: Duration::from_secs(1),
            ..Default::default()
        });
        // No arrivals yet: never silent.
        assert!(!monitor.check_silence(Timestamp(10_000)));
        monitor.intake(element(100, Value::Double(1.0)), Timestamp(100));
        assert!(!monitor.check_silence(Timestamp(500)));
        assert!(monitor.check_silence(Timestamp(2_000)));
        assert!(monitor.is_silent());
        // Still silent: not reported again.
        assert!(!monitor.check_silence(Timestamp(3_000)));
        assert_eq!(monitor.quality().silence_episodes, 1);
        // An arrival clears the silence.
        monitor.intake(element(3_500, Value::Double(1.0)), Timestamp(3_500));
        assert!(!monitor.is_silent());
        assert!(monitor.check_silence(Timestamp(10_000)));
        assert_eq!(monitor.quality().silence_episodes, 2);
    }

    #[test]
    fn rate_limited_counter() {
        let mut monitor = SourceMonitor::new(QualityPolicy::default());
        monitor.record_rate_limited();
        monitor.record_rate_limited();
        assert_eq!(monitor.quality().rate_limited, 2);
    }
}
