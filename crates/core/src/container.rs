//! The GSN container: the runtime hosting a pool of virtual sensors on one node.
//!
//! "GSN follows a container-based architecture and each container can host and manage one
//! or more virtual sensors concurrently.  The container manages every aspect of the
//! virtual sensors at runtime including remote access, interaction with the sensor
//! network, security, persistence, data filtering, concurrency, and access to and pooling
//! of resources" (paper, Section 4).
//!
//! The container is clock-driven: [`GsnContainer::step`] advances every hosted virtual
//! sensor by polling its wrappers, draining network deliveries, running the processing
//! pipeline for each arrival, evaluating registered client queries and delivering
//! notifications.  Live deployments call `step` from a timer loop on the wall clock;
//! tests and benchmark harnesses drive it from a [`gsn_types::SimulatedClock`].
//!
//! ## Threading model: the sharded step loop
//!
//! With `ContainerConfig::workers > 1` the per-sensor pipelines run concurrently on a
//! [`WorkerPool`].  The moving parts:
//!
//! * **Shard assignment** — sensors are partitioned across the workers by a stable FNV
//!   hash of their name ([`shard_index`]); each shard's job processes its sensors in
//!   name order on one worker thread, so one sensor's pipeline is never concurrent with
//!   itself and its outputs stay in arrival order.
//! * **Shared state** — the managers a pipeline touches live in a [`PipelineRuntime`]
//!   shared by `Arc`: the [`StorageManager`] is internally synchronised (per-table
//!   `RwLock`s plus the container-wide shared buffer pool), the [`QueryManager`] and
//!   [`NotificationManager`] sit behind `Mutex`es with short lock scopes (one
//!   evaluation / one delivery), and the remote-route table behind an `RwLock` that
//!   `step` only reads.
//! * **Lock order** — two descending chains share the storage table locks as their
//!   common leaf: `sensor mutex → storage table lock` (the pipeline inserts while the
//!   sensor is locked) and `query-manager mutex → storage table lock` (evaluation reads
//!   tables under the manager lock).  The notification mutex is taken with none of the
//!   above held.  Never acquire a sensor or manager mutex while holding a table lock.
//!   A sensor's mutex is *released* before its output fans out, so recursion into a
//!   consumer sensor (local loop-back routes) never holds two sensor locks at once.
//! * **What runs where** — network intake, subscription retries, deferred cross-shard
//!   deliveries, pruning and the per-step WAL group commit run sequentially on the
//!   caller; only wrapper polling + pipeline execution (and the per-output query
//!   evaluation / notification they trigger) run on the pool.
//! * **Determinism** — per-shard [`StepReport`]s merge in shard-index order, and
//!   loop-back deliveries that cross a shard boundary are deferred to a sequential
//!   post-barrier phase (ordered by producing shard, then production order).  With
//!   `workers = 1` no pool exists and the loop is byte-identical to the pre-sharding
//!   sequential semantics.  With `workers = N`, for sensors whose inputs are their own
//!   local wrappers (and registered queries over a single sensor's output), every
//!   per-sensor output sequence, notification stream and table content is identical to
//!   the sequential run — only cross-sensor interleaving (and wall-clock time) differs.
//!   Two workloads are inherently order-dependent and excluded from that parity: a
//!   loop-back consumer in a different shard than its producer observes the producer's
//!   step-N outputs after its own poll (post-barrier) instead of interleaved with it —
//!   still deterministic for a fixed worker count, but not identical to `workers = 1`;
//!   and a registered query joining tables of concurrently executing sensors reads
//!   whatever those tables hold mid-step, which may vary run to run.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;

use gsn_federation::{PlacementRing, ReplicatedDirectory};
use gsn_network::{
    AccessController, Directory, DirectoryEntry, IntegrityService, Message, Operation, Principal,
    ReplicaRecord, RequestId, SimulatedNetwork,
};
use gsn_sql::{PartialAggregatePlan, Relation};
use gsn_storage::{StorageManager, StorageStats, WindowSpec};
use gsn_telemetry::{
    evaluate as evaluate_health, AssembledTrace, HealthSummary, HopBreakdown, MetricsRegistry,
    MetricsSnapshot, RemoteSpan, SlowQuery, SlowQueryLog, SpanId, SpanToken, Stopwatch,
    TraceContext, TraceLog,
};
use gsn_types::{
    Clock, EpochCell, GsnError, GsnResult, NodeId, StreamElement, Timestamp, Value,
    VirtualSensorName,
};
use gsn_wrappers::WrapperRegistry;
use gsn_xml::VirtualSensorDescriptor;
use parking_lot::Mutex;

use crate::config::ContainerConfig;
use crate::cursor::QueryCursor;
use crate::notification::{Notification, NotificationManager, NotificationStats, SubscriptionId};
use crate::pool::WorkerPool;
use crate::query::{
    shard_index, ClientQueryId, ClientQueryResult, QueryManagerStats, QueryPartitionStatus,
    QueryRepository,
};
use crate::sensor::{SensorStats, SourceRef, VirtualSensor};
use crate::telemetry::{ContainerTelemetry, SourcedMetrics, SourcedTotals};

/// What one call to [`GsnContainer::step`] did — the per-tick telemetry the benchmark
/// harnesses aggregate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepReport {
    /// Stream elements that arrived from local wrappers.
    pub local_arrivals: u64,
    /// Stream elements that arrived from remote deliveries.
    pub remote_arrivals: u64,
    /// Output stream elements produced by virtual sensors.
    pub outputs: u64,
    /// Registered client-query evaluations performed.
    pub client_query_evaluations: u64,
    /// Pipeline errors.
    pub errors: u64,
    /// Sources newly detected silent (no data within the quality policy's threshold).
    pub silence_events: u64,
    /// Total wall-clock time spent inside sensor pipelines during this step, microseconds.
    pub processing_micros: u64,
}

impl StepReport {
    /// Adds another report's counters into this one.
    pub fn absorb(&mut self, other: StepReport) {
        self.local_arrivals += other.local_arrivals;
        self.remote_arrivals += other.remote_arrivals;
        self.outputs += other.outputs;
        self.client_query_evaluations += other.client_query_evaluations;
        self.errors += other.errors;
        self.silence_events += other.silence_events;
        self.processing_micros += other.processing_micros;
    }
}

/// Per-sensor entry of a [`ContainerStatus`].
#[derive(Debug, Clone)]
pub struct SensorStatus {
    /// The sensor name.
    pub name: String,
    /// Processing statistics.
    pub stats: SensorStats,
    /// Times any of the sensor's sources was detected silent.
    pub silence_episodes: u64,
}

/// A point-in-time status snapshot of the container (the programmatic equivalent of the
/// paper's monitoring web interface).
#[derive(Debug, Clone)]
pub struct ContainerStatus {
    /// The container name.
    pub name: String,
    /// The node identity.
    pub node: NodeId,
    /// Per-sensor statistics.
    pub sensors: Vec<SensorStatus>,
    /// Storage statistics.
    pub storage: StorageStats,
    /// Notification statistics.
    pub notifications: NotificationStats,
    /// Query repository statistics, merged across partitions.
    pub queries: QueryManagerStats,
    /// Per-partition query repository statistics (one partition per step-loop shard).
    pub query_partitions: Vec<QueryPartitionStatus>,
    /// SQL engine statistics (compilation cache plus the scanned/returned row counters
    /// of the pull-based executor).
    pub engine: gsn_sql::EngineStats,
    /// Number of registered client queries.
    pub registered_queries: usize,
    /// Wrapper kinds available on this container.
    pub wrapper_kinds: Vec<String>,
    /// Step-loop worker threads (1 = sequential).
    pub workers: usize,
    /// `(submitted, completed)` job counts of the step-loop worker pool, when sharded.
    pub pool_jobs: Option<(u64, u64)>,
    /// The health model's verdict per subsystem, evaluated over `metrics`.
    pub health: HealthSummary,
    /// The full metrics snapshot the status numbers derive from (incremental-vs-full
    /// evaluation counts and step-phase latencies live only here).
    pub metrics: MetricsSnapshot,
}

impl ContainerStatus {
    /// Renders the status as a human-readable multi-line report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("GSN container `{}` on {}\n", self.name, self.node));
        out.push_str(&format!(
            "  wrappers: {}\n  storage: {}\n",
            self.wrapper_kinds.join(", "),
            self.storage
        ));
        for table in &self.storage.tables_on_disk {
            out.push_str(&format!(
                "    table {}: {} B on disk, {}/{} segments live, {} B reclaimed in {} segments{}\n",
                table.name,
                table.usage.on_disk_bytes,
                table.usage.live_segments,
                table.usage.total_segments,
                table.usage.reclaimed_bytes,
                table.usage.reclaimed_segments,
                if table.kind == gsn_storage::BackendKind::Spilled {
                    " (spilled window)"
                } else {
                    ""
                }
            ));
        }
        if self.storage.maintenance.passes > 0 {
            out.push_str(&format!(
                "    maintenance: {} passes, {}\n",
                self.storage.maintenance.passes, self.storage.maintenance.reclaim
            ));
        }
        match self.pool_jobs {
            Some((submitted, completed)) => out.push_str(&format!(
                "  step loop: {} workers ({submitted} shard jobs submitted, {completed} completed)\n",
                self.workers
            )),
            None => out.push_str("  step loop: sequential (1 worker)\n"),
        }
        let counter = |name: &str| {
            self.metrics
                .get(name)
                .and_then(|sample| sample.as_counter())
                .unwrap_or(0)
        };
        out.push_str(&format!(
            "  registered client queries: {} (evaluated {}, failed {}; {} incremental / {} full)\n",
            self.registered_queries,
            self.queries.registered_evaluated,
            self.queries.registered_failed,
            counter("gsn_query_incremental_total"),
            counter("gsn_query_fallback_total"),
        ));
        if let Some(summary) = self
            .metrics
            .get("gsn_step_micros")
            .and_then(|sample| sample.as_histogram())
        {
            if summary.count > 0 {
                out.push_str(&format!(
                    "  step latency: p50 {} us, p99 {} us, max {} us over {} steps\n",
                    summary.p50, summary.p99, summary.max, summary.count
                ));
            }
        }
        for sub in &self.health.subsystems {
            out.push_str(&format!(
                "  health {}: {}{}\n",
                sub.subsystem,
                sub.state.label(),
                if sub.reasons.is_empty() {
                    String::new()
                } else {
                    format!(" ({})", sub.reasons.join("; "))
                }
            ));
        }
        if self.query_partitions.len() > 1 {
            for p in &self.query_partitions {
                if p.registered == 0 && p.stats.registered_evaluated == 0 {
                    continue;
                }
                out.push_str(&format!(
                    "    query partition {}: {} registered, {} evaluated ({} failed)\n",
                    p.partition,
                    p.registered,
                    p.stats.registered_evaluated,
                    p.stats.registered_failed
                ));
            }
        }
        out.push_str(&format!(
            "  query executor: {} rows scanned / {} rows returned ({} plans compiled, {} cache hits)\n",
            self.engine.rows_scanned,
            self.engine.rows_returned,
            self.engine.compiled,
            self.engine.cache_hits
        ));
        out.push_str(&format!(
            "  notifications: local {} delivered, remote {} delivered / {} buffered / {} dropped\n",
            self.notifications.local_delivered,
            self.notifications.remote_delivered,
            self.notifications.remote_buffered,
            self.notifications.remote_dropped
        ));
        out.push_str(&format!("  virtual sensors ({}):\n", self.sensors.len()));
        for sensor in &self.sensors {
            out.push_str(&format!(
                "    {}: {} arrivals, {} outputs, {} errors, mean pipeline {:.3} ms{}\n",
                sensor.name,
                sensor.stats.arrivals,
                sensor.stats.outputs,
                sensor.stats.errors,
                sensor.stats.mean_processing_ms(),
                if sensor.silence_episodes > 0 {
                    format!(", {} silence episodes", sensor.silence_episodes)
                } else {
                    String::new()
                }
            ));
        }
        out
    }
}

/// A deployed sensor shared between the container and the step-loop workers.
type SharedSensor = Arc<Mutex<VirtualSensor>>;

/// The sensors visible to one pipeline execution context: the full container map on the
/// sequential paths, one shard on a worker.
type SensorView = BTreeMap<VirtualSensorName, SharedSensor>;

/// The container state the per-sensor pipelines share across worker threads.
///
/// Everything here is internally synchronised; see the module docs for the lock order.
struct PipelineRuntime {
    storage: Arc<StorageManager>,
    /// Internally partitioned by the step-loop shard hash — no outer mutex: each worker
    /// shard evaluates its own sensors' registered queries under its own partition lock.
    query_manager: QueryRepository,
    notifications: Mutex<NotificationManager>,
    network: Option<Arc<SimulatedNetwork>>,
    /// Routes incoming remote deliveries: remote sensor name -> local consumers.
    /// Epoch-published: the per-element hot path takes an `Arc` snapshot (one pointer
    /// clone, no lock held across the delivery) and (un)deployments install a new
    /// generation, so routing lookups never contend with each other or with writers.
    remote_routes: EpochCell<HashMap<String, Vec<(VirtualSensorName, SourceRef)>>>,
    /// Structured span log shared with the step-loop workers; disabled (one relaxed
    /// load per would-be span, no allocation) unless `ContainerConfig::trace_enabled`.
    trace: Arc<TraceLog>,
}

/// What one shard's pipeline pass produced: its slice of the step report plus loop-back
/// deliveries whose consumer lives in another shard (processed sequentially after the
/// barrier, in shard order, so the result is deterministic).
#[derive(Default)]
struct ShardOutcome {
    report: StepReport,
    deferred: Vec<(VirtualSensorName, SourceRef, StreamElement)>,
}

/// Stable shard assignment for sensors: the same normalised FNV-1a hash
/// ([`shard_index`]) the query repository partitions by, so a sensor's worker shard and
/// the partition holding the queries over its output table coincide.
fn sensor_shard(name: &VirtualSensorName, shards: usize) -> usize {
    shard_index(name.as_str(), shards)
}

/// Runs one sensor's full pipeline pass: poll local wrappers, process each arrival,
/// check for silent sources.
fn pipeline_sensor(
    runtime: &PipelineRuntime,
    view: &SensorView,
    name: &VirtualSensorName,
    now: Timestamp,
    out: &mut ShardOutcome,
) {
    let Some(sensor) = view.get(name) else {
        return;
    };
    let poll_span = runtime.trace.begin("wrapper.poll", SpanId::NONE);
    let arrivals = sensor.lock().poll_local_sources(now);
    runtime
        .trace
        .finish_with(poll_span, || format!("{name}: {} arrivals", arrivals.len()));
    for (source_ref, element) in arrivals {
        out.report.local_arrivals += 1;
        process_one(runtime, view, name, source_ref, element, now, out);
    }
    // Stream-quality: silence detection.
    if let Some(sensor) = view.get(name) {
        let newly_silent = sensor.lock().check_silence(now);
        out.report.silence_events += newly_silent.len() as u64;
    }
}

/// Processes a single element arrival for one sensor/source and fans out the result.
///
/// The sensor's mutex is released before the fan-out, so loop-back recursion into a
/// consumer sensor never holds two sensor locks at once.
fn process_one(
    runtime: &PipelineRuntime,
    view: &SensorView,
    name: &VirtualSensorName,
    source_ref: SourceRef,
    element: StreamElement,
    now: Timestamp,
    out: &mut ShardOutcome,
) {
    let Some(sensor) = view.get(name) else {
        return;
    };
    // One root span per element arrival; the pipeline/query/notification children hang
    // off it, reconstructing the paper's wrapper → pipeline → storage → notification
    // flow for a single element.
    let element_span = runtime.trace.begin("element", SpanId::NONE);
    let pipeline_span = runtime.trace.begin("pipeline", element_span.id());
    let (outcome, elapsed_micros, output_table) = {
        let mut guard = sensor.lock();
        let before = guard.stats().total_processing_micros;
        let outcome = guard.process_arrival(source_ref, element, now, &runtime.storage);
        let elapsed = guard.stats().total_processing_micros - before;
        (outcome, elapsed, guard.output_table().to_owned())
    };
    runtime
        .trace
        .finish_with(pipeline_span, || format!("{name} -> {output_table}"));
    out.report.processing_micros += elapsed_micros;
    match outcome {
        Ok(Some(output)) => {
            out.report.outputs += 1;
            // Registered client queries over this sensor's output.
            let query_span = runtime.trace.begin("query.evaluate", element_span.id());
            let results =
                runtime
                    .query_manager
                    .evaluate_for_table(&output_table, &runtime.storage, now);
            out.report.client_query_evaluations += results.len() as u64;
            runtime.trace.finish_with(query_span, || {
                format!("{}: {} evaluations", output_table, results.len())
            });
            deliver_client_results(runtime, results, now);
            // Local + remote notifications.
            let notify_span = runtime.trace.begin("notification", element_span.id());
            runtime.notifications.lock().notify(
                name.as_str(),
                &output,
                now,
                runtime.network.as_deref(),
            );
            runtime
                .trace
                .finish_with(notify_span, || name.as_str().to_owned());
            // Local loop-back remote routes (a sensor on this node consuming another
            // local sensor through the `remote` wrapper).  Snapshot semantics: the
            // routes as of this element's delivery; a concurrent (un)deploy publishes
            // a new generation that later elements see.
            let local_routes = runtime.remote_routes.load();
            for (consumer, consumer_ref) in local_routes.get(name.as_str()).into_iter().flatten() {
                if consumer == name {
                    continue;
                }
                if view.contains_key(consumer) {
                    out.report.remote_arrivals += 1;
                    deliver_remote(
                        runtime,
                        view,
                        consumer,
                        *consumer_ref,
                        output.clone(),
                        now,
                        out,
                    );
                } else {
                    // The consumer lives in another shard (or was undeployed): hand the
                    // delivery back for the sequential post-barrier phase.
                    out.deferred
                        .push((consumer.clone(), *consumer_ref, output.clone()));
                }
            }
        }
        Ok(None) => {}
        Err(_) => out.report.errors += 1,
    }
    runtime
        .trace
        .finish_with(element_span, || name.as_str().to_owned());
}

/// Handles one element delivered for a remote route (a local consumer of a remote or
/// loop-back producer).
fn deliver_remote(
    runtime: &PipelineRuntime,
    view: &SensorView,
    consumer: &VirtualSensorName,
    source_ref: SourceRef,
    element: StreamElement,
    now: Timestamp,
    out: &mut ShardOutcome,
) {
    let Some(sensor) = view.get(consumer) else {
        return;
    };
    if sensor
        .lock()
        .ensure_remote_schema(source_ref, &element, &runtime.storage)
        .is_err()
    {
        out.report.errors += 1;
        return;
    }
    process_one(runtime, view, consumer, source_ref, element, now, out);
}

/// Routes client-query results to their subscribers (modelled as notifications on the
/// client's name; the extensible channel architecture of the notification manager lets
/// applications attach whatever transport they need).
fn deliver_client_results(
    runtime: &PipelineRuntime,
    results: Vec<ClientQueryResult>,
    now: Timestamp,
) {
    for result in results {
        if result.relation.is_empty() {
            continue;
        }
        if let Ok(Some(element)) = result
            .relation
            .to_stream_element(&Arc::new(relation_schema(&result.relation)), now)
        {
            runtime.notifications.lock().notify(
                &format!("client:{}", result.client),
                &element,
                now,
                None,
            );
        }
    }
}

/// The GSN container.
pub struct GsnContainer {
    config: ContainerConfig,
    clock: Arc<dyn Clock>,
    registry: Arc<WrapperRegistry>,
    runtime: Arc<PipelineRuntime>,
    sensors: BTreeMap<VirtualSensorName, SharedSensor>,
    /// The step-loop worker pool; `None` when `workers <= 1` (sequential semantics).
    pool: Option<WorkerPool>,
    access: AccessController,
    integrity: IntegrityService,
    directory: Option<Arc<Directory>>,
    /// Remote subscriptions this container has requested but not yet seen acknowledged.
    /// Un-acked subscriptions are re-sent on every step so that a lost Subscribe message
    /// (lossy link, partition during deployment) does not silence the source forever.
    pending_subscriptions: Vec<PendingSubscription>,
    next_request_id: u64,
    /// Streaming-query cursors opened on behalf of remote peers, by cursor id.  Each
    /// `QueryNext` advances its cursor one batch; the cursor closes when exhausted,
    /// on error, when idle past [`REMOTE_CURSOR_IDLE_TIMEOUT`], or when the peer's
    /// request would exceed [`MAX_REMOTE_CURSORS`].
    remote_cursors: HashMap<u64, RemoteCursor>,
    next_cursor_id: u64,
    /// In-flight streaming queries this container has issued to remote peers,
    /// accumulated batch by batch until `done`.
    remote_queries: HashMap<RequestId, RemoteQueryState>,
    /// Steps executed so far; paces the periodic storage maintenance pass.
    steps: u64,
    /// The metrics registry every subsystem's instruments are adopted into.
    metrics: Arc<MetricsRegistry>,
    /// The container's own live instruments (step phases, federation counters).
    telemetry: ContainerTelemetry,
    /// Handles for the totals refreshed from the subsystem stats at snapshot time.
    sourced: SourcedMetrics,
    /// Ad-hoc queries slower than the configured threshold land here (shared with the
    /// query repository, which reports registered evaluations into the same log).
    slow_queries: Arc<SlowQueryLog>,
    /// In-flight metrics scrapes this container has issued to peers.
    pending_metric_scrapes: HashMap<RequestId, MetricScrapeState>,
    /// In-flight distributed-trace collections this node coordinates.
    pending_trace_collects: HashMap<RequestId, TraceCollectState>,
    /// Completed distributed traces, oldest evicted past [`MAX_ASSEMBLED_TRACES`].
    assembled_traces: VecDeque<AssembledTrace>,
    /// The most recent local health evaluation (refreshed each gossip round; `None`
    /// until the first round, and always `None` on standalone containers).
    local_health: Option<HealthSummary>,
    /// Most recent snapshot received from each peer (kept after the take, so a
    /// monitoring loop can read every peer's last known state at once).
    peer_metrics: HashMap<NodeId, MetricsSnapshot>,
    /// Mesh-federation state (placement ring + gossip-replicated directory); `None`
    /// for standalone containers and shared-directory federations.
    mesh: Option<MeshState>,
    /// Federated scatter-gather queries this node coordinates, by request id.
    federated: HashMap<RequestId, FederatedQueryState>,
    /// Transport for the row-shipping fallback of federated queries: whether the
    /// per-host sub-queries use cursor prefetch, and their batch size.
    row_ship_prefetch: bool,
    row_ship_batch_rows: usize,
}

/// Client-side state of one in-flight peer metrics scrape.
#[derive(Debug)]
struct MetricScrapeState {
    /// The scraped node (re-requests go back to it).
    target: NodeId,
    /// The arrived snapshot, once any.
    snapshot: Option<MetricsSnapshot>,
    /// Last time the request (or a re-request) was sent — paces the lossy-link retry.
    last_request: Timestamp,
    /// When the scrape was issued (stalled scrapes are reaped like remote queries).
    issued: Timestamp,
}

/// Coordinator-side state of one distributed-trace collection: spans of one trace id
/// being gathered off every participating peer (see
/// [`GsnContainer::collect_remote_spans`]).
#[derive(Debug)]
struct TraceCollectState {
    /// The trace being assembled.
    trace_id: u128,
    /// The root span id (on this coordinator).
    root: u64,
    /// Peers whose spans have not arrived yet.
    pending: Vec<NodeId>,
    /// Spans gathered so far (this node's own spans are seeded at issue time).
    spans: Vec<RemoteSpan>,
    /// Last time the collect (or a re-request) was sent — paces the lossy-link retry.
    last_request: Timestamp,
    /// When the collect was issued (stalled collects assemble what arrived and stop).
    issued: Timestamp,
}

/// How many assembled distributed traces the container retains for `/traces` readers.
const MAX_ASSEMBLED_TRACES: usize = 16;

/// Upper bound on concurrently open server-side remote query cursors; requests past
/// the cap are refused (the idle reaper below keeps abandoned cursors from pinning
/// slots until then).
const MAX_REMOTE_CURSORS: usize = 64;

/// How long a remote cursor may sit idle (no `QueryNext` from its owner) before the
/// step loop reaps it.  An abandoned cursor — client crashed, or the final
/// `QueryNext`/`QueryBatch` lost on a lossy link — would otherwise hold its slot
/// forever and eventually wedge remote queries at [`MAX_REMOTE_CURSORS`].
const REMOTE_CURSOR_IDLE_TIMEOUT: gsn_types::Duration = gsn_types::Duration::from_secs(60);

/// How long this container waits for a `QueryBatch` before re-requesting it.  A dropped
/// `QueryNext` or `QueryBatch` on a lossy link is thereby *recovered* (batch sequence
/// numbers make the retry idempotent) instead of stalling the query until the
/// [`REMOTE_CURSOR_IDLE_TIMEOUT`] reap.
const REMOTE_QUERY_RETRY_AFTER: gsn_types::Duration = gsn_types::Duration::from_secs(2);

/// How many batches a prefetching remote cursor keeps speculatively in flight ahead of
/// the client's cumulative acknowledgements.
const PREFETCH_WINDOW: usize = 4;

/// How often a prefetching client acknowledges (every Nth batch): half the window, so
/// the server's speculation never drains while an ack is in flight.
const PREFETCH_ACK_EVERY: u64 = (PREFETCH_WINDOW / 2) as u64;

/// One streaming-query cursor held open on behalf of a remote peer.
struct RemoteCursor {
    /// The peer that opened the cursor; only it may pull (the rows were
    /// access-checked against *its* principal, and cursor ids are guessable).
    owner: NodeId,
    /// The originating request id (retransmitted `QueryRequest`s are matched by
    /// `(owner, request)` so a lost first batch does not open a duplicate cursor).
    request: RequestId,
    /// `None` once exhausted: the entry lingers as a tombstone so a lost *final*
    /// batch can be retransmitted, until the idle reaper collects it.
    cursor: Option<QueryCursor>,
    /// Sequence number the next fresh batch will carry.
    next_seq: u64,
    /// The last batch shipped, cached for retransmission on re-request
    /// (strictly pull-based cursors only; prefetching cursors cache in `window`).
    last_batch: Option<Message>,
    /// Last time the owner pulled a batch (for the idle reaper).
    last_active: Timestamp,
    /// True when this cursor pipelines: batches are pushed speculatively and
    /// `QueryNext.expect_seq` acts as a cumulative ack.
    prefetch: bool,
    /// Sent-but-unacknowledged batches of a prefetching cursor, by sequence number,
    /// for retransmission; acknowledged entries are dropped as acks arrive.
    window: BTreeMap<u64, Message>,
    /// Highest cumulative ack seen from the owner (prefetching cursors only).
    last_ack: u64,
    /// Time spent authorising and opening the cursor, charged to the first batch's
    /// `server_micros` so the client's per-hop breakdown sees the open cost.
    open_micros: u64,
}

/// Client-side accumulation of one in-flight remote streaming query.
#[derive(Debug)]
struct RemoteQueryState {
    /// The queried node (re-requests go back to it).
    target: NodeId,
    /// The SQL text, kept so a lost *first* batch can retransmit the `QueryRequest`
    /// itself (the server matches it to the already-open cursor by request id).
    sql: String,
    batch_rows: u32,
    /// True when the server pipelines batches ahead of our acknowledgements.
    prefetch: bool,
    /// The server-side cursor id, learned from the first batch.
    cursor: Option<u64>,
    /// The batch sequence number expected next (duplicates below it are ignored).
    expect_seq: u64,
    columns: Vec<String>,
    rows: Vec<Vec<Value>>,
    batches: u64,
    done: bool,
    error: Option<String>,
    /// Last time a batch arrived (stalled, not-yet-done requests are reaped after
    /// [`REMOTE_CURSOR_IDLE_TIMEOUT`]; completed results wait for their taker).
    last_activity: Timestamp,
    /// Last time the request or a re-request was sent (paces the retry loop).
    last_request: Timestamp,
    /// Distributed-trace context carried on the request frames (retries included);
    /// `None` for untraced queries — the frames then match the pre-tracing format.
    trace: Option<TraceContext>,
    /// Time spent encoding the request frame (measured only when traced).
    serialize_micros: u64,
    /// Round trip of the opening request, from send to first batch, milliseconds.
    open_rtt_millis: u64,
    /// Total server-side open/execute time reported by the batches' `server_micros`.
    server_micros: u64,
    /// Request frames re-sent to this peer after apparent loss.
    retransmits: u64,
}

/// The assembled result of a remote streaming query (see
/// [`GsnContainer::remote_query`]).
#[derive(Debug, Clone)]
pub struct RemoteQueryResult {
    /// The result rows, assembled from the incremental `QueryBatch` messages.
    pub relation: Relation,
    /// How many batches carried the result over the wire.
    pub batches: u64,
    /// Wire-timing breakdown of this hop (serialize, RTT, remote execute, retries).
    pub hop: HopBreakdown,
}

#[derive(Debug, Clone)]
struct PendingSubscription {
    producer: NodeId,
    sensor: String,
    request: u64,
    acked: bool,
    refused: bool,
}

/// Mesh-federation state: the shared-nothing replacement for the central [`Directory`].
///
/// A mesh container discovers sensors from its own [`ReplicatedDirectory`] (kept
/// convergent by anti-entropy gossip) and places data by the [`PlacementRing`], so no
/// lookup ever crosses the network on the hot path.
struct MeshState {
    /// This node's view of the consistent-hash placement ring.
    ring: PlacementRing,
    /// The local directory replica.  Behind a mutex so the deploy-time resolver
    /// closure (holding `&self`) can consult it while the lookup counter advances.
    replica: Mutex<ReplicatedDirectory>,
    /// Steps between anti-entropy gossip rounds (0 disables gossip).
    gossip_interval_steps: u64,
    /// LCG state for the random gossip-peer pick, seeded from the node id so runs on
    /// a simulated clock stay deterministic.
    rng: u64,
}

/// Coordinator-side state of one federated scatter-gather query.
struct FederatedQueryState {
    /// The original SQL (re-run locally over shipped rows on the fallback path).
    sql: String,
    /// When the scatter was issued (for the latency histogram).
    started: Timestamp,
    /// Last time the scatter (or a re-scatter) was sent — paces the lossy-link retry.
    last_request: Timestamp,
    /// Last time any gather progress arrived (abandoned scatters are reaped).
    last_activity: Timestamp,
    mode: FederatedMode,
    /// Distributed-trace context of this scatter (`None` when tracing is disabled).
    trace: Option<TraceContext>,
    /// The coordinator's root span, finished when the gather completes.
    root_span: Option<SpanToken>,
    /// Per-peer wire-timing breakdown, accumulated as the gather progresses.
    hops: Vec<HopBreakdown>,
    /// The merged result, once complete; waits for its taker.
    result: Option<GsnResult<Relation>>,
}

/// How a federated query's scatter travels the wire.
enum FederatedMode {
    /// Decomposable aggregate: every host computes a container-side partial and only
    /// partial-aggregate frames travel — never raw rows.
    Partial {
        plan: PartialAggregatePlan,
        /// Hosts whose partial has not arrived yet.
        pending: Vec<NodeId>,
        /// Partial result sets gathered so far (the local one included).
        partials: Vec<Vec<Vec<Value>>>,
    },
    /// Non-decomposable shape: ship every host's rows over the streaming-query wire,
    /// union them per table, and run the original SQL locally.
    RowShip {
        /// In-flight sub-queries: `(remote_query request, table)`.
        pending: Vec<(RequestId, String)>,
        /// Per-table union of the shipped rows.
        tables: HashMap<String, Relation>,
        /// Tables the SQL references, in reference order.
        referenced: Vec<String>,
    },
}

/// Folds one host's shipped rows into the accumulating per-table union.
fn merge_shipped_rows(tables: &mut HashMap<String, Relation>, table: &str, incoming: Relation) {
    match tables.get_mut(table) {
        Some(existing) => {
            for row in incoming.rows() {
                let _ = existing.push_row(row.clone());
            }
        }
        None => {
            tables.insert(table.to_owned(), incoming);
        }
    }
}

impl std::fmt::Debug for GsnContainer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "GsnContainer({}, {} sensors, {} workers)",
            self.config.name,
            self.sensors.len(),
            self.pool.as_ref().map(WorkerPool::size).unwrap_or(1),
        )
    }
}

impl GsnContainer {
    /// Creates a standalone container (no peer-to-peer networking) on the given clock.
    pub fn new(config: ContainerConfig, clock: Arc<dyn Clock>) -> GsnContainer {
        Self::build(config, clock, None, None)
    }

    /// Creates a container attached to a simulated network and shared directory.
    pub fn with_network(
        config: ContainerConfig,
        clock: Arc<dyn Clock>,
        network: Arc<SimulatedNetwork>,
        directory: Arc<Directory>,
    ) -> GsnResult<GsnContainer> {
        network.add_node(config.node_id)?;
        Ok(Self::build(config, clock, Some(network), Some(directory)))
    }

    /// Creates a container attached to a simulated network with *mesh* federation: no
    /// shared directory — sensor discovery runs against a local gossip-replicated
    /// directory and data placement against a consistent-hash ring.  Call
    /// [`mesh_bootstrap`](Self::mesh_bootstrap) with a seed view to join an existing
    /// mesh (or with an empty view to found one).
    pub fn with_mesh(
        config: ContainerConfig,
        clock: Arc<dyn Clock>,
        network: Arc<SimulatedNetwork>,
    ) -> GsnResult<GsnContainer> {
        network.add_node(config.node_id)?;
        let node = config.node_id;
        let mut container = Self::build(config, clock, Some(network), None);
        container.mesh = Some(MeshState {
            ring: PlacementRing::default(),
            replica: Mutex::new(ReplicatedDirectory::new(node)),
            gossip_interval_steps: 2,
            rng: node
                .as_u64()
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(1),
        });
        Ok(container)
    }

    fn build(
        config: ContainerConfig,
        clock: Arc<dyn Clock>,
        network: Option<Arc<SimulatedNetwork>>,
        directory: Option<Arc<Directory>>,
    ) -> GsnContainer {
        let pool = (config.workers > 1)
            .then(|| WorkerPool::new(&format!("{}-step", config.name), config.workers));
        let trace = Arc::new(TraceLog::with_capacity(config.trace_capacity));
        trace.set_enabled(config.trace_enabled);
        // Namespace span ids by node so spans collected off different containers
        // never collide when assembled into one distributed trace tree.
        trace.set_id_namespace(config.node_id.as_u64());
        let runtime = Arc::new(PipelineRuntime {
            storage: Arc::new(StorageManager::with_options(config.storage_options())),
            query_manager: QueryRepository::with_partitions(
                config.workers.max(1),
                config.query_cache_enabled,
                config.incremental_queries,
            ),
            notifications: Mutex::new(NotificationManager::new(
                config.node_id,
                config.disconnect_buffer_capacity,
            )),
            network,
            remote_routes: EpochCell::new(HashMap::new()),
            trace,
        });

        // Adopt every subsystem's instrument handles into one registry: the handles
        // were live from construction, so nothing recorded before this point is lost.
        let metrics = Arc::new(MetricsRegistry::new());
        let telemetry = ContainerTelemetry::new();
        telemetry.register_into(&metrics);
        let sourced = SourcedMetrics::new();
        sourced.register_into(&metrics);
        runtime.storage.telemetry().register_into(&metrics);
        runtime.query_manager.telemetry().register_into(&metrics);
        let sql_telemetry = gsn_sql::SqlTelemetry::new();
        sql_telemetry.register_into(&metrics);
        runtime.query_manager.set_sql_telemetry(&sql_telemetry);
        let slow_queries = Arc::clone(runtime.query_manager.slow_query_log());
        slow_queries.set_threshold_micros(config.slow_query_threshold_micros);

        GsnContainer {
            registry: Arc::new(WrapperRegistry::with_builtins()),
            runtime,
            sensors: BTreeMap::new(),
            pool,
            access: AccessController::permissive(),
            integrity: IntegrityService::new(),
            directory,
            pending_subscriptions: Vec::new(),
            next_request_id: 1,
            remote_cursors: HashMap::new(),
            next_cursor_id: 1,
            remote_queries: HashMap::new(),
            steps: 0,
            metrics,
            telemetry,
            sourced,
            slow_queries,
            pending_metric_scrapes: HashMap::new(),
            pending_trace_collects: HashMap::new(),
            assembled_traces: VecDeque::new(),
            local_health: None,
            peer_metrics: HashMap::new(),
            mesh: None,
            federated: HashMap::new(),
            row_ship_prefetch: false,
            row_ship_batch_rows: 256,
            clock,
            config,
        }
    }

    /// The container configuration.
    pub fn config(&self) -> &ContainerConfig {
        &self.config
    }

    /// The node identity.
    pub fn node_id(&self) -> NodeId {
        self.config.node_id
    }

    /// The container clock.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// The wrapper registry (register additional platforms here before deploying).
    pub fn wrapper_registry(&self) -> &Arc<WrapperRegistry> {
        &self.registry
    }

    /// The storage manager (read-only access for inspection; the container owns writes).
    pub fn storage(&self) -> &Arc<StorageManager> {
        &self.runtime.storage
    }

    /// Checkpoints every persistent storage table to stable storage.
    ///
    /// Persistent tables also checkpoint automatically on WAL growth and when the
    /// container is dropped; call this for an explicit durability point (e.g. before
    /// process hand-over).
    pub fn flush_storage(&self) -> GsnResult<()> {
        self.runtime.storage.flush_all()
    }

    /// The access-control layer.
    pub fn access_control(&self) -> &AccessController {
        &self.access
    }

    /// The data-integrity service.
    pub fn integrity(&self) -> &IntegrityService {
        &self.integrity
    }

    /// The names of all deployed virtual sensors, sorted.
    pub fn sensor_names(&self) -> Vec<String> {
        self.sensors.keys().map(|n| n.as_str().to_owned()).collect()
    }

    /// Per-sensor processing statistics.
    pub fn sensor_stats(&self, name: &str) -> GsnResult<SensorStats> {
        let key = VirtualSensorName::new(name)?;
        self.sensors
            .get(&key)
            .map(|s| s.lock().stats())
            .ok_or_else(|| GsnError::not_found(format!("virtual sensor `{name}` is not deployed")))
    }

    // -----------------------------------------------------------------------------------
    // Deployment
    // -----------------------------------------------------------------------------------

    /// Deploys a virtual sensor from its XML descriptor text.
    pub fn deploy_xml(&mut self, xml: &str) -> GsnResult<VirtualSensorName> {
        let descriptor = VirtualSensorDescriptor::parse(xml)?;
        self.deploy(descriptor)
    }

    /// Deploys a virtual sensor from a parsed descriptor.
    ///
    /// Deployment publishes the sensor's metadata to the directory (when networked) and,
    /// for every `wrapper="remote"` stream source, resolves the predicates through the
    /// directory and subscribes to the producing node.
    pub fn deploy(&mut self, descriptor: VirtualSensorDescriptor) -> GsnResult<VirtualSensorName> {
        if self.sensors.len() >= self.config.max_virtual_sensors {
            return Err(GsnError::resource_exhausted(format!(
                "container `{}` already hosts {} virtual sensors",
                self.config.name,
                self.sensors.len()
            )));
        }
        let name = descriptor.name.clone();
        if self.sensors.contains_key(&name) {
            return Err(GsnError::already_exists(format!(
                "virtual sensor `{name}` is already deployed"
            )));
        }

        let directory = self.directory.clone();
        let mesh = &self.mesh;
        let deployed_at = self.clock.now();
        let sensor = VirtualSensor::deploy(
            descriptor,
            &self.registry,
            &self.runtime.storage,
            |address| {
                // Local loop-back entries resolve like remote ones: the producer is a
                // sensor on this very node and deliveries short-circuit through notify().
                let entry: DirectoryEntry = if let Some(directory) = &directory {
                    directory.resolve_one(&address.predicates)?
                } else if let Some(mesh) = mesh {
                    mesh.replica.lock().resolve_one(&address.predicates)?
                } else {
                    return Err(GsnError::config(
                        "this container has no directory; `wrapper=\"remote\"` sources are unavailable",
                    ));
                };
                Ok((entry.node, entry.sensor.clone()))
            },
            deployed_at,
        )?;

        // Publish to the directory (shared or replica; gossip spreads the latter).
        if self.directory.is_some() || self.mesh.is_some() {
            let mut metadata = sensor.descriptor().metadata.clone();
            metadata.push(("name".to_owned(), name.as_str().to_owned()));
            metadata.push(("container".to_owned(), self.config.name.clone()));
            if let Some(directory) = &self.directory {
                directory.register(self.config.node_id, name.as_str(), metadata)?;
            } else if let Some(mesh) = &self.mesh {
                mesh.replica.lock().register(name.as_str(), metadata)?;
            }
        }

        // Wire up remote sources: remember the routing and send Subscribe messages.
        for (producer, remote_sensor, source_ref) in sensor.remote_sources() {
            self.runtime.remote_routes.update(|routes| {
                let mut next = routes.clone();
                next.entry(remote_sensor.to_ascii_lowercase())
                    .or_default()
                    .push((name.clone(), source_ref));
                (next, ())
            });
            if producer != self.config.node_id {
                if let Some(network) = &self.runtime.network {
                    let request = self.next_request_id;
                    self.next_request_id += 1;
                    let _ = network.send(
                        self.config.node_id,
                        producer,
                        Message::Subscribe {
                            request,
                            subscriber: self.config.node_id,
                            sensor: remote_sensor.clone(),
                        },
                        self.clock.now(),
                    );
                    self.pending_subscriptions.push(PendingSubscription {
                        producer,
                        sensor: remote_sensor.clone(),
                        request,
                        acked: false,
                        refused: false,
                    });
                }
            } else {
                // Producer is this very container: subscribe locally.
                self.runtime
                    .notifications
                    .lock()
                    .add_remote_subscriber(self.config.node_id, &remote_sensor);
            }
        }

        self.sensors
            .insert(name.clone(), Arc::new(Mutex::new(sensor)));
        Ok(name)
    }

    /// Undeploys a virtual sensor, dropping its storage and directory entry.
    pub fn undeploy(&mut self, name: &str) -> GsnResult<()> {
        let key = VirtualSensorName::new(name)?;
        let sensor = self.sensors.remove(&key).ok_or_else(|| {
            GsnError::not_found(format!("virtual sensor `{name}` is not deployed"))
        })?;
        sensor.lock().teardown(&self.runtime.storage);
        if let Some(directory) = &self.directory {
            let _ = directory.deregister(self.config.node_id, key.as_str());
        } else if let Some(mesh) = &self.mesh {
            let _ = mesh.replica.lock().deregister(key.as_str());
        }
        let (_, orphaned): (u64, Vec<String>) = self.runtime.remote_routes.update(|routes| {
            let mut next = routes.clone();
            next.values_mut().for_each(|consumers| {
                consumers.retain(|(owner, _)| owner != &key);
            });
            // Remote sensors no local consumer references any more.
            let orphaned = next
                .iter()
                .filter(|(_, consumers)| consumers.is_empty())
                .map(|(sensor, _)| sensor.clone())
                .collect();
            (next, orphaned)
        });
        // Drop pending subscriptions (and send Unsubscribe) for orphaned remote sensors.
        for sensor in &orphaned {
            if let Some(network) = &self.runtime.network {
                if let Some(pending) = self
                    .pending_subscriptions
                    .iter()
                    .find(|p| p.sensor.eq_ignore_ascii_case(sensor))
                {
                    let _ = network.send(
                        self.config.node_id,
                        pending.producer,
                        Message::Unsubscribe {
                            subscriber: self.config.node_id,
                            sensor: sensor.clone(),
                        },
                        self.clock.now(),
                    );
                }
            }
            self.pending_subscriptions
                .retain(|p| !p.sensor.eq_ignore_ascii_case(sensor));
        }
        self.runtime.remote_routes.update(|routes| {
            let mut next = routes.clone();
            next.retain(|_, consumers| !consumers.is_empty());
            (next, ())
        });
        Ok(())
    }

    // -----------------------------------------------------------------------------------
    // Querying and subscriptions
    // -----------------------------------------------------------------------------------

    /// Executes an ad-hoc SQL query over the container's virtual sensor output tables.
    pub fn query(&self, sql: &str) -> GsnResult<Relation> {
        self.query_as(&Principal::Anonymous, sql)
    }

    /// Executes an ad-hoc SQL query on behalf of a principal, enforcing access control on
    /// every referenced virtual sensor.
    pub fn query_as(&self, principal: &Principal, sql: &str) -> GsnResult<Relation> {
        let prepared = gsn_sql::SqlEngine::compile(sql, &gsn_sql::OptimizerConfig::default())?;
        for table in prepared.referenced_tables() {
            self.access.authorize(principal, Operation::Read, table)?;
        }
        let watch = Stopwatch::start();
        let result =
            self.runtime
                .query_manager
                .execute_adhoc(sql, &self.runtime.storage, self.clock.now());
        if let Ok(relation) = &result {
            let micros = watch.elapsed_micros();
            self.slow_queries.observe(micros, || SlowQuery {
                sql: sql.to_owned(),
                micros,
                explain: prepared.explain(),
                rows_scanned: 0,
                rows_returned: relation.row_count() as u64,
                hops: Vec::new(),
            });
        }
        result
    }

    /// Opens a *streaming* ad-hoc query: rows are pulled in batches instead of
    /// materialising the whole result, so a `LIMIT` query over a large
    /// `permanent-storage` table reads only the storage pages it needs.
    ///
    /// The returned cursor owns its plan and table handles — it holds no container
    /// lock between pulls.  [`query`](Self::query) remains the collecting convenience.
    pub fn query_cursor(&self, sql: &str) -> GsnResult<QueryCursor> {
        self.query_cursor_as(&Principal::Anonymous, sql)
    }

    /// Opens a streaming ad-hoc query on behalf of a principal, enforcing access
    /// control on every referenced virtual sensor.
    pub fn query_cursor_as(&self, principal: &Principal, sql: &str) -> GsnResult<QueryCursor> {
        let prepared = self.runtime.query_manager.prepare(sql)?;
        for table in prepared.referenced_tables() {
            self.access.authorize(principal, Operation::Read, table)?;
        }
        // When the cursor is dropped its counters fold into the engine statistics, so
        // streaming executions show up in `ContainerStatus` like materialised ones.
        let runtime = Arc::clone(&self.runtime);
        let telemetry = Box::new(
            move |scanned: u64, returned: u64, pages_skipped: u64, residual_filtered: u64| {
                runtime.query_manager.record_cursor(
                    scanned,
                    returned,
                    pages_skipped,
                    residual_filtered,
                );
            },
        );
        QueryCursor::open(
            &prepared,
            Arc::clone(&self.runtime.storage),
            self.clock.now(),
            Some(telemetry),
        )
    }

    /// Issues a streaming SQL query against a *remote* container.  The remote node
    /// opens a pull-based cursor and ships the result as incremental `QueryBatch`
    /// messages of `batch_rows` rows each (instead of one monolithic relation), which
    /// this container assembles over subsequent [`step`](Self::step)s.  Poll
    /// [`take_remote_query_result`](Self::take_remote_query_result) with the returned
    /// request id.
    pub fn remote_query(
        &mut self,
        target: NodeId,
        sql: &str,
        batch_rows: usize,
    ) -> GsnResult<RequestId> {
        self.remote_query_with(target, sql, batch_rows, false, None)
    }

    /// Like [`remote_query`](Self::remote_query), but with cursor prefetch pipelining:
    /// the server speculatively pushes a window of batches ahead of this container's
    /// acknowledgements, hiding one link round trip per batch.  `QueryNext` becomes a
    /// cumulative ack sent every half-window instead of a per-batch pull.
    pub fn remote_query_prefetch(
        &mut self,
        target: NodeId,
        sql: &str,
        batch_rows: usize,
    ) -> GsnResult<RequestId> {
        self.remote_query_with(target, sql, batch_rows, true, None)
    }

    fn remote_query_with(
        &mut self,
        target: NodeId,
        sql: &str,
        batch_rows: usize,
        prefetch: bool,
        trace: Option<TraceContext>,
    ) -> GsnResult<RequestId> {
        let Some(network) = self.runtime.network.clone() else {
            return Err(GsnError::config(
                "this container has no network; remote queries are unavailable",
            ));
        };
        let batch_rows = batch_rows.clamp(1, 65_536) as u32;
        let request = self.next_request_id;
        self.next_request_id += 1;
        let message = Message::QueryRequest {
            request,
            sql: sql.to_owned(),
            batch_rows,
            prefetch,
            trace,
        };
        // The serialize leg of the hop breakdown: measured by a throwaway encode,
        // and only for traced queries — untraced hot paths pay nothing.
        let serialize_micros = if trace.is_some() {
            let watch = Stopwatch::start();
            let _ = gsn_network::encode(&message);
            watch.elapsed_micros()
        } else {
            0
        };
        network.send(self.config.node_id, target, message, self.clock.now())?;
        self.remote_queries.insert(
            request,
            RemoteQueryState {
                target,
                sql: sql.to_owned(),
                batch_rows,
                prefetch,
                cursor: None,
                expect_seq: 0,
                columns: Vec::new(),
                rows: Vec::new(),
                batches: 0,
                done: false,
                error: None,
                last_activity: self.clock.now(),
                last_request: self.clock.now(),
                trace,
                serialize_micros,
                open_rtt_millis: 0,
                server_micros: 0,
                retransmits: 0,
            },
        );
        Ok(request)
    }

    /// Cancels an in-flight remote query, dropping any batches accumulated so far;
    /// returns whether the request was still tracked.  A server-side cursor left open
    /// by the cancellation is reclaimed by the remote node's idle reaper.
    pub fn cancel_remote_query(&mut self, request: RequestId) -> bool {
        self.remote_queries.remove(&request).is_some()
    }

    /// Number of remote queries issued by this container whose results are still
    /// tracked (in flight or awaiting [`take_remote_query_result`](Self::take_remote_query_result)).
    pub fn pending_remote_queries(&self) -> usize {
        self.remote_queries.len()
    }

    /// Takes the finished result of a query issued with [`remote_query`](Self::remote_query):
    /// `None` while batches are still in flight, `Some(Err)` when the remote node
    /// reported a failure, `Some(Ok)` with the assembled relation once complete.
    pub fn take_remote_query_result(
        &mut self,
        request: RequestId,
    ) -> Option<GsnResult<RemoteQueryResult>> {
        if !self.remote_queries.get(&request)?.done {
            return None;
        }
        let state = self.remote_queries.remove(&request).expect("state present");
        if let Some(error) = state.error {
            return Some(Err(GsnError::sql_exec(format!(
                "remote query failed: {error}"
            ))));
        }
        let columns = state
            .columns
            .iter()
            .map(|name| gsn_sql::ColumnInfo::new(None, name, None))
            .collect();
        Some(
            Relation::with_rows(columns, state.rows).map(|relation| RemoteQueryResult {
                relation,
                batches: state.batches,
                hop: HopBreakdown {
                    peer: state.target.as_u64(),
                    serialize_micros: state.serialize_micros,
                    rtt_millis: state.open_rtt_millis,
                    remote_micros: state.server_micros,
                    retransmits: state.retransmits,
                },
            }),
        )
    }

    /// Number of streaming cursors currently held open on behalf of remote peers
    /// (exhausted cursors lingering only for final-batch retransmission not counted).
    pub fn open_remote_cursors(&self) -> usize {
        self.remote_cursors
            .values()
            .filter(|open| open.cursor.is_some())
            .count()
    }

    /// Renders the execution plan of a query (EXPLAIN).
    pub fn explain(&self, sql: &str) -> GsnResult<String> {
        self.runtime.query_manager.explain(sql)
    }

    /// Registers a continuous client query (see [`QueryManager::register`]).
    pub fn register_query(
        &self,
        client: &str,
        sql: &str,
        history: WindowSpec,
        sampling_rate: Option<f64>,
    ) -> GsnResult<ClientQueryId> {
        self.runtime
            .query_manager
            .register(client, sql, history, sampling_rate)
    }

    /// Removes a registered client query.
    pub fn deregister_query(&self, id: ClientQueryId) -> GsnResult<()> {
        self.runtime.query_manager.deregister(id)
    }

    /// Number of registered client queries.
    pub fn registered_query_count(&self) -> usize {
        self.runtime.query_manager.registered_count()
    }

    /// Subscribes to a virtual sensor's output stream; notifications arrive on the
    /// returned channel.
    pub fn subscribe(
        &self,
        sensor: &str,
    ) -> GsnResult<(SubscriptionId, crossbeam::channel::Receiver<Notification>)> {
        self.require_sensor(sensor)?;
        Ok(self.runtime.notifications.lock().subscribe_channel(sensor))
    }

    /// Subscribes a callback to a virtual sensor's output stream.
    pub fn subscribe_callback(
        &self,
        sensor: &str,
        callback: impl Fn(&Notification) + Send + Sync + 'static,
    ) -> GsnResult<SubscriptionId> {
        self.require_sensor(sensor)?;
        Ok(self
            .runtime
            .notifications
            .lock()
            .subscribe_callback(sensor, callback))
    }

    /// Cancels a local subscription.
    pub fn unsubscribe(&self, id: SubscriptionId) -> GsnResult<()> {
        self.runtime.notifications.lock().unsubscribe(id)
    }

    fn require_sensor(&self, sensor: &str) -> GsnResult<()> {
        let key = VirtualSensorName::new(sensor)?;
        let table = VirtualSensor::output_table_name(&key);
        if self.sensors.contains_key(&key) || self.runtime.storage.has_table(&table) {
            Ok(())
        } else {
            Err(GsnError::not_found(format!(
                "virtual sensor `{sensor}` is not deployed on this container"
            )))
        }
    }

    // -----------------------------------------------------------------------------------
    // The processing loop
    // -----------------------------------------------------------------------------------

    /// Advances the container to the clock's current time: drains the network, polls local
    /// wrappers, runs pipelines (sharded across the worker pool when `workers > 1`),
    /// evaluates registered queries, delivers notifications and group-commits the WALs.
    pub fn step(&mut self) -> StepReport {
        let now = self.clock.now();
        let mut report = StepReport::default();
        let step_watch = Stopwatch::start();
        let step_span = self.runtime.trace.begin("step", SpanId::NONE);

        // 1. Network intake (remote deliveries, subscription management) — sequential.
        let drain_watch = Stopwatch::start();
        let drain_span = self.runtime.trace.begin("step.network", step_span.id());
        report.absorb(self.drain_network(now));

        // 1b. Retry remote subscriptions that were never acknowledged (the Subscribe
        // message may have been lost on a lossy link or during a partition), and reap
        // remote cursors whose owner stopped pulling (crashed client, lost QueryNext)
        // so abandoned cursors cannot pin slots under MAX_REMOTE_CURSORS forever.
        self.retry_pending_subscriptions(now);
        self.remote_cursors
            .retain(|_, open| open.last_active >= now.saturating_sub(REMOTE_CURSOR_IDLE_TIMEOUT));
        // Likewise for this container's own stalled remote queries (a lost QueryBatch
        // would otherwise track them forever); finished results wait for their taker.
        self.remote_queries.retain(|_, state| {
            state.done || state.last_activity >= now.saturating_sub(REMOTE_CURSOR_IDLE_TIMEOUT)
        });
        // Lossy-link recovery: re-request the expected batch of any remote query that
        // has waited past the retry threshold (batch sequence numbers make this
        // idempotent — the server retransmits or the client drops the duplicate).
        self.retry_stalled_remote_queries(now);
        // Same recovery for in-flight peer metrics scrapes and trace collections.
        self.retry_stalled_metric_scrapes(now);
        self.retry_stalled_trace_collects(now);
        // Mesh federation: one anti-entropy gossip round every few steps, and
        // advancement of any scatter-gather queries this node coordinates.
        self.run_mesh_gossip(now);
        self.advance_federated_queries(now);
        self.runtime.trace.finish(drain_span);
        self.telemetry
            .network_drain_micros
            .record(drain_watch.elapsed_micros());

        // 2. Local wrapper polling + pipeline execution, sharded across the pool.
        let pipeline_watch = Stopwatch::start();
        let pipeline_span = self.runtime.trace.begin("step.pipelines", step_span.id());
        report.absorb(self.run_sensor_pipelines(now));
        self.runtime.trace.finish(pipeline_span);
        self.telemetry
            .pipeline_micros
            .record(pipeline_watch.elapsed_micros());

        // 3. Storage housekeeping: retention pruning, then one batched WAL fsync for
        // everything ingested this step (group commit).
        let commit_watch = Stopwatch::start();
        let commit_span = self.runtime.trace.begin("step.storage", step_span.id());
        self.runtime.storage.prune_all(now);
        if self.runtime.storage.group_commit().is_err() {
            report.errors += 1;
        }
        self.runtime.trace.finish(commit_span);
        self.telemetry
            .commit_micros
            .record(commit_watch.elapsed_micros());

        // 4. Periodic storage maintenance: reclaim file space held by pruned rows
        // (head-segment deletion, boundary compaction).  Sharded containers run it on
        // the worker pool so a large compaction never stalls the step; overlapping
        // passes coalesce inside the manager.  Reclamation only changes the physical
        // layout — queries re-filter at read time — so workers=1 and workers=N stay
        // output-identical.
        self.steps += 1;
        let interval = self.config.maintenance_interval_steps;
        if interval > 0 && self.steps.is_multiple_of(interval) {
            match &self.pool {
                Some(pool) => {
                    let storage = Arc::clone(&self.runtime.storage);
                    if pool
                        .submit(move || {
                            storage.maintain(now);
                        })
                        .is_err()
                    {
                        report.errors += 1;
                    }
                }
                None => {
                    self.runtime.storage.maintain(now);
                }
            }
        }
        self.runtime.trace.finish(step_span);
        self.telemetry.steps_total.inc();
        self.telemetry
            .step_micros
            .record(step_watch.elapsed_micros());
        self.telemetry.absorb_report(&report);
        report
    }

    /// Runs the storage maintenance pass immediately on the caller (pruning plus
    /// segment reclamation), returning what it freed.  The step loop schedules this
    /// automatically every [`ContainerConfig::maintenance_interval_steps`] steps; an
    /// explicit call is useful before reading footprint statistics.
    pub fn maintain_storage(&self) -> gsn_storage::MaintenanceReport {
        self.runtime.storage.maintain(self.clock.now())
    }

    /// Runs every sensor's pipeline pass for this step: inline in name order when
    /// sequential, sharded across the worker pool otherwise (see the module docs).
    fn run_sensor_pipelines(&mut self, now: Timestamp) -> StepReport {
        let shard_count = self.pool.as_ref().map(WorkerPool::size).unwrap_or(1);
        if shard_count <= 1 || self.sensors.len() <= 1 {
            // Sequential semantics: identical to the pre-sharding loop. The full view
            // means loop-back deliveries recurse inline and nothing is deferred.
            let mut out = ShardOutcome::default();
            let names: Vec<VirtualSensorName> = self.sensors.keys().cloned().collect();
            for name in &names {
                pipeline_sensor(&self.runtime, &self.sensors, name, now, &mut out);
            }
            debug_assert!(out.deferred.is_empty());
            return out.report;
        }

        let mut shards: Vec<SensorView> = (0..shard_count).map(|_| BTreeMap::new()).collect();
        for (name, sensor) in &self.sensors {
            shards[sensor_shard(name, shard_count)].insert(name.clone(), Arc::clone(sensor));
        }
        let pool = self.pool.as_ref().expect("worker pool present");
        let (tx, rx) = crossbeam::channel::unbounded::<(usize, ShardOutcome)>();
        let mut submitted = 0usize;
        let mut report = StepReport::default();
        for (idx, shard) in shards.into_iter().enumerate() {
            if shard.is_empty() {
                continue;
            }
            let runtime = Arc::clone(&self.runtime);
            let tx = tx.clone();
            let job = move || {
                let mut out = ShardOutcome::default();
                let names: Vec<VirtualSensorName> = shard.keys().cloned().collect();
                for name in &names {
                    pipeline_sensor(&runtime, &shard, name, now, &mut out);
                }
                let _ = tx.send((idx, out));
            };
            match pool.submit(job) {
                Ok(()) => submitted += 1,
                // Unreachable while the container is alive (the pool only shuts down on
                // drop); surface it rather than losing the shard silently.
                Err(_) => report.errors += 1,
            }
        }
        drop(tx);

        // Barrier: collect every shard's outcome, then merge in shard-index order so the
        // aggregate report and the deferred-delivery order are deterministic.  A shard
        // whose job panicked sends nothing (its sender drops with the unwound job); the
        // channel disconnects once every job finished, and the deficit is an error.
        let mut outcomes: Vec<(usize, ShardOutcome)> = Vec::with_capacity(submitted);
        for _ in 0..submitted {
            match rx.recv() {
                Ok(pair) => outcomes.push(pair),
                Err(_) => break,
            }
        }
        report.errors += (submitted - outcomes.len()) as u64;
        outcomes.sort_by_key(|(idx, _)| *idx);
        let mut deferred = Vec::new();
        for (_, out) in outcomes {
            report.absorb(out.report);
            deferred.extend(out.deferred);
        }

        // Sequential post-barrier phase: cross-shard loop-back deliveries run against
        // the full sensor map, so nested fan-out recurses inline.
        let post_barrier_watch = Stopwatch::start();
        for (consumer, source_ref, element) in deferred {
            report.remote_arrivals += 1;
            let mut out = ShardOutcome::default();
            deliver_remote(
                &self.runtime,
                &self.sensors,
                &consumer,
                source_ref,
                element,
                now,
                &mut out,
            );
            debug_assert!(out.deferred.is_empty());
            report.absorb(out.report);
        }
        self.telemetry
            .post_barrier_micros
            .record(post_barrier_watch.elapsed_micros());
        report
    }

    /// Drains the simulated network inbox.
    fn drain_network(&mut self, now: Timestamp) -> StepReport {
        let mut out = ShardOutcome::default();
        let Some(network) = self.runtime.network.clone() else {
            return out.report;
        };
        let envelopes = network.receive(self.config.node_id, now);
        for envelope in envelopes {
            match envelope.message {
                Message::Subscribe {
                    request,
                    subscriber,
                    sensor,
                } => {
                    let principal = Principal::named(&subscriber.to_string());
                    let accepted = self.access.check(&principal, Operation::Subscribe, &sensor)
                        && self.require_sensor(&sensor).is_ok();
                    if accepted {
                        self.runtime
                            .notifications
                            .lock()
                            .add_remote_subscriber(subscriber, &sensor);
                    }
                    let _ = network.send(
                        self.config.node_id,
                        envelope.from,
                        Message::SubscribeAck {
                            request,
                            accepted,
                            reason: if accepted {
                                String::new()
                            } else {
                                format!("subscription to `{sensor}` refused")
                            },
                        },
                        now,
                    );
                }
                Message::Unsubscribe { subscriber, sensor } => {
                    self.runtime
                        .notifications
                        .lock()
                        .remove_remote_subscriber(subscriber, &sensor);
                }
                Message::StreamDelivery { sensor, element } => match element.into_element() {
                    Ok(element) => {
                        let routes = self.runtime.remote_routes.load();
                        for (consumer, source_ref) in routes
                            .get(&sensor.to_ascii_lowercase())
                            .into_iter()
                            .flatten()
                        {
                            out.report.remote_arrivals += 1;
                            deliver_remote(
                                &self.runtime,
                                &self.sensors,
                                consumer,
                                *source_ref,
                                element.clone(),
                                now,
                                &mut out,
                            );
                        }
                    }
                    Err(_) => out.report.errors += 1,
                },
                Message::Ping { request } => {
                    let _ = network.send(
                        self.config.node_id,
                        envelope.from,
                        Message::Pong { request },
                        now,
                    );
                }
                Message::SubscribeAck {
                    request, accepted, ..
                } => {
                    for pending in &mut self.pending_subscriptions {
                        if pending.request == request {
                            if accepted {
                                pending.acked = true;
                            } else {
                                pending.refused = true;
                            }
                        }
                    }
                }
                Message::QueryRequest {
                    request,
                    sql,
                    batch_rows,
                    prefetch,
                    trace,
                } => {
                    let replies = self.serve_query_request(
                        envelope.from,
                        request,
                        &sql,
                        batch_rows as usize,
                        prefetch,
                        trace,
                    );
                    for reply in replies {
                        let _ = network.send(self.config.node_id, envelope.from, reply, now);
                    }
                }
                Message::QueryNext {
                    request,
                    cursor,
                    batch_rows,
                    expect_seq,
                    trace: _,
                } => {
                    let replies = self.serve_query_next(
                        envelope.from,
                        request,
                        cursor,
                        batch_rows as usize,
                        expect_seq,
                    );
                    for reply in replies {
                        let _ = network.send(self.config.node_id, envelope.from, reply, now);
                    }
                }
                Message::QueryBatch {
                    request,
                    cursor,
                    columns,
                    rows,
                    seq,
                    done,
                    error,
                    server_micros,
                } => {
                    // A batch for a request we no longer track (taken or never issued)
                    // is dropped; the server already closed done/errored cursors.
                    if let Some(state) = self.remote_queries.get_mut(&request) {
                        if state.done {
                            continue;
                        }
                        self.telemetry
                            .batch_rtt_millis
                            .record(now.abs_diff(state.last_request).as_millis() as u64);
                        if state.cursor.is_none() {
                            // First batch: its round trip covers the cursor open.
                            state.open_rtt_millis =
                                now.abs_diff(state.last_request).as_millis() as u64;
                        }
                        state.server_micros += server_micros;
                        state.last_activity = now;
                        state.cursor = Some(cursor);
                        if seq != state.expect_seq {
                            // A duplicate (retransmission already consumed) or a stale
                            // refusal answering an out-of-date re-request: drop it.
                            // Re-requesting here would double-ship every later batch
                            // on links whose RTT exceeds the retry threshold, and an
                            // off-seq error must not kill a healthy query; genuine
                            // gaps and dead cursors are recovered by the retry timer,
                            // whose refusals arrive carrying the expected seq.
                            continue;
                        }
                        if !error.is_empty() {
                            state.error = Some(error);
                            state.done = true;
                            continue;
                        }
                        state.expect_seq += 1;
                        state.batches += 1;
                        if state.columns.is_empty() {
                            state.columns = columns;
                        }
                        state.rows.extend(rows);
                        if done {
                            state.done = true;
                        } else if state.prefetch {
                            // Pipelined wire: the server pushes ahead of us.  A
                            // cumulative ack every half-window keeps its speculation
                            // window open; every other batch arrived without any
                            // request in flight — a prefetch hit.
                            if state.expect_seq % PREFETCH_ACK_EVERY == 0 {
                                let message = Message::QueryNext {
                                    request,
                                    cursor,
                                    batch_rows: state.batch_rows,
                                    expect_seq: state.expect_seq,
                                    trace: state.trace,
                                };
                                state.last_request = now;
                                let _ =
                                    network.send(self.config.node_id, envelope.from, message, now);
                            } else {
                                self.telemetry.prefetch_hits_total.inc();
                            }
                        } else {
                            // Pull-based wire: ask for the next batch only now that
                            // this one has been consumed.
                            let message = Message::QueryNext {
                                request,
                                cursor,
                                batch_rows: state.batch_rows,
                                expect_seq: state.expect_seq,
                                trace: state.trace,
                            };
                            state.last_request = now;
                            let _ = network.send(self.config.node_id, envelope.from, message, now);
                        }
                    }
                }
                Message::MetricsRequest { request, from } => {
                    // The federation scrape: answer with a full registry snapshot so
                    // cooperating peers can monitor each other without a side channel.
                    self.telemetry.scrapes_served_total.inc();
                    let snapshot = self.metrics_snapshot();
                    let _ = network.send(
                        self.config.node_id,
                        from,
                        Message::MetricsSnapshot {
                            request,
                            node: self.config.node_id,
                            snapshot,
                        },
                        now,
                    );
                }
                Message::MetricsSnapshot {
                    request,
                    node,
                    snapshot,
                } => {
                    if let Some(state) = self.pending_metric_scrapes.get_mut(&request) {
                        if state.snapshot.is_none() {
                            self.telemetry.peer_snapshots_total.inc();
                            state.snapshot = Some(snapshot.clone());
                        }
                    }
                    self.peer_metrics.insert(node, snapshot);
                }
                Message::GossipDigest {
                    from: _,
                    digest,
                    health,
                    trace: _,
                } => {
                    // Push-pull: answer with what the digest proves the peer is
                    // missing, plus our own digest so it sends a return delta.  The
                    // piggybacked health summaries merge into the replica's health
                    // store, and the reply carries our view back — one round moves
                    // health both ways.
                    if let Some(mesh) = self.mesh.as_ref() {
                        let (records, my_digest, my_health) = {
                            let mut replica = mesh.replica.lock();
                            replica.apply_health(&health);
                            (
                                replica.delta_for(&digest),
                                replica.digest(),
                                replica.health_snapshot(),
                            )
                        };
                        let reply = Message::GossipDelta {
                            from: self.config.node_id,
                            records,
                            digest: my_digest,
                            health: my_health,
                            trace: None,
                        };
                        self.telemetry
                            .gossip_bytes_total
                            .add(gsn_network::encode(&reply).len() as u64);
                        let _ = network.send(self.config.node_id, envelope.from, reply, now);
                    }
                }
                Message::GossipDelta {
                    from: _,
                    records,
                    digest,
                    health,
                    trace: _,
                } => {
                    if let Some(mesh) = self.mesh.as_ref() {
                        {
                            let mut replica = mesh.replica.lock();
                            replica.apply(&records);
                            replica.apply_health(&health);
                        }
                        // A non-empty digest asks for the records *we* have that the
                        // peer lacks; the terminating reply carries an empty digest
                        // (health already travelled in both directions this round).
                        if !digest.is_empty() {
                            let reply_records = mesh.replica.lock().delta_for(&digest);
                            if !reply_records.is_empty() {
                                let reply = Message::GossipDelta {
                                    from: self.config.node_id,
                                    records: reply_records,
                                    digest: Vec::new(),
                                    health: Vec::new(),
                                    trace: None,
                                };
                                self.telemetry
                                    .gossip_bytes_total
                                    .add(gsn_network::encode(&reply).len() as u64);
                                let _ =
                                    network.send(self.config.node_id, envelope.from, reply, now);
                            }
                        }
                    }
                }
                Message::RingAnnounce { epoch, members, .. } => {
                    if let Some(mesh) = self.mesh.as_mut() {
                        mesh.ring.install(&members, epoch);
                    }
                }
                Message::PartialAggregateRequest {
                    request,
                    sql,
                    trace,
                } => {
                    // Stateless server side of the scatter: execute the partial locally
                    // and reply in one frame.  Re-execution on a duplicate (retried)
                    // request is idempotent — the coordinator keeps the first reply.
                    // A traced request records a serve span under the coordinator's
                    // root, so the assembled trace tree shows every hop's execution.
                    let watch = Stopwatch::start();
                    let span =
                        trace.map(|ctx| self.runtime.trace.begin_in_trace("federated.serve", ctx));
                    let outcome =
                        self.query_as(&Principal::named(&envelope.from.to_string()), &sql);
                    if let Some(span) = span {
                        self.runtime.trace.finish(span);
                    }
                    let server_micros = watch.elapsed_micros();
                    let reply = match outcome {
                        Ok(relation) => Message::PartialAggregateReply {
                            request,
                            columns: relation.columns().iter().map(|c| c.name.clone()).collect(),
                            rows: relation.rows().to_vec(),
                            error: String::new(),
                            server_micros,
                        },
                        Err(e) => Message::PartialAggregateReply {
                            request,
                            columns: Vec::new(),
                            rows: Vec::new(),
                            error: e.to_string(),
                            server_micros,
                        },
                    };
                    let _ = network.send(self.config.node_id, envelope.from, reply, now);
                }
                Message::PartialAggregateReply {
                    request,
                    columns: _,
                    rows,
                    error,
                    server_micros,
                } => {
                    self.absorb_partial_reply(
                        envelope.from,
                        request,
                        rows,
                        error,
                        server_micros,
                        now,
                    );
                }
                Message::TraceCollectRequest {
                    request,
                    from,
                    trace_id,
                } => {
                    // Serve our slice of a distributed trace: every retained span
                    // stamped with the requested trace id, in wire form.  Idempotent,
                    // so retried requests just ship the slice again.
                    let spans: Vec<RemoteSpan> = self
                        .runtime
                        .trace
                        .spans_of_trace(trace_id)
                        .iter()
                        .map(|s| RemoteSpan::from_span(self.config.node_id.as_u64(), s))
                        .collect();
                    let _ = network.send(
                        self.config.node_id,
                        from,
                        Message::TraceCollectReply {
                            request,
                            node: self.config.node_id,
                            trace_id,
                            spans,
                        },
                        now,
                    );
                }
                Message::TraceCollectReply {
                    request,
                    node,
                    trace_id: _,
                    spans,
                } => {
                    // Duplicate replies (answers to retried collects) are dropped by
                    // the pending-peer check; the assembler also dedupes span ids.
                    if let Some(state) = self.pending_trace_collects.get_mut(&request) {
                        if let Some(pos) = state.pending.iter().position(|p| *p == node) {
                            state.pending.remove(pos);
                            self.telemetry.remote_spans_total.add(spans.len() as u64);
                            state.spans.extend(spans);
                            if state.pending.is_empty() {
                                let state = self
                                    .pending_trace_collects
                                    .remove(&request)
                                    .expect("state present");
                                self.finish_trace_collect(state);
                            }
                        }
                    }
                }
                // Directory traffic and pongs are informational for the container.
                Message::DirectoryRegister { .. }
                | Message::DirectoryDeregister { .. }
                | Message::DirectoryLookup { .. }
                | Message::DirectoryResult { .. }
                | Message::Pong { .. } => {}
            }
        }
        debug_assert!(out.deferred.is_empty());
        out.report
    }

    /// Serves a remote `QueryRequest`: authorises and opens a cursor, then ships the
    /// first batch (or, with prefetch, the first window of batches).  A *retransmitted*
    /// request (the client never saw our first batch on a lossy link) matches its
    /// existing cursor by `(owner, request)` and gets the unacknowledged batches again
    /// instead of opening a duplicate cursor.
    fn serve_query_request(
        &mut self,
        from: NodeId,
        request: RequestId,
        sql: &str,
        batch_rows: usize,
        prefetch: bool,
        trace: Option<TraceContext>,
    ) -> Vec<Message> {
        let refuse = |error: String| {
            vec![Message::QueryBatch {
                request,
                cursor: 0,
                columns: Vec::new(),
                rows: Vec::new(),
                seq: 0,
                done: true,
                error,
                server_micros: 0,
            }]
        };
        if let Some((&id, _)) = self
            .remote_cursors
            .iter()
            .find(|(_, open)| open.owner == from && open.request == request)
        {
            // Retransmitted request: the serve span (if any) was recorded when the
            // cursor first opened, so only the batches are replayed.
            return self.serve_query_next(from, request, id, batch_rows, 0);
        }
        let live = self
            .remote_cursors
            .values()
            .filter(|open| open.cursor.is_some())
            .count();
        if live >= MAX_REMOTE_CURSORS {
            return refuse(format!(
                "too many open remote cursors (limit {MAX_REMOTE_CURSORS})"
            ));
        }
        // A traced request records a serve span under the remote parent: the hop
        // shows up in the coordinator's assembled trace tree with the open cost.
        let watch = Stopwatch::start();
        let span = trace.map(|ctx| self.runtime.trace.begin_in_trace("query.serve", ctx));
        let principal = Principal::named(&from.to_string());
        let cursor = match self.query_cursor_as(&principal, sql) {
            Ok(cursor) => cursor,
            Err(e) => {
                if let Some(span) = span {
                    self.runtime.trace.finish(span);
                }
                return refuse(e.to_string());
            }
        };
        if let Some(span) = span {
            self.runtime.trace.finish(span);
        }
        let id = self.next_cursor_id;
        self.next_cursor_id += 1;
        self.remote_cursors.insert(
            id,
            RemoteCursor {
                owner: from,
                request,
                cursor: Some(cursor),
                next_seq: 0,
                last_batch: None,
                last_active: self.clock.now(),
                prefetch,
                window: BTreeMap::new(),
                last_ack: 0,
                open_micros: watch.elapsed_micros(),
            },
        );
        self.serve_query_next(from, request, id, batch_rows, 0)
    }

    /// Advances an open remote cursor by one batch, or retransmits the cached previous
    /// batch when the client re-requests it (`expect_seq` one behind).  Exhausted
    /// cursors linger as tombstones until the idle reaper collects them, so even a lost
    /// *final* batch is recoverable.  Only the peer that opened the cursor may pull
    /// from it — the rows were access-checked against *its* principal, and cursor ids
    /// are guessable.
    fn serve_query_next(
        &mut self,
        from: NodeId,
        request: RequestId,
        cursor_id: u64,
        batch_rows: usize,
        expect_seq: u64,
    ) -> Vec<Message> {
        let refused = |error: String| {
            vec![Message::QueryBatch {
                request,
                cursor: cursor_id,
                columns: Vec::new(),
                rows: Vec::new(),
                seq: expect_seq,
                done: true,
                error,
                server_micros: 0,
            }]
        };
        let now = self.clock.now();
        let Some(open) = self.remote_cursors.get_mut(&cursor_id) else {
            return refused(format!("no open cursor {cursor_id}"));
        };
        if open.owner != from {
            // Leave the cursor open for its owner; only refuse the impostor.
            return refused(format!("cursor {cursor_id} is not owned by {from}"));
        }
        open.last_active = now;
        if open.prefetch {
            return self.pump_prefetch_cursor(cursor_id, request, batch_rows, expect_seq);
        }
        if open.next_seq.checked_sub(1) == Some(expect_seq) {
            // The client never saw (or lost) our last batch: retransmit the cache.
            if let Some(batch) = &open.last_batch {
                return vec![batch.clone()];
            }
        }
        if expect_seq != open.next_seq {
            return refused(format!(
                "cursor {cursor_id} is at batch {}, not {expect_seq}",
                open.next_seq
            ));
        }
        let Some(cursor) = open.cursor.as_mut() else {
            // Exhausted tombstone pulled past its cached batch: nothing left to serve.
            return refused(format!("cursor {cursor_id} is exhausted"));
        };
        let batch_watch = Stopwatch::start();
        match cursor.next_batch(batch_rows.clamp(1, 65_536)) {
            Ok(batch) => {
                let done = cursor.is_done();
                if done {
                    // Keep the entry as a tombstone for final-batch retransmission.
                    open.cursor = None;
                }
                let seq = open.next_seq;
                open.next_seq += 1;
                // The first batch also carries the cursor-open cost, so the client's
                // hop breakdown sees the full server-side time.
                let server_micros =
                    batch_watch.elapsed_micros() + if seq == 0 { open.open_micros } else { 0 };
                let message = Message::QueryBatch {
                    request,
                    cursor: cursor_id,
                    columns: batch.columns().iter().map(|c| c.name.clone()).collect(),
                    rows: batch.into_rows(),
                    seq,
                    done,
                    error: String::new(),
                    server_micros,
                };
                open.last_batch = Some(message.clone());
                if done {
                    self.prune_cursor_tombstones();
                }
                vec![message]
            }
            Err(e) => {
                self.remote_cursors.remove(&cursor_id);
                refused(e.to_string())
            }
        }
    }

    /// Advances a *prefetching* remote cursor.  `expect_seq` is a cumulative ack: every
    /// cached batch below it is confirmed received and dropped; an ack at or below the
    /// previous one is a retry, so the whole unacknowledged window is retransmitted.
    /// Either way the speculation window is then topped up with fresh batches, keeping
    /// [`PREFETCH_WINDOW`] batches in flight ahead of the client.
    fn pump_prefetch_cursor(
        &mut self,
        cursor_id: u64,
        request: RequestId,
        batch_rows: usize,
        expect_seq: u64,
    ) -> Vec<Message> {
        let refused = |error: String| {
            vec![Message::QueryBatch {
                request,
                cursor: cursor_id,
                columns: Vec::new(),
                rows: Vec::new(),
                seq: expect_seq,
                done: true,
                error,
                server_micros: 0,
            }]
        };
        let Some(open) = self.remote_cursors.get_mut(&cursor_id) else {
            return refused(format!("no open cursor {cursor_id}"));
        };
        if expect_seq > open.next_seq {
            return refused(format!(
                "cursor {cursor_id} is at batch {}, not {expect_seq}",
                open.next_seq
            ));
        }
        // A repeated (or initial-retransmit) ack means the client is missing batches we
        // already sent: resend everything unacknowledged, in sequence order.
        let retry = expect_seq <= open.last_ack && open.next_seq > 0;
        open.last_ack = open.last_ack.max(expect_seq);
        open.window.retain(|seq, _| *seq >= expect_seq);
        let mut replies: Vec<Message> = Vec::new();
        if retry {
            replies.extend(open.window.values().cloned());
        }
        let mut finished = false;
        while open.window.len() < PREFETCH_WINDOW {
            let Some(cursor) = open.cursor.as_mut() else {
                break;
            };
            let batch_watch = Stopwatch::start();
            match cursor.next_batch(batch_rows.clamp(1, 65_536)) {
                Ok(batch) => {
                    let done = cursor.is_done();
                    if done {
                        // Keep the entry as a tombstone; the window caches the final
                        // batches for retransmission until the client acks them.
                        open.cursor = None;
                        finished = true;
                    }
                    let seq = open.next_seq;
                    open.next_seq += 1;
                    let server_micros =
                        batch_watch.elapsed_micros() + if seq == 0 { open.open_micros } else { 0 };
                    let message = Message::QueryBatch {
                        request,
                        cursor: cursor_id,
                        columns: batch.columns().iter().map(|c| c.name.clone()).collect(),
                        rows: batch.into_rows(),
                        seq,
                        done,
                        error: String::new(),
                        server_micros,
                    };
                    open.window.insert(seq, message.clone());
                    replies.push(message);
                    if done {
                        break;
                    }
                }
                Err(e) => {
                    self.remote_cursors.remove(&cursor_id);
                    return refused(e.to_string());
                }
            }
        }
        if finished {
            self.prune_cursor_tombstones();
        }
        replies
    }

    /// Bounds the exhausted-cursor tombstones (each caches one batch for final-batch
    /// retransmission): beyond [`MAX_REMOTE_CURSORS`] of them, the least recently
    /// active ones are dropped immediately instead of waiting for the idle reaper —
    /// a peer looping short queries must not accumulate 60 s of cached batches.
    fn prune_cursor_tombstones(&mut self) {
        let excess = self
            .remote_cursors
            .values()
            .filter(|open| open.cursor.is_none())
            .count()
            .saturating_sub(MAX_REMOTE_CURSORS);
        if excess == 0 {
            return;
        }
        let mut tombstones: Vec<(u64, Timestamp)> = self
            .remote_cursors
            .iter()
            .filter(|(_, open)| open.cursor.is_none())
            .map(|(id, open)| (*id, open.last_active))
            .collect();
        tombstones.sort_by_key(|(_, last_active)| *last_active);
        for (id, _) in tombstones.into_iter().take(excess) {
            self.remote_cursors.remove(&id);
        }
    }

    /// Re-requests the expected batch of every remote query that has waited past
    /// [`REMOTE_QUERY_RETRY_AFTER`]: a lost `QueryNext` or `QueryBatch` is recovered by
    /// asking again (for the very first batch, by retransmitting the `QueryRequest`,
    /// which the server matches to its existing cursor).
    fn retry_stalled_remote_queries(&mut self, now: Timestamp) {
        let Some(network) = self.runtime.network.clone() else {
            return;
        };
        let node = self.config.node_id;
        for (request, state) in self.remote_queries.iter_mut() {
            if state.done || now.saturating_sub(REMOTE_QUERY_RETRY_AFTER) < state.last_request {
                continue;
            }
            let message = match state.cursor {
                Some(cursor) => Message::QueryNext {
                    request: *request,
                    cursor,
                    batch_rows: state.batch_rows,
                    expect_seq: state.expect_seq,
                    trace: state.trace,
                },
                // No batch ever arrived: the QueryRequest (or its first reply) was
                // lost — retransmit the request itself.
                None => Message::QueryRequest {
                    request: *request,
                    sql: state.sql.clone(),
                    batch_rows: state.batch_rows,
                    prefetch: state.prefetch,
                    trace: state.trace,
                },
            };
            state.last_request = now;
            state.retransmits += 1;
            self.telemetry.retransmits_total.inc();
            let _ = network.send(node, state.target, message, now);
        }
    }

    /// Re-sends the `MetricsRequest` of every in-flight peer scrape that has waited
    /// past [`REMOTE_QUERY_RETRY_AFTER`] (the answer is idempotent — a duplicate
    /// snapshot just overwrites the pending slot), and reaps scrapes whose peer never
    /// answered within [`REMOTE_CURSOR_IDLE_TIMEOUT`].
    fn retry_stalled_metric_scrapes(&mut self, now: Timestamp) {
        self.pending_metric_scrapes.retain(|_, state| {
            state.snapshot.is_some()
                || state.issued >= now.saturating_sub(REMOTE_CURSOR_IDLE_TIMEOUT)
        });
        let Some(network) = self.runtime.network.clone() else {
            return;
        };
        let node = self.config.node_id;
        for (request, state) in self.pending_metric_scrapes.iter_mut() {
            if state.snapshot.is_some()
                || now.saturating_sub(REMOTE_QUERY_RETRY_AFTER) < state.last_request
            {
                continue;
            }
            state.last_request = now;
            self.telemetry.retransmits_total.inc();
            let _ = network.send(
                node,
                state.target,
                Message::MetricsRequest {
                    request: *request,
                    from: node,
                },
                now,
            );
        }
    }

    /// Re-sends the `TraceCollectRequest` of every stalled in-flight trace collection
    /// (serving a collect is idempotent — the peer's slice just ships again), and
    /// finalises collections whose peers never answered within
    /// [`REMOTE_CURSOR_IDLE_TIMEOUT`]: what *did* arrive still assembles, with broken
    /// parent links marking the trace incomplete.
    fn retry_stalled_trace_collects(&mut self, now: Timestamp) {
        let expired: Vec<RequestId> = self
            .pending_trace_collects
            .iter()
            .filter(|(_, state)| state.issued < now.saturating_sub(REMOTE_CURSOR_IDLE_TIMEOUT))
            .map(|(request, _)| *request)
            .collect();
        for request in expired {
            if let Some(state) = self.pending_trace_collects.remove(&request) {
                self.finish_trace_collect(state);
            }
        }
        let Some(network) = self.runtime.network.clone() else {
            return;
        };
        let node = self.config.node_id;
        for (request, state) in self.pending_trace_collects.iter_mut() {
            if now.saturating_sub(REMOTE_QUERY_RETRY_AFTER) < state.last_request {
                continue;
            }
            state.last_request = now;
            for peer in &state.pending {
                self.telemetry.retransmits_total.inc();
                let _ = network.send(
                    node,
                    *peer,
                    Message::TraceCollectRequest {
                        request: *request,
                        from: node,
                        trace_id: state.trace_id,
                    },
                    now,
                );
            }
        }
    }

    /// Re-sends Subscribe messages for remote sources whose subscription has not been
    /// acknowledged yet (and was not explicitly refused).
    fn retry_pending_subscriptions(&mut self, now: Timestamp) {
        let Some(network) = self.runtime.network.clone() else {
            return;
        };
        let node = self.config.node_id;
        for pending in &mut self.pending_subscriptions {
            if pending.acked || pending.refused {
                continue;
            }
            let _ = network.send(
                node,
                pending.producer,
                Message::Subscribe {
                    request: pending.request,
                    subscriber: node,
                    sensor: pending.sensor.clone(),
                },
                now,
            );
        }
    }

    // -----------------------------------------------------------------------------------
    // Mesh federation: ring membership, gossip, scatter-gather queries
    // -----------------------------------------------------------------------------------

    /// True when this container runs mesh federation (placement ring + replicated
    /// directory instead of a shared [`Directory`]).
    pub fn mesh_enabled(&self) -> bool {
        self.mesh.is_some()
    }

    /// This node's view of the ring membership, ordered.  Empty without a mesh.
    pub fn ring_members(&self) -> Vec<NodeId> {
        self.mesh
            .as_ref()
            .map(|m| m.ring.members())
            .unwrap_or_default()
    }

    /// This node's ring membership epoch (0 without a mesh).
    pub fn ring_epoch(&self) -> u64 {
        self.mesh.as_ref().map(|m| m.ring.epoch()).unwrap_or(0)
    }

    /// The fraction of the hash-token space primarily owned by this node, in permille.
    pub fn ring_ownership_permille(&self) -> u64 {
        self.mesh
            .as_ref()
            .map(|m| m.ring.ownership_permille(self.config.node_id))
            .unwrap_or(0)
    }

    /// The mesh members owning `key` under the placement ring, primary first.
    pub fn ring_owners(&self, key: &str) -> Vec<NodeId> {
        self.mesh
            .as_ref()
            .map(|m| m.ring.owners(key))
            .unwrap_or_default()
    }

    /// The local directory replica's full record set, tombstones included and sorted —
    /// two converged replicas return identical snapshots.
    pub fn replica_snapshot(&self) -> Vec<ReplicaRecord> {
        self.mesh
            .as_ref()
            .map(|m| m.replica.lock().snapshot())
            .unwrap_or_default()
    }

    /// Live directory entries matching every predicate, answered from the local
    /// replica (no network round trip).
    pub fn replica_lookup(&self, predicates: &[(String, String)]) -> Vec<DirectoryEntry> {
        self.mesh
            .as_ref()
            .map(|m| m.replica.lock().lookup(predicates))
            .unwrap_or_default()
    }

    /// Configures the row-shipping fallback's transport: whether per-host sub-queries
    /// stream with cursor prefetch, and how many rows each batch carries.
    pub fn set_row_ship_transport(&mut self, prefetch: bool, batch_rows: usize) {
        self.row_ship_prefetch = prefetch;
        self.row_ship_batch_rows = batch_rows.max(1);
    }

    /// Overrides the gossip cadence (steps between rounds; 0 disables gossip).
    pub fn set_gossip_interval_steps(&mut self, steps: u64) {
        if let Some(mesh) = self.mesh.as_mut() {
            mesh.gossip_interval_steps = steps;
        }
    }

    /// Joins the mesh: adopts the seed membership view (from any existing member; pass
    /// an empty view with epoch 0 to found a new mesh), adds this node to the ring, and
    /// announces the grown view to every other member.
    pub fn mesh_bootstrap(&mut self, members: &[NodeId], epoch: u64) {
        let now = self.clock.now();
        let node = self.config.node_id;
        let network = self.runtime.network.clone();
        let Some(mesh) = self.mesh.as_mut() else {
            return;
        };
        mesh.ring.install(members, epoch);
        mesh.ring.join(node);
        let view = mesh.ring.members();
        let epoch = mesh.ring.epoch();
        if let Some(network) = network {
            for peer in view.iter().filter(|p| **p != node) {
                let _ = network.send(
                    node,
                    *peer,
                    Message::RingAnnounce {
                        from: node,
                        epoch,
                        members: view.clone(),
                    },
                    now,
                );
            }
        }
    }

    /// Leaves the mesh gracefully: tombstones every sensor this node registered,
    /// pushes those tombstones to the surviving members (gossip re-delivers them if
    /// the push is lost), and announces the shrunk ring.
    pub fn mesh_leave(&mut self) {
        let now = self.clock.now();
        let node = self.config.node_id;
        let network = self.runtime.network.clone();
        let Some(mesh) = self.mesh.as_mut() else {
            return;
        };
        let records: Vec<ReplicaRecord> = {
            let mut replica = mesh.replica.lock();
            replica.deregister_node(node);
            replica
                .snapshot()
                .into_iter()
                .filter(|r| r.node == node)
                .collect()
        };
        mesh.ring.leave(node);
        let members = mesh.ring.members();
        let epoch = mesh.ring.epoch();
        if let Some(network) = network {
            for peer in &members {
                let _ = network.send(
                    node,
                    *peer,
                    Message::GossipDelta {
                        from: node,
                        records: records.clone(),
                        digest: Vec::new(),
                        health: Vec::new(),
                        trace: None,
                    },
                    now,
                );
                let _ = network.send(
                    node,
                    *peer,
                    Message::RingAnnounce {
                        from: node,
                        epoch,
                        members: members.clone(),
                    },
                    now,
                );
            }
        }
    }

    /// One anti-entropy gossip round every `gossip_interval_steps` steps: push-pull
    /// the directory digest with one pseudo-random ring peer, piggybacking a ring
    /// announce so membership views lost on a lossy link also heal, plus every
    /// member's latest health summary so the mesh health model converges the same
    /// way the directory does.
    fn run_mesh_gossip(&mut self, now: Timestamp) {
        let node = self.config.node_id;
        let Some(network) = self.runtime.network.clone() else {
            return;
        };
        let steps = self.steps;
        let interval = match self.mesh.as_ref() {
            Some(mesh) => mesh.gossip_interval_steps,
            None => return,
        };
        if interval == 0 || !steps.is_multiple_of(interval) {
            return;
        }
        // Health plane: evaluate the local rules over the live metrics snapshot,
        // versioned by the step counter so gossiped copies order correctly, and
        // mirror the verdicts into the labelled `gsn_health_state` gauges.
        let summary = evaluate_health(
            &self.metrics_snapshot(),
            &self.config.health_thresholds,
            node.as_u64(),
            steps,
        );
        for sub in &summary.subsystems {
            self.metrics
                .gauge_labeled(&crate::telemetry::HEALTH_STATE, &sub.subsystem)
                .set(sub.state.as_u8() as i64);
        }
        self.local_health = Some(summary.clone());
        let Some(mesh) = self.mesh.as_mut() else {
            return;
        };
        mesh.replica.lock().record_local_health(summary);
        let peers: Vec<NodeId> = mesh
            .ring
            .members()
            .into_iter()
            .filter(|p| *p != node)
            .collect();
        if peers.is_empty() {
            return;
        }
        mesh.rng = mesh
            .rng
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        let peer = peers[(mesh.rng >> 33) as usize % peers.len()];
        let (digest, health) = {
            let replica = mesh.replica.lock();
            (replica.digest(), replica.health_snapshot())
        };
        let message = Message::GossipDigest {
            from: node,
            digest,
            health,
            trace: None,
        };
        let announce = Message::RingAnnounce {
            from: node,
            epoch: mesh.ring.epoch(),
            members: mesh.ring.members(),
        };
        self.telemetry.gossip_rounds_total.inc();
        self.telemetry.gossip_bytes_total.add(
            (gsn_network::encode(&message).len() + gsn_network::encode(&announce).len()) as u64,
        );
        let _ = network.send(node, peer, message, now);
        let _ = network.send(node, peer, announce, now);
    }

    /// The mesh members hosting `table`'s rows per the replicated directory, restricted
    /// to this node plus current ring members (a departed node's not-yet-tombstoned
    /// entries must not be scattered to).
    fn federated_hosts(&self, table: &str) -> Vec<NodeId> {
        let node = self.config.node_id;
        let Some(mesh) = self.mesh.as_ref() else {
            return Vec::new();
        };
        let mut hosts = mesh.replica.lock().hosts_of_table(table);
        hosts.retain(|h| *h == node || mesh.ring.contains(*h));
        hosts
    }

    /// Issues a federated query across the mesh with this node as coordinator.
    ///
    /// Decomposable aggregates (`COUNT`/`SUM`/`AVG`/`MIN`/`MAX`, optionally grouped and
    /// filtered) are rewritten container-side: every host executes a partial over its
    /// own rows and only partial-aggregate frames travel — no raw rows.  Everything
    /// else falls back to shipping each host's rows over the streaming-query wire and
    /// running the original SQL locally over the union.  Poll
    /// [`take_federated_result`](Self::take_federated_result) with the returned id.
    pub fn federated_query(&mut self, sql: &str) -> GsnResult<RequestId> {
        let Some(network) = self.runtime.network.clone() else {
            return Err(GsnError::config(
                "this container has no network; federated queries are unavailable",
            ));
        };
        if self.mesh.is_none() {
            return Err(GsnError::config(
                "this container is not part of a mesh federation",
            ));
        }
        let now = self.clock.now();
        let node = self.config.node_id;
        let request = self.next_request_id;
        self.next_request_id += 1;
        self.telemetry.scatter_queries_total.inc();
        // Distributed-trace root: the trace id derives from (node, request), so it
        // is mesh-unique without a random source.  With tracing disabled the token
        // is inert and `context()` is `None` — every scatter frame then matches the
        // pre-tracing wire format exactly.
        let trace_id = ((node.as_u64() as u128) << 64) | request as u128;
        let root_span = self
            .runtime
            .trace
            .begin_traced("federated.query", SpanId::NONE, trace_id);
        let trace = root_span.context();
        let mut hops: Vec<HopBreakdown> = Vec::new();
        let mode = match gsn_sql::decompose(sql)? {
            Some(plan) => {
                let hosts = self.federated_hosts(&plan.table);
                if hosts.is_empty() {
                    return Err(GsnError::not_found(format!(
                        "no federation member hosts table `{}`",
                        plan.table
                    )));
                }
                let mut pending = Vec::new();
                let mut partials = Vec::new();
                for host in hosts {
                    if host == node {
                        partials.push(self.query(&plan.partial_sql)?.rows().to_vec());
                    } else {
                        let message = Message::PartialAggregateRequest {
                            request,
                            sql: plan.partial_sql.clone(),
                            trace,
                        };
                        // The serialize leg of the per-hop breakdown, measured by a
                        // throwaway encode — traced scatters only.
                        let serialize_micros = if trace.is_some() {
                            let watch = Stopwatch::start();
                            let _ = gsn_network::encode(&message);
                            watch.elapsed_micros()
                        } else {
                            0
                        };
                        hops.push(HopBreakdown {
                            peer: host.as_u64(),
                            serialize_micros,
                            ..HopBreakdown::default()
                        });
                        let _ = network.send(node, host, message, now);
                        pending.push(host);
                    }
                }
                FederatedMode::Partial {
                    plan,
                    pending,
                    partials,
                }
            }
            None => {
                self.telemetry.scatter_fallback_total.inc();
                let prepared =
                    gsn_sql::SqlEngine::compile(sql, &gsn_sql::OptimizerConfig::default())?;
                let referenced: Vec<String> = prepared.referenced_tables().to_vec();
                let mut pending = Vec::new();
                let mut tables: HashMap<String, Relation> = HashMap::new();
                for table in &referenced {
                    let hosts = self.federated_hosts(table);
                    if hosts.is_empty() {
                        return Err(GsnError::not_found(format!(
                            "no federation member hosts table `{table}`"
                        )));
                    }
                    for host in hosts {
                        if host == node {
                            let local = self.query(&format!("select * from {table}"))?;
                            merge_shipped_rows(&mut tables, table, local);
                        } else {
                            let sub = self.remote_query_with(
                                host,
                                &format!("select * from {table}"),
                                self.row_ship_batch_rows,
                                self.row_ship_prefetch,
                                trace,
                            )?;
                            pending.push((sub, table.clone()));
                        }
                    }
                }
                FederatedMode::RowShip {
                    pending,
                    tables,
                    referenced,
                }
            }
        };
        self.federated.insert(
            request,
            FederatedQueryState {
                sql: sql.to_owned(),
                started: now,
                last_request: now,
                last_activity: now,
                mode,
                trace,
                root_span: Some(root_span),
                hops,
                result: None,
            },
        );
        // A scatter with no remote legs (every host local) completes immediately.
        self.advance_federated_queries(now);
        Ok(request)
    }

    /// Takes the finished result of a [`federated_query`](Self::federated_query):
    /// `None` while the scatter is still gathering.
    pub fn take_federated_result(&mut self, request: RequestId) -> Option<GsnResult<Relation>> {
        self.federated.get(&request)?.result.as_ref()?;
        self.federated
            .remove(&request)
            .and_then(|state| state.result)
    }

    /// Number of federated queries this coordinator still tracks.
    pub fn pending_federated_queries(&self) -> usize {
        self.federated.len()
    }

    /// Folds one host's partial-aggregate reply into its scatter state.  Replies for
    /// untracked requests and duplicates (answers to idempotent retries) are dropped —
    /// the first reply per host wins.
    fn absorb_partial_reply(
        &mut self,
        from: NodeId,
        request: RequestId,
        rows: Vec<Vec<Value>>,
        error: String,
        server_micros: u64,
        now: Timestamp,
    ) {
        let Some(state) = self.federated.get_mut(&request) else {
            return;
        };
        let rtt_millis = now.abs_diff(state.last_request).as_millis() as u64;
        let FederatedMode::Partial {
            pending, partials, ..
        } = &mut state.mode
        else {
            return;
        };
        let Some(pos) = pending.iter().position(|h| *h == from) else {
            return;
        };
        state.last_activity = now;
        // Per-hop breakdown: reply round trip against the last (re-)scatter, server
        // execute time as reported by the peer.
        if let Some(hop) = state.hops.iter_mut().find(|h| h.peer == from.as_u64()) {
            hop.rtt_millis = rtt_millis;
            hop.remote_micros = server_micros;
        }
        if error.is_empty() {
            pending.remove(pos);
            partials.push(rows);
        } else if state.result.is_none() {
            pending.clear();
            state.result = Some(Err(GsnError::sql_exec(format!(
                "partial aggregate on {from} failed: {error}"
            ))));
        }
    }

    /// Advances every in-flight federated query: folds finished row-ship sub-queries
    /// in, re-scatters partial requests lost on lossy links, completes queries whose
    /// gather is done, and reaps the abandoned.
    fn advance_federated_queries(&mut self, now: Timestamp) {
        if self.federated.is_empty() {
            return;
        }
        let network = self.runtime.network.clone();
        let node = self.config.node_id;
        let requests: Vec<RequestId> = self.federated.keys().copied().collect();
        // Trace collections to issue once the per-request borrows are released.
        let mut collects: Vec<(TraceContext, Vec<NodeId>)> = Vec::new();
        for request in requests {
            // Poll the row-ship sub-queries (snapshot first: taking a sub-result needs
            // `&mut self` as a whole).
            let subs: Vec<(RequestId, String)> = match &self.federated[&request].mode {
                FederatedMode::RowShip { pending, .. } => pending.clone(),
                FederatedMode::Partial { .. } => Vec::new(),
            };
            for (sub, table) in subs {
                let Some(outcome) = self.take_remote_query_result(sub) else {
                    continue;
                };
                let state = self.federated.get_mut(&request).expect("state present");
                state.last_activity = now;
                match outcome {
                    Ok(result) => {
                        if let FederatedMode::RowShip {
                            pending, tables, ..
                        } = &mut state.mode
                        {
                            pending.retain(|(s, _)| *s != sub);
                            state.hops.push(result.hop);
                            merge_shipped_rows(tables, &table, result.relation);
                        }
                    }
                    Err(e) => {
                        if state.result.is_none() {
                            state.result = Some(Err(e));
                        }
                    }
                }
            }
            // Lossy-link recovery: re-scatter to hosts whose partial never arrived
            // (the server side is stateless, so duplicates are idempotent).
            let state = self.federated.get_mut(&request).expect("state present");
            if state.result.is_none() {
                if let FederatedMode::Partial { plan, pending, .. } = &state.mode {
                    if !pending.is_empty()
                        && now.saturating_sub(REMOTE_QUERY_RETRY_AFTER) >= state.last_request
                    {
                        if let Some(network) = &network {
                            for host in pending {
                                self.telemetry.retransmits_total.inc();
                                if let Some(hop) =
                                    state.hops.iter_mut().find(|h| h.peer == host.as_u64())
                                {
                                    hop.retransmits += 1;
                                }
                                let _ = network.send(
                                    node,
                                    *host,
                                    Message::PartialAggregateRequest {
                                        request,
                                        sql: plan.partial_sql.clone(),
                                        trace: state.trace,
                                    },
                                    now,
                                );
                            }
                        }
                        state.last_request = now;
                    }
                }
            }
            // Complete once the gather is fully in.
            let state = self.federated.get_mut(&request).expect("state present");
            if state.result.is_none() {
                let completed: Option<GsnResult<Relation>> = match &mut state.mode {
                    FederatedMode::Partial {
                        plan,
                        pending,
                        partials,
                    } if pending.is_empty() => Some(
                        gsn_sql::merge_partials(plan, partials).and_then(|(columns, rows)| {
                            let columns = columns
                                .iter()
                                .map(|n| gsn_sql::ColumnInfo::new(None, n, None))
                                .collect();
                            Relation::with_rows(columns, rows)
                        }),
                    ),
                    FederatedMode::RowShip {
                        pending,
                        tables,
                        referenced,
                    } if pending.is_empty() => {
                        let mut catalog = gsn_sql::MemoryCatalog::new();
                        for table in referenced.iter() {
                            if let Some(relation) = tables.remove(table) {
                                catalog.register(table, relation);
                            }
                        }
                        Some(
                            gsn_sql::parse_query(&state.sql)
                                .and_then(|query| gsn_sql::execute_query(&query, &catalog)),
                        )
                    }
                    _ => None,
                };
                if let Some(result) = completed {
                    let elapsed_millis = now.abs_diff(state.started).as_millis() as u64;
                    self.telemetry.scatter_latency_millis.record(elapsed_millis);
                    // Federated queries route through the same slow-query log as
                    // local ones, with the per-hop wire breakdown attached.  The
                    // latency is simulated-clock time: on a simnet that is the
                    // meaningful end-to-end figure, wall time is not.
                    let micros = elapsed_millis.saturating_mul(1_000);
                    let sql = state.sql.clone();
                    let hops = state.hops.clone();
                    let rows_returned = result.as_ref().map(|r| r.row_count() as u64).unwrap_or(0);
                    self.slow_queries.observe(micros, || SlowQuery {
                        sql,
                        micros,
                        explain: "federated scatter-gather".to_owned(),
                        rows_scanned: 0,
                        rows_returned,
                        hops,
                    });
                    if let Some(token) = state.root_span.take() {
                        self.runtime.trace.finish(token);
                    }
                    // Traced scatters trigger a collect of every participant's spans,
                    // assembling the full distributed tree client-side.
                    if let Some(ctx) = state.trace {
                        let peers: Vec<NodeId> =
                            state.hops.iter().map(|h| NodeId::new(h.peer)).collect();
                        collects.push((ctx, peers));
                    }
                    state.result = Some(result);
                }
            }
        }
        for (ctx, peers) in collects {
            let _ = self.start_trace_collect(ctx.trace_id, ctx.parent_span.0, peers);
        }
        // Reap abandoned scatters (no progress past the idle timeout); completed
        // results wait for their taker.
        self.federated.retain(|_, state| {
            state.result.is_some()
                || state.last_activity >= now.saturating_sub(REMOTE_CURSOR_IDLE_TIMEOUT)
        });
    }

    // -----------------------------------------------------------------------------------
    // Telemetry
    // -----------------------------------------------------------------------------------

    /// The container's metrics registry (attach additional application instruments
    /// here; they appear in every snapshot and Prometheus rendering).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// The structured trace log (disabled unless `ContainerConfig::trace_enabled`;
    /// can be toggled at runtime with [`TraceLog::set_enabled`]).
    pub fn trace_log(&self) -> &Arc<TraceLog> {
        &self.runtime.trace
    }

    /// The slow-query log: ad-hoc queries and registered evaluations slower than
    /// `ContainerConfig::slow_query_threshold_micros`, with their plan explains
    /// (federated queries appear with a per-hop wire breakdown).
    pub fn slow_queries(&self) -> Vec<SlowQuery> {
        self.slow_queries.snapshot()
    }

    /// Starts collecting every participant's spans of one distributed trace.
    /// This node's own spans are seeded immediately; each peer answers with its
    /// slice over subsequent [`step`](Self::step)s (lost requests are re-sent by
    /// the lossy-link recovery timer), and the completed tree lands in
    /// [`assembled_traces`](Self::assembled_traces).  Traced
    /// [`federated_query`](Self::federated_query) gathers trigger this
    /// automatically for the hosts they scattered to; the explicit call asks
    /// every current ring member instead.
    pub fn collect_remote_spans(&mut self, trace_id: u128) -> GsnResult<RequestId> {
        let peers = self.ring_members();
        let root = self
            .runtime
            .trace
            .spans_of_trace(trace_id)
            .iter()
            .find(|s| s.parent.is_none())
            .map(|s| s.id.0)
            .unwrap_or(0);
        self.start_trace_collect(trace_id, root, peers)
    }

    fn start_trace_collect(
        &mut self,
        trace_id: u128,
        root: u64,
        peers: Vec<NodeId>,
    ) -> GsnResult<RequestId> {
        let Some(network) = self.runtime.network.clone() else {
            return Err(GsnError::config(
                "this container has no network; trace collection is unavailable",
            ));
        };
        let now = self.clock.now();
        let node = self.config.node_id;
        let request = self.next_request_id;
        self.next_request_id += 1;
        let local: Vec<RemoteSpan> = self
            .runtime
            .trace
            .spans_of_trace(trace_id)
            .iter()
            .map(|s| RemoteSpan::from_span(node.as_u64(), s))
            .collect();
        let mut peers = peers;
        peers.sort_by_key(|p| p.as_u64());
        peers.dedup_by_key(|p| p.as_u64());
        let mut pending = Vec::new();
        for peer in peers {
            if peer == node {
                continue;
            }
            let _ = network.send(
                node,
                peer,
                Message::TraceCollectRequest {
                    request,
                    from: node,
                    trace_id,
                },
                now,
            );
            pending.push(peer);
        }
        let state = TraceCollectState {
            trace_id,
            root,
            pending,
            spans: local,
            last_request: now,
            issued: now,
        };
        if state.pending.is_empty() {
            self.finish_trace_collect(state);
        } else {
            self.pending_trace_collects.insert(request, state);
        }
        Ok(request)
    }

    /// Stitches a finished (or timed-out) collection into an assembled trace and
    /// retains it, bounded by [`MAX_ASSEMBLED_TRACES`].
    fn finish_trace_collect(&mut self, state: TraceCollectState) {
        let assembled = AssembledTrace::assemble(state.trace_id, state.root, state.spans);
        if self.assembled_traces.len() >= MAX_ASSEMBLED_TRACES {
            self.assembled_traces.pop_front();
        }
        self.assembled_traces.push_back(assembled);
    }

    /// The distributed traces assembled so far, oldest first (bounded; older ones
    /// are evicted as new collections complete).
    pub fn assembled_traces(&self) -> Vec<AssembledTrace> {
        self.assembled_traces.iter().cloned().collect()
    }

    /// Number of trace collections still waiting for peer replies.
    pub fn pending_trace_collects(&self) -> usize {
        self.pending_trace_collects.len()
    }

    /// This node's latest local health evaluation (`None` before the first mesh
    /// gossip round; standalone containers evaluate only in [`status`](Self::status)).
    pub fn local_health(&self) -> Option<HealthSummary> {
        self.local_health.clone()
    }

    /// The mesh-wide health view from this node's replica: one summary per member,
    /// sorted by node id, each carried here by gossip.  On a standalone container
    /// this is just the local summary (if one was ever evaluated).
    pub fn mesh_health(&self) -> Vec<HealthSummary> {
        match self.mesh.as_ref() {
            Some(mesh) => mesh.replica.lock().health_snapshot(),
            None => self.local_health.clone().into_iter().collect(),
        }
    }

    /// Fault-injection hook for tests and drills: records `samples` synthetic WAL
    /// fsync latency observations of `micros` each into the storage telemetry,
    /// driving the `storage` health rule without real disk stalls.
    pub fn inject_wal_sync_latency(&self, micros: u64, samples: u64) {
        for _ in 0..samples {
            self.runtime
                .storage
                .telemetry()
                .wal_sync_micros
                .record(micros);
        }
    }

    /// A typed snapshot of every metric the container exports, with the sourced
    /// totals (storage, SQL, notification, network levels) refreshed first.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let (queries, engine) = self.runtime.query_manager.stats();
        let storage = self.runtime.storage.stats();
        let notifications = self.runtime.notifications.lock().stats();
        let network = self.runtime.network.as_deref().map(SimulatedNetwork::stats);
        let directory = self.directory.as_ref().map(|d| d.stats());
        let (replica, replica_records) = match self.mesh.as_ref() {
            Some(mesh) => {
                let replica = mesh.replica.lock();
                (Some(replica.stats()), replica.snapshot().len())
            }
            None => (None, 0),
        };
        self.sourced.refresh(&SourcedTotals {
            storage: Some(&storage),
            engine: Some(&engine),
            queries: Some(&queries),
            registered_queries: self.runtime.query_manager.registered_count(),
            notifications: Some(&notifications),
            network,
            sensors: self.sensors.len(),
            remote_cursors: self.open_remote_cursors(),
            remote_queries: self.remote_queries.len(),
            directory,
            replica,
            ring_members: self.mesh.as_ref().map(|m| m.ring.len()).unwrap_or(0),
            ring_ownership_permille: self.ring_ownership_permille(),
            replica_records,
        });
        // Per-region pool counters: where hits/misses/evictions/contention land across
        // the sharded buffer pool's clock regions.
        for region in &storage.pool_regions {
            let label = region.region.to_string();
            self.metrics
                .counter_labeled(&crate::telemetry::STORAGE_POOL_REGION_HITS_TOTAL, &label)
                .store(region.hits);
            self.metrics
                .counter_labeled(&crate::telemetry::STORAGE_POOL_REGION_MISSES_TOTAL, &label)
                .store(region.misses);
            self.metrics
                .counter_labeled(
                    &crate::telemetry::STORAGE_POOL_REGION_EVICTIONS_TOTAL,
                    &label,
                )
                .store(region.evictions);
            self.metrics
                .counter_labeled(
                    &crate::telemetry::STORAGE_POOL_REGION_CONTENDED_TOTAL,
                    &label,
                )
                .store(region.contended);
        }
        // Per-link counters, for the links this node participates in.
        if let Some(network) = self.runtime.network.as_deref() {
            let node = self.config.node_id;
            for ((from, to), stats) in network.link_stats() {
                if from != node && to != node {
                    continue;
                }
                let link = format!("{from}->{to}");
                self.metrics
                    .counter_labeled(&crate::telemetry::NET_LINK_SENT_TOTAL, &link)
                    .store(stats.sent);
                self.metrics
                    .counter_labeled(&crate::telemetry::NET_LINK_DROPPED_TOTAL, &link)
                    .store(stats.dropped);
                self.metrics
                    .counter_labeled(&crate::telemetry::NET_LINK_DELIVERED_TOTAL, &link)
                    .store(stats.delivered);
                self.metrics
                    .counter_labeled(&crate::telemetry::NET_LINK_BYTES_TOTAL, &link)
                    .store(stats.bytes_sent);
            }
        }
        self.metrics.snapshot()
    }

    /// The current metrics in the Prometheus text exposition format — the scrape-able
    /// endpoint body (see `examples/telemetry.rs` for serving it over HTTP).
    pub fn render_prometheus(&self) -> String {
        self.metrics_snapshot().render_prometheus()
    }

    /// Asks a peer container for its metrics snapshot over the federation wire.
    /// The answer arrives over subsequent [`step`](Self::step)s; poll
    /// [`take_peer_metrics`](Self::take_peer_metrics) with the returned request id.
    /// Lost requests are re-sent by the step loop's lossy-link recovery timer.
    pub fn request_peer_metrics(&mut self, target: NodeId) -> GsnResult<RequestId> {
        let Some(network) = self.runtime.network.clone() else {
            return Err(GsnError::config(
                "this container has no network; peer metrics scrapes are unavailable",
            ));
        };
        let request = self.next_request_id;
        self.next_request_id += 1;
        let now = self.clock.now();
        network.send(
            self.config.node_id,
            target,
            Message::MetricsRequest {
                request,
                from: self.config.node_id,
            },
            now,
        )?;
        self.pending_metric_scrapes.insert(
            request,
            MetricScrapeState {
                target,
                snapshot: None,
                last_request: now,
                issued: now,
            },
        );
        Ok(request)
    }

    /// Takes the snapshot answering a [`request_peer_metrics`](Self::request_peer_metrics)
    /// scrape: `None` while still in flight.
    pub fn take_peer_metrics(&mut self, request: RequestId) -> Option<MetricsSnapshot> {
        self.pending_metric_scrapes
            .get(&request)?
            .snapshot
            .as_ref()?;
        self.pending_metric_scrapes
            .remove(&request)
            .and_then(|state| state.snapshot)
    }

    /// The most recent snapshot received from `node`, whichever scrape delivered it.
    pub fn peer_metrics(&self, node: NodeId) -> Option<&MetricsSnapshot> {
        self.peer_metrics.get(&node)
    }

    /// A point-in-time status snapshot.
    pub fn status(&self) -> ContainerStatus {
        let (queries, engine) = self.runtime.query_manager.stats();
        let query_partitions = self.runtime.query_manager.partition_status();
        let registered_queries = self.runtime.query_manager.registered_count();
        let notifications = self.runtime.notifications.lock().stats();
        let metrics = self.metrics_snapshot();
        let health = evaluate_health(
            &metrics,
            &self.config.health_thresholds,
            self.config.node_id.as_u64(),
            self.steps,
        );
        ContainerStatus {
            name: self.config.name.clone(),
            node: self.config.node_id,
            sensors: self
                .sensors
                .iter()
                .map(|(n, s)| {
                    let guard = s.lock();
                    SensorStatus {
                        name: n.as_str().to_owned(),
                        stats: guard.stats(),
                        silence_episodes: guard
                            .source_quality()
                            .iter()
                            .map(|(_, _, q)| q.silence_episodes)
                            .sum(),
                    }
                })
                .collect(),
            storage: self.runtime.storage.stats(),
            notifications,
            queries,
            query_partitions,
            engine,
            registered_queries,
            wrapper_kinds: self.registry.kinds(),
            workers: self.pool.as_ref().map(WorkerPool::size).unwrap_or(1),
            pool_jobs: self.pool.as_ref().map(WorkerPool::stats),
            health,
            metrics,
        }
    }
}

/// Derives a schema from a relation's column names (for client-result notifications).
fn relation_schema(relation: &Relation) -> gsn_types::StreamSchema {
    let mut schema = gsn_types::StreamSchema::empty();
    for (i, column) in relation.columns().iter().enumerate() {
        let name = if column.name.eq_ignore_ascii_case("pk")
            || column.name.eq_ignore_ascii_case("timed")
        {
            format!("{}_{}", column.name, i)
        } else {
            column.name.clone()
        };
        let field = gsn_types::FieldSpec::new(
            &name,
            column.data_type.unwrap_or(gsn_types::DataType::Varchar),
        );
        if let Ok(field) = field {
            let _ = schema.push(field);
        }
    }
    schema
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsn_types::{DataType, SimulatedClock, Value};
    use gsn_xml::{AddressSpec, InputStreamSpec, StreamSourceSpec};

    fn mote_descriptor(name: &str, interval_ms: u32) -> VirtualSensorDescriptor {
        VirtualSensorDescriptor::builder(name)
            .unwrap()
            .metadata("type", "temperature")
            .output_field("avg_temp", DataType::Double)
            .unwrap()
            .permanent_storage(true)
            .input_stream(
                InputStreamSpec::new("main", "select * from src1").with_source(
                    StreamSourceSpec::new(
                        "src1",
                        AddressSpec::new("mote")
                            .with_predicate("interval", &interval_ms.to_string()),
                        "select avg(temperature) as avg_temp from WRAPPER",
                    )
                    .with_window(gsn_storage::WindowSpec::Count(10)),
                ),
            )
            .build()
            .unwrap()
    }

    fn standalone() -> (GsnContainer, SimulatedClock) {
        let clock = SimulatedClock::new();
        let container = GsnContainer::new(ContainerConfig::default(), Arc::new(clock.clone()));
        (container, clock)
    }

    #[test]
    fn deploy_step_and_query() {
        let (mut container, clock) = standalone();
        container.deploy(mote_descriptor("room-temp", 100)).unwrap();
        assert_eq!(container.sensor_names(), vec!["room-temp"]);

        clock.advance(gsn_types::Duration::from_secs(1));
        let report = container.step();
        assert_eq!(report.local_arrivals, 10);
        assert_eq!(report.outputs, 10);
        assert_eq!(report.errors, 0);

        let rel = container
            .query("select count(*) as n from room_temp")
            .unwrap();
        assert_eq!(rel.rows()[0][0], Value::Integer(10));
        let stats = container.sensor_stats("room-temp").unwrap();
        assert_eq!(stats.outputs, 10);
        assert!(container.sensor_stats("nosuch").is_err());

        let status = container.status();
        assert_eq!(status.sensors.len(), 1);
        assert_eq!(status.workers, 1);
        assert!(status.pool_jobs.is_none());
        assert!(status.render().contains("room-temp"));
        assert!(status.render().contains("sequential"));
    }

    #[test]
    fn sharded_step_uses_the_worker_pool() {
        let clock = SimulatedClock::new();
        let config = ContainerConfig::default().with_workers(4);
        let mut container = GsnContainer::new(config, Arc::new(clock.clone()));
        for i in 0..8 {
            container
                .deploy(mote_descriptor(&format!("mote-{i}"), 100))
                .unwrap();
        }
        clock.advance(gsn_types::Duration::from_secs(1));
        let report = container.step();
        assert_eq!(report.local_arrivals, 80);
        assert_eq!(report.outputs, 80);
        assert_eq!(report.errors, 0);

        let status = container.status();
        assert_eq!(status.workers, 4);
        // The step barrier waits for every shard's result; the pool's completion counter
        // ticks just after the result is sent, so it may trail by a hair.
        let (submitted, completed) = status.pool_jobs.unwrap();
        assert!(submitted > 0);
        assert!(completed <= submitted);
        assert!(status.render().contains("step loop: 4 workers"));
    }

    #[test]
    fn silence_is_counted_in_the_report_and_status() {
        let (mut container, clock) = standalone();
        // A push channel the application feeds once and then abandons (mote-style
        // generators never fall silent: they synthesise data on every poll).
        let schema = Arc::new(
            gsn_types::StreamSchema::from_pairs(&[("reading", DataType::Double)]).unwrap(),
        );
        let push_factory = Arc::new(gsn_wrappers::PushWrapperFactory::new());
        container.wrapper_registry().deregister("push").unwrap();
        container
            .wrapper_registry()
            .register(Arc::clone(&push_factory) as Arc<dyn gsn_wrappers::WrapperFactory>)
            .unwrap();
        let handle = push_factory.handle("quiet-feed", schema);
        container
            .deploy_xml(
                r#"<virtual-sensor name="quiet">
                     <output-structure><field name="reading" type="double"/></output-structure>
                     <input-stream name="main">
                       <stream-source alias="s" storage-size="1">
                         <address wrapper="push"><predicate key="channel" val="quiet-feed"/></address>
                         <query>select reading from WRAPPER</query>
                       </stream-source>
                       <query>select * from s</query>
                     </input-stream>
                   </virtual-sensor>"#,
            )
            .unwrap();
        handle
            .push_values(vec![Value::Double(1.0)], Timestamp(100))
            .unwrap();
        clock.advance(gsn_types::Duration::from_millis(500));
        let report = container.step();
        assert_eq!(report.outputs, 1);
        assert_eq!(report.silence_events, 0);
        // No data for longer than the 30 s silence threshold: one silence event,
        // reported once per episode.
        clock.advance(gsn_types::Duration::from_secs(31));
        let report = container.step();
        assert_eq!(report.silence_events, 1);
        assert_eq!(container.step().silence_events, 0);
        let status = container.status();
        assert_eq!(status.sensors[0].silence_episodes, 1);
        assert!(status.render().contains("silence episode"));
    }

    #[test]
    fn duplicate_and_unknown_deployments() {
        let (mut container, _clock) = standalone();
        container.deploy(mote_descriptor("dup", 100)).unwrap();
        assert!(container.deploy(mote_descriptor("dup", 100)).is_err());
        assert!(container.undeploy("nosuch").is_err());
        container.undeploy("dup").unwrap();
        assert!(container.sensor_names().is_empty());
        assert!(container.storage().table_names().is_empty());
        // Redeployment after undeploy works.
        container.deploy(mote_descriptor("dup", 100)).unwrap();
    }

    #[test]
    fn deploy_from_xml_text() {
        let (mut container, clock) = standalone();
        let xml = r#"<virtual-sensor name="xml-sensor">
          <output-structure><field name="light" type="double"/></output-structure>
          <input-stream name="main">
            <stream-source alias="s" storage-size="5">
              <address wrapper="mote"><predicate key="interval" val="200"/></address>
              <query>select avg(light) as light from WRAPPER</query>
            </stream-source>
            <query>select * from s</query>
          </input-stream>
        </virtual-sensor>"#;
        container.deploy_xml(xml).unwrap();
        clock.advance(gsn_types::Duration::from_secs(1));
        let report = container.step();
        assert_eq!(report.outputs, 5);
        assert!(container.deploy_xml("<broken").is_err());
    }

    #[test]
    fn subscriptions_receive_outputs() {
        let (mut container, clock) = standalone();
        container.deploy(mote_descriptor("room-temp", 250)).unwrap();
        let (_id, rx) = container.subscribe("room-temp").unwrap();
        assert!(container.subscribe("nosuch").is_err());
        clock.advance(gsn_types::Duration::from_secs(1));
        container.step();
        let notifications: Vec<Notification> = rx.try_iter().collect();
        assert_eq!(notifications.len(), 4);
        assert!(notifications[0].element.value("AVG_TEMP").is_some());
    }

    #[test]
    fn registered_queries_run_per_output() {
        let (mut container, clock) = standalone();
        container.deploy(mote_descriptor("room-temp", 500)).unwrap();
        for i in 0..10 {
            container
                .register_query(
                    &format!("client-{i}"),
                    "select avg(avg_temp) from room_temp where avg_temp > 0",
                    WindowSpec::Count(50),
                    None,
                )
                .unwrap();
        }
        assert_eq!(container.registered_query_count(), 10);
        clock.advance(gsn_types::Duration::from_secs(1));
        let report = container.step();
        assert_eq!(report.outputs, 2);
        assert_eq!(report.client_query_evaluations, 20);
        let id = container
            .register_query(
                "late",
                "select * from room_temp",
                WindowSpec::Count(1),
                None,
            )
            .unwrap();
        container.deregister_query(id).unwrap();
        assert_eq!(container.registered_query_count(), 10);
    }

    #[test]
    fn query_cursor_streams_in_batches_and_tracks_counters() {
        let (mut container, clock) = standalone();
        container.deploy(mote_descriptor("room-temp", 100)).unwrap();
        clock.advance(gsn_types::Duration::from_secs(1));
        container.step();

        // Batched pulls drain the same rows query() materialises.
        let reference = container.query("select avg_temp from room_temp").unwrap();
        assert_eq!(reference.row_count(), 10);
        let mut cursor = container
            .query_cursor("select avg_temp from room_temp")
            .unwrap();
        assert_eq!(cursor.columns().len(), 1);
        let first = cursor.next_batch(4).unwrap();
        assert_eq!(first.row_count(), 4);
        assert!(!cursor.is_done());
        let rest = cursor.collect().unwrap();
        assert_eq!(rest.row_count(), 6);
        assert!(cursor.is_done());
        assert_eq!(cursor.rows_returned(), 10);
        let mut all: Vec<Vec<Value>> = first.rows().to_vec();
        all.extend(rest.rows().to_vec());
        assert_eq!(all, reference.rows());

        // LIMIT early-exits: only the limited prefix of the table is scanned.
        let mut limited = container
            .query_cursor("select avg_temp from room_temp limit 2")
            .unwrap();
        assert_eq!(limited.next_batch(10).unwrap().row_count(), 2);
        assert!(limited.is_done());
        assert_eq!(limited.rows_scanned(), 2, "{limited:?}");

        // The engine's scanned/returned counters surface in the status report, and
        // dropping a cursor folds its telemetry in so streaming executions count too.
        let scanned_before_drop = container.status().engine.rows_scanned;
        drop(limited);
        let status = container.status();
        assert_eq!(status.engine.rows_scanned, scanned_before_drop + 2);
        assert!(status.render().contains("query executor:"));

        // Access control applies to cursors like it does to query().
        container
            .access_control()
            .restrict_sensor("room_temp", vec![Principal::named("alice")]);
        assert!(container.query_cursor("select * from room_temp").is_err());
        assert!(container
            .query_cursor_as(&Principal::named("alice"), "select * from room_temp")
            .is_ok());
    }

    #[test]
    fn access_control_gates_adhoc_queries() {
        let (mut container, clock) = standalone();
        container
            .deploy(mote_descriptor("private-temp", 100))
            .unwrap();
        clock.advance(gsn_types::Duration::from_millis(500));
        container.step();
        container
            .access_control()
            .restrict_sensor("private_temp", vec![Principal::named("alice")]);
        assert!(container.query("select * from private_temp").is_err());
        assert!(container
            .query_as(&Principal::named("alice"), "select * from private_temp")
            .is_ok());
        assert!(container
            .query_as(&Principal::named("eve"), "select * from private_temp")
            .is_err());
    }

    #[test]
    fn explain_and_bad_queries() {
        let (mut container, _clock) = standalone();
        container.deploy(mote_descriptor("room-temp", 100)).unwrap();
        let plan = container
            .explain("select avg(avg_temp) from room_temp")
            .unwrap();
        assert!(plan.contains("Aggregate"));
        assert!(container.query("select * from missing_table").is_err());
        assert!(container.query("not sql").is_err());
    }

    #[test]
    fn max_virtual_sensors_is_enforced() {
        let clock = SimulatedClock::new();
        let config = ContainerConfig {
            max_virtual_sensors: 1,
            ..Default::default()
        };
        let mut container = GsnContainer::new(config, Arc::new(clock));
        container.deploy(mote_descriptor("one", 100)).unwrap();
        let err = container.deploy(mote_descriptor("two", 100)).unwrap_err();
        assert_eq!(err.category(), "resource-exhausted");
    }

    #[test]
    fn remote_sources_require_a_directory() {
        let (mut container, _clock) = standalone();
        let descriptor = VirtualSensorDescriptor::builder("follower")
            .unwrap()
            .output_field("v", DataType::Double)
            .unwrap()
            .input_stream(InputStreamSpec::new("main", "select * from r").with_source(
                StreamSourceSpec::new(
                    "r",
                    AddressSpec::new("remote").with_predicate("type", "temperature"),
                    "select avg(v) as v from WRAPPER",
                ),
            ))
            .build()
            .unwrap();
        let err = container.deploy(descriptor).unwrap_err();
        assert_eq!(err.category(), "config");
        // Failed deployment leaves nothing behind.
        assert!(container.sensor_names().is_empty());
        assert!(container.storage().table_names().is_empty());
    }

    #[test]
    fn exhausted_remote_cursor_tombstones_are_bounded() {
        let (mut container, clock) = standalone();
        container.deploy(mote_descriptor("room-temp", 100)).unwrap();
        clock.advance(gsn_types::Duration::from_secs(1));
        container.step();
        // A peer loops short single-batch queries: every one completes immediately and
        // leaves a retransmission tombstone.  The tombstone count must stay bounded
        // instead of accumulating until the 60 s idle reaper.
        let peer = gsn_types::NodeId::new(9);
        for request in 0..(3 * MAX_REMOTE_CURSORS as u64) {
            let mut replies = container.serve_query_request(
                peer,
                request,
                "select avg_temp from room_temp limit 1",
                16,
                false,
                None,
            );
            assert_eq!(replies.len(), 1);
            match replies.pop().expect("one reply") {
                Message::QueryBatch { done, error, .. } => {
                    assert!(done);
                    assert!(error.is_empty(), "{error}");
                }
                other => panic!("unexpected reply {other:?}"),
            }
        }
        assert_eq!(container.open_remote_cursors(), 0);
        assert!(
            container.remote_cursors.len() <= MAX_REMOTE_CURSORS + 1,
            "tombstones leaked: {}",
            container.remote_cursors.len()
        );
    }

    #[test]
    fn shard_assignment_is_stable_and_total() {
        let names: Vec<VirtualSensorName> = (0..64)
            .map(|i| VirtualSensorName::new(&format!("sensor-{i}")).unwrap())
            .collect();
        for shards in [1usize, 2, 4, 8] {
            for name in &names {
                let a = sensor_shard(name, shards);
                let b = sensor_shard(name, shards);
                assert_eq!(a, b);
                assert!(a < shards);
            }
        }
        // All shards get some work on a reasonably sized population.
        let hit: std::collections::HashSet<usize> =
            names.iter().map(|n| sensor_shard(n, 4)).collect();
        assert_eq!(hit.len(), 4);
        // Sensors and their output tables co-locate: the query partition of a sensor's
        // output table is the sensor's own worker shard.
        for name in &names {
            let table = VirtualSensor::output_table_name(name);
            assert_eq!(sensor_shard(name, 4), shard_index(&table, 4));
        }
    }
}
