//! The GSN container: the runtime hosting a pool of virtual sensors on one node.
//!
//! "GSN follows a container-based architecture and each container can host and manage one
//! or more virtual sensors concurrently.  The container manages every aspect of the
//! virtual sensors at runtime including remote access, interaction with the sensor
//! network, security, persistence, data filtering, concurrency, and access to and pooling
//! of resources" (paper, Section 4).
//!
//! The container is clock-driven: [`GsnContainer::step`] advances every hosted virtual
//! sensor by polling its wrappers, draining network deliveries, running the processing
//! pipeline for each arrival, evaluating registered client queries and delivering
//! notifications.  Live deployments call `step` from a timer loop on the wall clock;
//! tests and benchmark harnesses drive it from a [`gsn_types::SimulatedClock`].

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use gsn_network::{
    AccessController, Directory, IntegrityService, Message, Operation, Principal, SimulatedNetwork,
};
use gsn_sql::Relation;
use gsn_storage::{StorageManager, StorageStats, WindowSpec};
use gsn_types::{Clock, GsnError, GsnResult, NodeId, StreamElement, Timestamp, VirtualSensorName};
use gsn_wrappers::WrapperRegistry;
use gsn_xml::VirtualSensorDescriptor;

use crate::config::ContainerConfig;
use crate::notification::{Notification, NotificationManager, NotificationStats, SubscriptionId};
use crate::query::{ClientQueryId, ClientQueryResult, QueryManager, QueryManagerStats};
use crate::sensor::{SensorStats, SourceRef, VirtualSensor};

/// What one call to [`GsnContainer::step`] did — the per-tick telemetry the benchmark
/// harnesses aggregate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepReport {
    /// Stream elements that arrived from local wrappers.
    pub local_arrivals: u64,
    /// Stream elements that arrived from remote deliveries.
    pub remote_arrivals: u64,
    /// Output stream elements produced by virtual sensors.
    pub outputs: u64,
    /// Registered client-query evaluations performed.
    pub client_query_evaluations: u64,
    /// Pipeline errors.
    pub errors: u64,
    /// Total wall-clock time spent inside sensor pipelines during this step, microseconds.
    pub processing_micros: u64,
}

impl StepReport {
    fn absorb(&mut self, other: StepReport) {
        self.local_arrivals += other.local_arrivals;
        self.remote_arrivals += other.remote_arrivals;
        self.outputs += other.outputs;
        self.client_query_evaluations += other.client_query_evaluations;
        self.errors += other.errors;
        self.processing_micros += other.processing_micros;
    }
}

/// A point-in-time status snapshot of the container (the programmatic equivalent of the
/// paper's monitoring web interface).
#[derive(Debug, Clone)]
pub struct ContainerStatus {
    /// The container name.
    pub name: String,
    /// The node identity.
    pub node: NodeId,
    /// Per-sensor statistics.
    pub sensors: Vec<(String, SensorStats)>,
    /// Storage statistics.
    pub storage: StorageStats,
    /// Notification statistics.
    pub notifications: NotificationStats,
    /// Query manager statistics.
    pub queries: QueryManagerStats,
    /// Number of registered client queries.
    pub registered_queries: usize,
    /// Wrapper kinds available on this container.
    pub wrapper_kinds: Vec<String>,
}

impl ContainerStatus {
    /// Renders the status as a human-readable multi-line report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("GSN container `{}` on {}\n", self.name, self.node));
        out.push_str(&format!(
            "  wrappers: {}\n  storage: {}\n",
            self.wrapper_kinds.join(", "),
            self.storage
        ));
        out.push_str(&format!(
            "  registered client queries: {} (evaluated {}, failed {})\n",
            self.registered_queries,
            self.queries.registered_evaluated,
            self.queries.registered_failed
        ));
        out.push_str(&format!(
            "  notifications: local {} delivered, remote {} delivered / {} buffered / {} dropped\n",
            self.notifications.local_delivered,
            self.notifications.remote_delivered,
            self.notifications.remote_buffered,
            self.notifications.remote_dropped
        ));
        out.push_str(&format!("  virtual sensors ({}):\n", self.sensors.len()));
        for (name, stats) in &self.sensors {
            out.push_str(&format!(
                "    {name}: {} arrivals, {} outputs, {} errors, mean pipeline {:.3} ms\n",
                stats.arrivals,
                stats.outputs,
                stats.errors,
                stats.mean_processing_ms()
            ));
        }
        out
    }
}

/// The GSN container.
pub struct GsnContainer {
    config: ContainerConfig,
    clock: Arc<dyn Clock>,
    registry: Arc<WrapperRegistry>,
    storage: Arc<StorageManager>,
    sensors: BTreeMap<VirtualSensorName, VirtualSensor>,
    query_manager: QueryManager,
    notifications: NotificationManager,
    access: AccessController,
    integrity: IntegrityService,
    network: Option<Arc<SimulatedNetwork>>,
    directory: Option<Arc<Directory>>,
    /// Routes incoming remote deliveries: remote sensor name -> local consumers.
    remote_routes: HashMap<String, Vec<(VirtualSensorName, SourceRef)>>,
    /// Remote subscriptions this container has requested but not yet seen acknowledged.
    /// Un-acked subscriptions are re-sent on every step so that a lost Subscribe message
    /// (lossy link, partition during deployment) does not silence the source forever.
    pending_subscriptions: Vec<PendingSubscription>,
    next_request_id: u64,
}

#[derive(Debug, Clone)]
struct PendingSubscription {
    producer: NodeId,
    sensor: String,
    request: u64,
    acked: bool,
    refused: bool,
}

impl std::fmt::Debug for GsnContainer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "GsnContainer({}, {} sensors)",
            self.config.name,
            self.sensors.len()
        )
    }
}

impl GsnContainer {
    /// Creates a standalone container (no peer-to-peer networking) on the given clock.
    pub fn new(config: ContainerConfig, clock: Arc<dyn Clock>) -> GsnContainer {
        Self::build(config, clock, None, None)
    }

    /// Creates a container attached to a simulated network and shared directory.
    pub fn with_network(
        config: ContainerConfig,
        clock: Arc<dyn Clock>,
        network: Arc<SimulatedNetwork>,
        directory: Arc<Directory>,
    ) -> GsnResult<GsnContainer> {
        network.add_node(config.node_id)?;
        Ok(Self::build(config, clock, Some(network), Some(directory)))
    }

    fn build(
        config: ContainerConfig,
        clock: Arc<dyn Clock>,
        network: Option<Arc<SimulatedNetwork>>,
        directory: Option<Arc<Directory>>,
    ) -> GsnContainer {
        GsnContainer {
            notifications: NotificationManager::new(
                config.node_id,
                config.disconnect_buffer_capacity,
            ),
            query_manager: QueryManager::new(config.query_cache_enabled),
            registry: Arc::new(WrapperRegistry::with_builtins()),
            storage: Arc::new(StorageManager::with_options(config.storage_options())),
            sensors: BTreeMap::new(),
            access: AccessController::permissive(),
            integrity: IntegrityService::new(),
            remote_routes: HashMap::new(),
            pending_subscriptions: Vec::new(),
            next_request_id: 1,
            clock,
            network,
            directory,
            config,
        }
    }

    /// The container configuration.
    pub fn config(&self) -> &ContainerConfig {
        &self.config
    }

    /// The node identity.
    pub fn node_id(&self) -> NodeId {
        self.config.node_id
    }

    /// The container clock.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// The wrapper registry (register additional platforms here before deploying).
    pub fn wrapper_registry(&self) -> &Arc<WrapperRegistry> {
        &self.registry
    }

    /// The storage manager (read-only access for inspection; the container owns writes).
    pub fn storage(&self) -> &Arc<StorageManager> {
        &self.storage
    }

    /// Checkpoints every persistent storage table to stable storage.
    ///
    /// Persistent tables also checkpoint automatically on WAL growth and when the
    /// container is dropped; call this for an explicit durability point (e.g. before
    /// process hand-over).
    pub fn flush_storage(&self) -> GsnResult<()> {
        self.storage.flush_all()
    }

    /// The access-control layer.
    pub fn access_control(&self) -> &AccessController {
        &self.access
    }

    /// The data-integrity service.
    pub fn integrity(&self) -> &IntegrityService {
        &self.integrity
    }

    /// The names of all deployed virtual sensors, sorted.
    pub fn sensor_names(&self) -> Vec<String> {
        self.sensors.keys().map(|n| n.as_str().to_owned()).collect()
    }

    /// Per-sensor processing statistics.
    pub fn sensor_stats(&self, name: &str) -> GsnResult<SensorStats> {
        let key = VirtualSensorName::new(name)?;
        self.sensors
            .get(&key)
            .map(|s| s.stats())
            .ok_or_else(|| GsnError::not_found(format!("virtual sensor `{name}` is not deployed")))
    }

    // -----------------------------------------------------------------------------------
    // Deployment
    // -----------------------------------------------------------------------------------

    /// Deploys a virtual sensor from its XML descriptor text.
    pub fn deploy_xml(&mut self, xml: &str) -> GsnResult<VirtualSensorName> {
        let descriptor = VirtualSensorDescriptor::parse(xml)?;
        self.deploy(descriptor)
    }

    /// Deploys a virtual sensor from a parsed descriptor.
    ///
    /// Deployment publishes the sensor's metadata to the directory (when networked) and,
    /// for every `wrapper="remote"` stream source, resolves the predicates through the
    /// directory and subscribes to the producing node.
    pub fn deploy(&mut self, descriptor: VirtualSensorDescriptor) -> GsnResult<VirtualSensorName> {
        if self.sensors.len() >= self.config.max_virtual_sensors {
            return Err(GsnError::resource_exhausted(format!(
                "container `{}` already hosts {} virtual sensors",
                self.config.name,
                self.sensors.len()
            )));
        }
        let name = descriptor.name.clone();
        if self.sensors.contains_key(&name) {
            return Err(GsnError::already_exists(format!(
                "virtual sensor `{name}` is already deployed"
            )));
        }

        let directory = self.directory.clone();
        let node_id = self.config.node_id;
        let deployed_at = self.clock.now();
        let sensor = VirtualSensor::deploy(
            descriptor,
            &self.registry,
            &self.storage,
            |address| match &directory {
                Some(directory) => {
                    let entry = directory.resolve_one(&address.predicates)?;
                    if entry.node == node_id {
                        // Local loop-back: treat the local sensor as a remote producer on
                        // the same node; deliveries short-circuit through notify().
                        Ok((entry.node, entry.sensor.clone()))
                    } else {
                        Ok((entry.node, entry.sensor.clone()))
                    }
                }
                None => Err(GsnError::config(
                    "this container has no directory; `wrapper=\"remote\"` sources are unavailable",
                )),
            },
            deployed_at,
        )?;

        // Publish to the directory.
        if let Some(directory) = &self.directory {
            let mut metadata = sensor.descriptor().metadata.clone();
            metadata.push(("name".to_owned(), name.as_str().to_owned()));
            metadata.push(("container".to_owned(), self.config.name.clone()));
            directory.register(self.config.node_id, name.as_str(), metadata)?;
        }

        // Wire up remote sources: remember the routing and send Subscribe messages.
        for (producer, remote_sensor, source_ref) in sensor.remote_sources() {
            self.remote_routes
                .entry(remote_sensor.to_ascii_lowercase())
                .or_default()
                .push((name.clone(), source_ref));
            if producer != self.config.node_id {
                if let Some(network) = &self.network {
                    let request = self.next_request_id;
                    self.next_request_id += 1;
                    let _ = network.send(
                        self.config.node_id,
                        producer,
                        Message::Subscribe {
                            request,
                            subscriber: self.config.node_id,
                            sensor: remote_sensor.clone(),
                        },
                        self.clock.now(),
                    );
                    self.pending_subscriptions.push(PendingSubscription {
                        producer,
                        sensor: remote_sensor.clone(),
                        request,
                        acked: false,
                        refused: false,
                    });
                }
            } else {
                // Producer is this very container: subscribe locally.
                self.notifications
                    .add_remote_subscriber(self.config.node_id, &remote_sensor);
            }
        }

        self.sensors.insert(name.clone(), sensor);
        Ok(name)
    }

    /// Undeploys a virtual sensor, dropping its storage and directory entry.
    pub fn undeploy(&mut self, name: &str) -> GsnResult<()> {
        let key = VirtualSensorName::new(name)?;
        let mut sensor = self.sensors.remove(&key).ok_or_else(|| {
            GsnError::not_found(format!("virtual sensor `{name}` is not deployed"))
        })?;
        sensor.teardown(&self.storage);
        if let Some(directory) = &self.directory {
            let _ = directory.deregister(self.config.node_id, key.as_str());
        }
        self.remote_routes.values_mut().for_each(|routes| {
            routes.retain(|(owner, _)| owner != &key);
        });
        // Drop pending subscriptions (and send Unsubscribe) for remote sensors no local
        // consumer references any more.
        let orphaned: Vec<String> = self
            .remote_routes
            .iter()
            .filter(|(_, routes)| routes.is_empty())
            .map(|(sensor, _)| sensor.clone())
            .collect();
        for sensor in &orphaned {
            if let Some(network) = &self.network {
                if let Some(pending) = self
                    .pending_subscriptions
                    .iter()
                    .find(|p| p.sensor.eq_ignore_ascii_case(sensor))
                {
                    let _ = network.send(
                        self.config.node_id,
                        pending.producer,
                        Message::Unsubscribe {
                            subscriber: self.config.node_id,
                            sensor: sensor.clone(),
                        },
                        self.clock.now(),
                    );
                }
            }
            self.pending_subscriptions
                .retain(|p| !p.sensor.eq_ignore_ascii_case(sensor));
        }
        self.remote_routes.retain(|_, routes| !routes.is_empty());
        Ok(())
    }

    // -----------------------------------------------------------------------------------
    // Querying and subscriptions
    // -----------------------------------------------------------------------------------

    /// Executes an ad-hoc SQL query over the container's virtual sensor output tables.
    pub fn query(&mut self, sql: &str) -> GsnResult<Relation> {
        self.query_as(&Principal::Anonymous, sql)
    }

    /// Executes an ad-hoc SQL query on behalf of a principal, enforcing access control on
    /// every referenced virtual sensor.
    pub fn query_as(&mut self, principal: &Principal, sql: &str) -> GsnResult<Relation> {
        let prepared = gsn_sql::SqlEngine::compile(sql, &gsn_sql::OptimizerConfig::default())?;
        for table in prepared.referenced_tables() {
            self.access.authorize(principal, Operation::Read, table)?;
        }
        self.query_manager
            .execute_adhoc(sql, &self.storage, self.clock.now())
    }

    /// Renders the execution plan of a query (EXPLAIN).
    pub fn explain(&mut self, sql: &str) -> GsnResult<String> {
        self.query_manager.explain(sql)
    }

    /// Registers a continuous client query (see [`QueryManager::register`]).
    pub fn register_query(
        &mut self,
        client: &str,
        sql: &str,
        history: WindowSpec,
        sampling_rate: Option<f64>,
    ) -> GsnResult<ClientQueryId> {
        self.query_manager
            .register(client, sql, history, sampling_rate)
    }

    /// Removes a registered client query.
    pub fn deregister_query(&mut self, id: ClientQueryId) -> GsnResult<()> {
        self.query_manager.deregister(id)
    }

    /// Number of registered client queries.
    pub fn registered_query_count(&self) -> usize {
        self.query_manager.registered_count()
    }

    /// Subscribes to a virtual sensor's output stream; notifications arrive on the
    /// returned channel.
    pub fn subscribe(
        &mut self,
        sensor: &str,
    ) -> GsnResult<(SubscriptionId, crossbeam::channel::Receiver<Notification>)> {
        self.require_sensor(sensor)?;
        Ok(self.notifications.subscribe_channel(sensor))
    }

    /// Subscribes a callback to a virtual sensor's output stream.
    pub fn subscribe_callback(
        &mut self,
        sensor: &str,
        callback: impl Fn(&Notification) + Send + Sync + 'static,
    ) -> GsnResult<SubscriptionId> {
        self.require_sensor(sensor)?;
        Ok(self.notifications.subscribe_callback(sensor, callback))
    }

    /// Cancels a local subscription.
    pub fn unsubscribe(&mut self, id: SubscriptionId) -> GsnResult<()> {
        self.notifications.unsubscribe(id)
    }

    fn require_sensor(&self, sensor: &str) -> GsnResult<()> {
        let key = VirtualSensorName::new(sensor)?;
        let table = VirtualSensor::output_table_name(&key);
        if self.sensors.contains_key(&key) || self.storage.has_table(&table) {
            Ok(())
        } else {
            Err(GsnError::not_found(format!(
                "virtual sensor `{sensor}` is not deployed on this container"
            )))
        }
    }

    // -----------------------------------------------------------------------------------
    // The processing loop
    // -----------------------------------------------------------------------------------

    /// Advances the container to the clock's current time: drains the network, polls local
    /// wrappers, runs pipelines, evaluates registered queries and delivers notifications.
    pub fn step(&mut self) -> StepReport {
        let now = self.clock.now();
        let mut report = StepReport::default();

        // 1. Network intake (remote deliveries, subscription management).
        report.absorb(self.drain_network(now));

        // 1b. Retry remote subscriptions that were never acknowledged (the Subscribe
        // message may have been lost on a lossy link or during a partition).
        self.retry_pending_subscriptions(now);

        // 2. Local wrapper polling + pipeline execution.
        let names: Vec<VirtualSensorName> = self.sensors.keys().cloned().collect();
        for name in names {
            let arrivals = {
                let sensor = self.sensors.get_mut(&name).expect("sensor present");
                sensor.poll_local_sources(now)
            };
            for (source_ref, element) in arrivals {
                report.local_arrivals += 1;
                report.absorb(self.process_one(&name, source_ref, element, now));
            }
            // Stream-quality: silence detection.
            if let Some(sensor) = self.sensors.get_mut(&name) {
                let _ = sensor.check_silence(now);
            }
        }

        // 3. Storage housekeeping.
        self.storage.prune_all(now);
        report
    }

    /// Processes a single element arrival for one sensor/source and fans out the result.
    fn process_one(
        &mut self,
        name: &VirtualSensorName,
        source_ref: SourceRef,
        element: StreamElement,
        now: Timestamp,
    ) -> StepReport {
        let mut report = StepReport::default();
        let Some(sensor) = self.sensors.get_mut(name) else {
            return report;
        };
        let before = sensor.stats();
        let outcome = sensor.process_arrival(source_ref, element, now, &self.storage);
        let after = sensor.stats();
        report.processing_micros += after.total_processing_micros - before.total_processing_micros;
        let output_table = sensor.output_table().to_owned();
        match outcome {
            Ok(Some(output)) => {
                report.outputs += 1;
                // Registered client queries over this sensor's output.
                let results =
                    self.query_manager
                        .evaluate_for_table(&output_table, &self.storage, now);
                report.client_query_evaluations += results.len() as u64;
                self.deliver_client_results(results, now);
                // Local + remote notifications.
                self.notifications
                    .notify(name.as_str(), &output, now, self.network.as_deref());
                // Local loop-back remote routes (a sensor on this node consuming another
                // local sensor through the `remote` wrapper).
                let local_routes = self
                    .remote_routes
                    .get(name.as_str())
                    .cloned()
                    .unwrap_or_default();
                for (consumer, consumer_ref) in local_routes {
                    if &consumer != name {
                        report.remote_arrivals += 1;
                        report.absorb(self.deliver_remote(
                            &consumer,
                            consumer_ref,
                            output.clone(),
                            now,
                        ));
                    }
                }
            }
            Ok(None) => {}
            Err(_) => report.errors += 1,
        }
        report
    }

    /// Routes client-query results to their subscribers (modelled as notifications on the
    /// client's name; the extensible channel architecture of the notification manager lets
    /// applications attach whatever transport they need).
    fn deliver_client_results(&mut self, results: Vec<ClientQueryResult>, now: Timestamp) {
        for result in results {
            if result.relation.is_empty() {
                continue;
            }
            if let Ok(Some(element)) = result
                .relation
                .to_stream_element(&Arc::new(relation_schema(&result.relation)), now)
            {
                self.notifications.notify(
                    &format!("client:{}", result.client),
                    &element,
                    now,
                    None,
                );
            }
        }
    }

    /// Handles one element delivered for a remote route (a local consumer of a remote or
    /// loop-back producer).
    fn deliver_remote(
        &mut self,
        consumer: &VirtualSensorName,
        source_ref: SourceRef,
        element: StreamElement,
        now: Timestamp,
    ) -> StepReport {
        let mut report = StepReport::default();
        let Some(sensor) = self.sensors.get_mut(consumer) else {
            return report;
        };
        if let Err(_e) = sensor.ensure_remote_schema(source_ref, &element, &self.storage) {
            report.errors += 1;
            return report;
        }
        report.absorb(self.process_one(consumer, source_ref, element, now));
        report
    }

    /// Drains the simulated network inbox.
    fn drain_network(&mut self, now: Timestamp) -> StepReport {
        let mut report = StepReport::default();
        let Some(network) = self.network.clone() else {
            return report;
        };
        let envelopes = network.receive(self.config.node_id, now);
        for envelope in envelopes {
            match envelope.message {
                Message::Subscribe {
                    request,
                    subscriber,
                    sensor,
                } => {
                    let principal = Principal::named(&subscriber.to_string());
                    let accepted = self.access.check(&principal, Operation::Subscribe, &sensor)
                        && self.require_sensor(&sensor).is_ok();
                    if accepted {
                        self.notifications
                            .add_remote_subscriber(subscriber, &sensor);
                    }
                    let _ = network.send(
                        self.config.node_id,
                        envelope.from,
                        Message::SubscribeAck {
                            request,
                            accepted,
                            reason: if accepted {
                                String::new()
                            } else {
                                format!("subscription to `{sensor}` refused")
                            },
                        },
                        now,
                    );
                }
                Message::Unsubscribe { subscriber, sensor } => {
                    self.notifications
                        .remove_remote_subscriber(subscriber, &sensor);
                }
                Message::StreamDelivery { sensor, element } => match element.into_element() {
                    Ok(element) => {
                        let routes = self
                            .remote_routes
                            .get(&sensor.to_ascii_lowercase())
                            .cloned()
                            .unwrap_or_default();
                        for (consumer, source_ref) in routes {
                            report.remote_arrivals += 1;
                            report.absorb(self.deliver_remote(
                                &consumer,
                                source_ref,
                                element.clone(),
                                now,
                            ));
                        }
                    }
                    Err(_) => report.errors += 1,
                },
                Message::Ping { request } => {
                    let _ = network.send(
                        self.config.node_id,
                        envelope.from,
                        Message::Pong { request },
                        now,
                    );
                }
                Message::SubscribeAck {
                    request, accepted, ..
                } => {
                    for pending in &mut self.pending_subscriptions {
                        if pending.request == request {
                            if accepted {
                                pending.acked = true;
                            } else {
                                pending.refused = true;
                            }
                        }
                    }
                }
                // Directory traffic and pongs are informational for the container.
                Message::DirectoryRegister { .. }
                | Message::DirectoryDeregister { .. }
                | Message::DirectoryLookup { .. }
                | Message::DirectoryResult { .. }
                | Message::Pong { .. } => {}
            }
        }
        report
    }

    /// Re-sends Subscribe messages for remote sources whose subscription has not been
    /// acknowledged yet (and was not explicitly refused).
    fn retry_pending_subscriptions(&mut self, now: Timestamp) {
        let Some(network) = self.network.clone() else {
            return;
        };
        let node = self.config.node_id;
        for pending in &mut self.pending_subscriptions {
            if pending.acked || pending.refused {
                continue;
            }
            let _ = network.send(
                node,
                pending.producer,
                Message::Subscribe {
                    request: pending.request,
                    subscriber: node,
                    sensor: pending.sensor.clone(),
                },
                now,
            );
        }
    }

    /// A point-in-time status snapshot.
    pub fn status(&self) -> ContainerStatus {
        ContainerStatus {
            name: self.config.name.clone(),
            node: self.config.node_id,
            sensors: self
                .sensors
                .iter()
                .map(|(n, s)| (n.as_str().to_owned(), s.stats()))
                .collect(),
            storage: self.storage.stats(),
            notifications: self.notifications.stats(),
            queries: self.query_manager.stats().0,
            registered_queries: self.query_manager.registered_count(),
            wrapper_kinds: self.registry.kinds(),
        }
    }
}

/// Derives a schema from a relation's column names (for client-result notifications).
fn relation_schema(relation: &Relation) -> gsn_types::StreamSchema {
    let mut schema = gsn_types::StreamSchema::empty();
    for (i, column) in relation.columns().iter().enumerate() {
        let name = if column.name.eq_ignore_ascii_case("pk")
            || column.name.eq_ignore_ascii_case("timed")
        {
            format!("{}_{}", column.name, i)
        } else {
            column.name.clone()
        };
        let field = gsn_types::FieldSpec::new(
            &name,
            column.data_type.unwrap_or(gsn_types::DataType::Varchar),
        );
        if let Ok(field) = field {
            let _ = schema.push(field);
        }
    }
    schema
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsn_types::{DataType, SimulatedClock, Value};
    use gsn_xml::{AddressSpec, InputStreamSpec, StreamSourceSpec};

    fn mote_descriptor(name: &str, interval_ms: u32) -> VirtualSensorDescriptor {
        VirtualSensorDescriptor::builder(name)
            .unwrap()
            .metadata("type", "temperature")
            .output_field("avg_temp", DataType::Double)
            .unwrap()
            .permanent_storage(true)
            .input_stream(
                InputStreamSpec::new("main", "select * from src1").with_source(
                    StreamSourceSpec::new(
                        "src1",
                        AddressSpec::new("mote")
                            .with_predicate("interval", &interval_ms.to_string()),
                        "select avg(temperature) as avg_temp from WRAPPER",
                    )
                    .with_window(gsn_storage::WindowSpec::Count(10)),
                ),
            )
            .build()
            .unwrap()
    }

    fn standalone() -> (GsnContainer, SimulatedClock) {
        let clock = SimulatedClock::new();
        let container = GsnContainer::new(ContainerConfig::default(), Arc::new(clock.clone()));
        (container, clock)
    }

    #[test]
    fn deploy_step_and_query() {
        let (mut container, clock) = standalone();
        container.deploy(mote_descriptor("room-temp", 100)).unwrap();
        assert_eq!(container.sensor_names(), vec!["room-temp"]);

        clock.advance(gsn_types::Duration::from_secs(1));
        let report = container.step();
        assert_eq!(report.local_arrivals, 10);
        assert_eq!(report.outputs, 10);
        assert_eq!(report.errors, 0);

        let rel = container
            .query("select count(*) as n from room_temp")
            .unwrap();
        assert_eq!(rel.rows()[0][0], Value::Integer(10));
        let stats = container.sensor_stats("room-temp").unwrap();
        assert_eq!(stats.outputs, 10);
        assert!(container.sensor_stats("nosuch").is_err());

        let status = container.status();
        assert_eq!(status.sensors.len(), 1);
        assert!(status.render().contains("room-temp"));
    }

    #[test]
    fn duplicate_and_unknown_deployments() {
        let (mut container, _clock) = standalone();
        container.deploy(mote_descriptor("dup", 100)).unwrap();
        assert!(container.deploy(mote_descriptor("dup", 100)).is_err());
        assert!(container.undeploy("nosuch").is_err());
        container.undeploy("dup").unwrap();
        assert!(container.sensor_names().is_empty());
        assert!(container.storage().table_names().is_empty());
        // Redeployment after undeploy works.
        container.deploy(mote_descriptor("dup", 100)).unwrap();
    }

    #[test]
    fn deploy_from_xml_text() {
        let (mut container, clock) = standalone();
        let xml = r#"<virtual-sensor name="xml-sensor">
          <output-structure><field name="light" type="double"/></output-structure>
          <input-stream name="main">
            <stream-source alias="s" storage-size="5">
              <address wrapper="mote"><predicate key="interval" val="200"/></address>
              <query>select avg(light) as light from WRAPPER</query>
            </stream-source>
            <query>select * from s</query>
          </input-stream>
        </virtual-sensor>"#;
        container.deploy_xml(xml).unwrap();
        clock.advance(gsn_types::Duration::from_secs(1));
        let report = container.step();
        assert_eq!(report.outputs, 5);
        assert!(container.deploy_xml("<broken").is_err());
    }

    #[test]
    fn subscriptions_receive_outputs() {
        let (mut container, clock) = standalone();
        container.deploy(mote_descriptor("room-temp", 250)).unwrap();
        let (_id, rx) = container.subscribe("room-temp").unwrap();
        assert!(container.subscribe("nosuch").is_err());
        clock.advance(gsn_types::Duration::from_secs(1));
        container.step();
        let notifications: Vec<Notification> = rx.try_iter().collect();
        assert_eq!(notifications.len(), 4);
        assert!(notifications[0].element.value("AVG_TEMP").is_some());
    }

    #[test]
    fn registered_queries_run_per_output() {
        let (mut container, clock) = standalone();
        container.deploy(mote_descriptor("room-temp", 500)).unwrap();
        for i in 0..10 {
            container
                .register_query(
                    &format!("client-{i}"),
                    "select avg(avg_temp) from room_temp where avg_temp > 0",
                    WindowSpec::Count(50),
                    None,
                )
                .unwrap();
        }
        assert_eq!(container.registered_query_count(), 10);
        clock.advance(gsn_types::Duration::from_secs(1));
        let report = container.step();
        assert_eq!(report.outputs, 2);
        assert_eq!(report.client_query_evaluations, 20);
        let id = container
            .register_query(
                "late",
                "select * from room_temp",
                WindowSpec::Count(1),
                None,
            )
            .unwrap();
        container.deregister_query(id).unwrap();
        assert_eq!(container.registered_query_count(), 10);
    }

    #[test]
    fn access_control_gates_adhoc_queries() {
        let (mut container, clock) = standalone();
        container
            .deploy(mote_descriptor("private-temp", 100))
            .unwrap();
        clock.advance(gsn_types::Duration::from_millis(500));
        container.step();
        container
            .access_control()
            .restrict_sensor("private_temp", vec![Principal::named("alice")]);
        assert!(container.query("select * from private_temp").is_err());
        assert!(container
            .query_as(&Principal::named("alice"), "select * from private_temp")
            .is_ok());
        assert!(container
            .query_as(&Principal::named("eve"), "select * from private_temp")
            .is_err());
    }

    #[test]
    fn explain_and_bad_queries() {
        let (mut container, _clock) = standalone();
        container.deploy(mote_descriptor("room-temp", 100)).unwrap();
        let plan = container
            .explain("select avg(avg_temp) from room_temp")
            .unwrap();
        assert!(plan.contains("Aggregate"));
        assert!(container.query("select * from missing_table").is_err());
        assert!(container.query("not sql").is_err());
    }

    #[test]
    fn max_virtual_sensors_is_enforced() {
        let clock = SimulatedClock::new();
        let config = ContainerConfig {
            max_virtual_sensors: 1,
            ..Default::default()
        };
        let mut container = GsnContainer::new(config, Arc::new(clock));
        container.deploy(mote_descriptor("one", 100)).unwrap();
        let err = container.deploy(mote_descriptor("two", 100)).unwrap_err();
        assert_eq!(err.category(), "resource-exhausted");
    }

    #[test]
    fn remote_sources_require_a_directory() {
        let (mut container, _clock) = standalone();
        let descriptor = VirtualSensorDescriptor::builder("follower")
            .unwrap()
            .output_field("v", DataType::Double)
            .unwrap()
            .input_stream(InputStreamSpec::new("main", "select * from r").with_source(
                StreamSourceSpec::new(
                    "r",
                    AddressSpec::new("remote").with_predicate("type", "temperature"),
                    "select avg(v) as v from WRAPPER",
                ),
            ))
            .build()
            .unwrap();
        let err = container.deploy(descriptor).unwrap_err();
        assert_eq!(err.category(), "config");
        // Failed deployment leaves nothing behind.
        assert!(container.sensor_names().is_empty());
        assert!(container.storage().table_names().is_empty());
    }
}
