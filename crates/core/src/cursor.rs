//! The container's streaming query surface: pull-based cursors over live storage.
//!
//! [`GsnContainer::query`](crate::GsnContainer::query) materialises a whole result
//! relation — fine for small windows, wasteful for `LIMIT` queries over large
//! `permanent-storage` histories and impossible to ship incrementally over constrained
//! links.  [`QueryCursor`] is the pull-based alternative: rows stream from the storage
//! pages (one pinned buffer-pool page at a time for persistent tables) through the
//! Volcano-style executor to the consumer, in batches of the consumer's choosing.  The
//! federation layer drives the same cursor to ship remote query results as incremental
//! `QueryBatch` messages instead of one monolithic relation.

use std::sync::Arc;

use gsn_sql::{ColumnInfo, PlanSource, PreparedQuery, Relation, RowSource};
use gsn_storage::{LiveCatalog, StorageManager};
use gsn_types::{GsnResult, Timestamp};

/// Invoked when a cursor is dropped, with its final `(rows_scanned, rows_returned,
/// pages_skipped, rows_residual_filtered)` — the container uses it to fold streaming
/// executions into the engine statistics.
type TelemetrySink = Box<dyn FnOnce(u64, u64, u64, u64) + Send>;

/// A pull-based cursor over an ad-hoc container query.
///
/// The cursor owns its plan and table handles: it holds no lock between pulls and can
/// be kept across container steps (it sees the table contents bounded at open time for
/// persistent tables; memory windows are snapshotted at open).  Telemetry counters
/// expose the early-exit saving: `rows_scanned` vs `rows_returned`, plus the number of
/// buffer-pool page reads attributable to the time since the cursor was opened.
pub struct QueryCursor {
    sql: String,
    source: PlanSource,
    columns: Vec<ColumnInfo>,
    storage: Arc<StorageManager>,
    pool_reads_at_open: u64,
    pages_skipped_at_open: u64,
    done: bool,
    telemetry: Option<TelemetrySink>,
}

impl std::fmt::Debug for QueryCursor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "QueryCursor({:?}, {} returned / {} scanned{})",
            self.sql,
            self.rows_returned(),
            self.rows_scanned(),
            if self.done { ", done" } else { "" }
        )
    }
}

impl QueryCursor {
    /// Opens a cursor for a prepared query over the container's live storage at `now`.
    pub(crate) fn open(
        prepared: &PreparedQuery,
        storage: Arc<StorageManager>,
        now: Timestamp,
        telemetry: Option<TelemetrySink>,
    ) -> GsnResult<QueryCursor> {
        let source = {
            let catalog = LiveCatalog::new(&storage, &[], now);
            prepared.open(&catalog)?
        };
        let columns = source.columns().to_vec();
        let pool = storage.buffer_pool().stats();
        let pages_skipped_at_open = storage.telemetry().index_pages_skipped.get();
        Ok(QueryCursor {
            sql: prepared.sql().to_owned(),
            source,
            columns,
            pool_reads_at_open: pool.hits + pool.misses,
            pages_skipped_at_open,
            storage,
            done: false,
            telemetry,
        })
    }

    /// The SQL text the cursor executes.
    pub fn sql(&self) -> &str {
        &self.sql
    }

    /// The result column layout.
    pub fn columns(&self) -> &[ColumnInfo] {
        &self.columns
    }

    /// Pulls up to `n` more rows as a relation batch.  An empty batch means the cursor
    /// is exhausted; [`is_done`](Self::is_done) turns true as soon as the last row has
    /// been pulled.
    pub fn next_batch(&mut self, n: usize) -> GsnResult<Relation> {
        let rows = self.source.next_batch(n)?;
        if rows.len() < n {
            self.done = true;
        }
        Relation::with_rows(self.columns.clone(), rows)
    }

    /// Drains the remaining rows into one relation (the materialising convenience).
    pub fn collect(&mut self) -> GsnResult<Relation> {
        self.done = true;
        self.source.collect()
    }

    /// True once every row has been pulled.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Rows pulled out of base-table scans so far — with a `LIMIT` this stays near the
    /// limit instead of the table size.
    pub fn rows_scanned(&self) -> u64 {
        self.source.rows_scanned()
    }

    /// Rows handed to the consumer so far.
    pub fn rows_returned(&self) -> u64 {
        self.source.rows_returned()
    }

    /// Buffer-pool page reads (hits + misses) since the cursor was opened.
    ///
    /// The pool is container-wide, so concurrent activity inflates this; in a quiet
    /// container it is exactly the pages this cursor touched — the bound the
    /// streaming-query benchmark and tests assert on.
    pub fn pages_read(&self) -> u64 {
        let pool = self.storage.buffer_pool().stats();
        (pool.hits + pool.misses).saturating_sub(self.pool_reads_at_open)
    }

    /// Storage pages the segment index let bounded scans *skip* since the cursor was
    /// opened — the direct saving of predicate pushdown, the complement of
    /// [`pages_read`](Self::pages_read).  Container-wide like `pages_read`: exact for
    /// this cursor only in a quiet container.
    pub fn pages_skipped(&self) -> u64 {
        self.storage
            .telemetry()
            .index_pages_skipped
            .get()
            .saturating_sub(self.pages_skipped_at_open)
    }

    /// Rows the executor dropped re-applying pushed-down residual predicates above the
    /// bounded scan (bounds are page-granular supersets).
    pub fn rows_residual_filtered(&self) -> u64 {
        self.source.rows_residual_filtered()
    }
}

impl Drop for QueryCursor {
    fn drop(&mut self) {
        if let Some(sink) = self.telemetry.take() {
            sink(
                self.rows_scanned(),
                self.rows_returned(),
                self.pages_skipped(),
                self.rows_residual_filtered(),
            );
        }
    }
}

impl RowSource for QueryCursor {
    fn columns(&self) -> &[ColumnInfo] {
        &self.columns
    }

    fn next_row(&mut self) -> GsnResult<Option<Vec<gsn_types::Value>>> {
        let row = self.source.next_row()?;
        if row.is_none() {
            self.done = true;
        }
        Ok(row)
    }
}
