//! Virtual sensor deployment descriptors.
//!
//! "To support rapid deployment, these properties of virtual sensors are provided in a
//! declarative deployment descriptor" (paper, Section 2).  This module is the typed form
//! of that XML descriptor: parsing, validation, serialisation and a builder API for
//! programmatic deployment (used by the examples and by benchmark workload generators).
//!
//! The descriptor grammar follows the paper's Figure 1:
//!
//! ```xml
//! <virtual-sensor name="room-bc143-temperature" priority="10">
//!   <description>Averaged room temperature</description>
//!   <metadata key="type" val="temperature" />
//!   <metadata key="location" val="bc143" />
//!   <life-cycle pool-size="10" />
//!   <output-structure>
//!     <field name="TEMPERATURE" type="integer" />
//!   </output-structure>
//!   <storage permanent-storage="true" size="10s" />
//!   <input-stream name="dummy" rate="100">
//!     <stream-source alias="src1" sampling-rate="1" storage-size="1h" disconnect-buffer="10">
//!       <address wrapper="remote">
//!         <predicate key="type" val="temperature" />
//!         <predicate key="location" val="bc143" />
//!       </address>
//!       <query>select avg(temperature) from WRAPPER</query>
//!     </stream-source>
//!     <query>select * from src1</query>
//!   </input-stream>
//! </virtual-sensor>
//! ```

use gsn_storage::WindowSpec;
use gsn_types::{DataType, FieldSpec, GsnError, GsnResult, StreamSchema, VirtualSensorName};

use crate::dom::XmlElement;
use crate::parser::parse_document;
use crate::writer::write_document;

/// Default worker pool size when `<life-cycle>` is omitted.
pub const DEFAULT_POOL_SIZE: usize = 1;
/// Default disconnect buffer (elements buffered while a source is unreachable).
pub const DEFAULT_DISCONNECT_BUFFER: usize = 10;

/// The `<life-cycle>` element: resources granted to the virtual sensor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LifeCycleConfig {
    /// Number of worker threads the container grants this sensor.
    pub pool_size: usize,
}

impl Default for LifeCycleConfig {
    fn default() -> Self {
        LifeCycleConfig {
            pool_size: DEFAULT_POOL_SIZE,
        }
    }
}

/// Which storage engine the container should use for a sensor's output table
/// (`<storage backend="...">`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StorageBackendChoice {
    /// Let the container decide: disk when `permanent-storage="true"` and the container
    /// has a data directory, memory otherwise.
    #[default]
    Auto,
    /// Force the in-memory backend even for permanent storage.
    Memory,
    /// Force the persistent page engine (requires a container data directory to take
    /// effect).
    Disk,
}

impl StorageBackendChoice {
    /// Parses the `backend` attribute value.
    pub fn parse(value: &str) -> GsnResult<StorageBackendChoice> {
        match value.trim().to_ascii_lowercase().as_str() {
            "auto" => Ok(StorageBackendChoice::Auto),
            "memory" | "mem" => Ok(StorageBackendChoice::Memory),
            "disk" | "persistent" | "file" => Ok(StorageBackendChoice::Disk),
            other => Err(GsnError::descriptor(format!(
                "unknown storage backend `{other}` (expected auto, memory or disk)"
            ))),
        }
    }

    /// The canonical attribute spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            StorageBackendChoice::Auto => "auto",
            StorageBackendChoice::Memory => "memory",
            StorageBackendChoice::Disk => "disk",
        }
    }
}

/// The `<storage>` element: how output stream elements are persisted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageConfig {
    /// `permanent-storage="true"`: keep the full output history.
    pub permanent: bool,
    /// The bounded history kept when not permanent (`size="10s"` / `size="100"`).
    /// `None` keeps the full history, mirroring the original GSN where the output
    /// stream accumulates in its database table unless explicitly bounded.
    pub history: Option<WindowSpec>,
    /// Which storage engine to use (`backend="auto|memory|disk"`).
    pub backend: StorageBackendChoice,
}

impl StorageConfig {
    /// True when the container should place this output table on the persistent engine
    /// (assuming it has a data directory).
    pub fn wants_durable(&self) -> bool {
        match self.backend {
            StorageBackendChoice::Auto => self.permanent,
            StorageBackendChoice::Memory => false,
            StorageBackendChoice::Disk => true,
        }
    }
}

impl Default for StorageConfig {
    fn default() -> Self {
        StorageConfig {
            permanent: false,
            history: None,
            backend: StorageBackendChoice::Auto,
        }
    }
}

/// The `<address>` element of a stream source: which wrapper produces the data and the
/// key–value predicates used either to configure a local wrapper or to discover a remote
/// virtual sensor through the peer-to-peer directory.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AddressSpec {
    /// The wrapper name (`mote`, `camera`, `rfid`, `remote`, ...).
    pub wrapper: String,
    /// Key–value predicates (`<predicate key="..." val="..."/>`).
    pub predicates: Vec<(String, String)>,
}

impl AddressSpec {
    /// Creates an address for a wrapper.
    pub fn new(wrapper: &str) -> AddressSpec {
        AddressSpec {
            wrapper: wrapper.to_owned(),
            predicates: Vec::new(),
        }
    }

    /// Adds a predicate (builder style).
    pub fn with_predicate(mut self, key: &str, val: &str) -> AddressSpec {
        self.predicates.push((key.to_owned(), val.to_owned()));
        self
    }

    /// Looks a predicate up by case-insensitive key.
    pub fn predicate(&self, key: &str) -> Option<&str> {
        self.predicates
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(key))
            .map(|(_, v)| v.as_str())
    }

    /// True when this address refers to a remote virtual sensor.
    pub fn is_remote(&self) -> bool {
        self.wrapper.eq_ignore_ascii_case("remote")
    }
}

/// One `<stream-source>`: a window over one wrapper or remote virtual sensor.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSourceSpec {
    /// The alias the queries use to refer to this source (`src1`).
    pub alias: String,
    /// The window kept over this source (`storage-size`).
    pub window: WindowSpec,
    /// Sampling rate in `(0, 1]`; 1 = keep everything.
    pub sampling_rate: f64,
    /// Elements buffered while the source is disconnected.
    pub disconnect_buffer: usize,
    /// Where the data comes from.
    pub address: AddressSpec,
    /// The per-source SQL query; `WRAPPER` refers to the windowed source data.
    pub query: String,
}

impl StreamSourceSpec {
    /// Creates a source with GSN's defaults (latest-only window, no sampling).
    pub fn new(alias: &str, address: AddressSpec, query: &str) -> StreamSourceSpec {
        StreamSourceSpec {
            alias: alias.to_owned(),
            window: WindowSpec::LatestOnly,
            sampling_rate: 1.0,
            disconnect_buffer: DEFAULT_DISCONNECT_BUFFER,
            address,
            query: query.to_owned(),
        }
    }

    /// Sets the window (builder style).
    pub fn with_window(mut self, window: WindowSpec) -> StreamSourceSpec {
        self.window = window;
        self
    }

    /// Sets the sampling rate (builder style).
    pub fn with_sampling_rate(mut self, rate: f64) -> StreamSourceSpec {
        self.sampling_rate = rate;
        self
    }

    /// Sets the disconnect buffer size (builder style).
    pub fn with_disconnect_buffer(mut self, size: usize) -> StreamSourceSpec {
        self.disconnect_buffer = size;
        self
    }
}

/// One `<input-stream>`: a set of sources combined by an output query.
#[derive(Debug, Clone, PartialEq)]
pub struct InputStreamSpec {
    /// The input stream name.
    pub name: String,
    /// Optional rate bound in elements/second applied to this input stream (GSN supports
    /// "bounding the rate of a data stream in order to avoid overloads", Section 3).
    pub rate_limit: Option<u32>,
    /// The stream sources.
    pub sources: Vec<StreamSourceSpec>,
    /// The output query over the per-source temporary relations.
    pub query: String,
}

impl InputStreamSpec {
    /// Creates an input stream.
    pub fn new(name: &str, query: &str) -> InputStreamSpec {
        InputStreamSpec {
            name: name.to_owned(),
            rate_limit: None,
            sources: Vec::new(),
            query: query.to_owned(),
        }
    }

    /// Adds a source (builder style).
    pub fn with_source(mut self, source: StreamSourceSpec) -> InputStreamSpec {
        self.sources.push(source);
        self
    }

    /// Sets a rate limit (builder style).
    pub fn with_rate_limit(mut self, per_second: u32) -> InputStreamSpec {
        self.rate_limit = Some(per_second);
        self
    }
}

/// A complete virtual sensor deployment descriptor.
#[derive(Debug, Clone, PartialEq)]
pub struct VirtualSensorDescriptor {
    /// The unique virtual sensor name.
    pub name: VirtualSensorName,
    /// Scheduling priority (larger = more important); informational in GSN-RS.
    pub priority: u32,
    /// Human-readable description.
    pub description: Option<String>,
    /// Key–value metadata published to the directory for discovery.
    pub metadata: Vec<(String, String)>,
    /// Life-cycle / resource configuration.
    pub life_cycle: LifeCycleConfig,
    /// The declared output structure.
    pub output_structure: StreamSchema,
    /// Output persistence.
    pub storage: StorageConfig,
    /// The input streams.
    pub input_streams: Vec<InputStreamSpec>,
}

impl VirtualSensorDescriptor {
    /// Starts a builder for programmatic deployment.
    pub fn builder(name: &str) -> GsnResult<DescriptorBuilder> {
        Ok(DescriptorBuilder {
            descriptor: VirtualSensorDescriptor {
                name: VirtualSensorName::new(name)?,
                priority: 10,
                description: None,
                metadata: Vec::new(),
                life_cycle: LifeCycleConfig::default(),
                output_structure: StreamSchema::empty(),
                storage: StorageConfig::default(),
                input_streams: Vec::new(),
            },
        })
    }

    /// Parses a descriptor from XML text.
    pub fn parse(xml: &str) -> GsnResult<VirtualSensorDescriptor> {
        let root = parse_document(xml)?;
        Self::from_element(&root)
    }

    /// Parses a descriptor from an already-parsed DOM element.
    pub fn from_element(root: &XmlElement) -> GsnResult<VirtualSensorDescriptor> {
        if !root.name.eq_ignore_ascii_case("virtual-sensor") {
            return Err(GsnError::descriptor(format!(
                "expected <virtual-sensor> root element, found <{}>",
                root.name
            )));
        }
        let name = VirtualSensorName::new(root.attr("name").ok_or_else(|| {
            GsnError::descriptor("<virtual-sensor> requires a `name` attribute")
        })?)?;
        let priority = parse_attr_or(root, "priority", 10u32)?;

        let description = root
            .first_element("description")
            .map(|d| d.text())
            .filter(|d| !d.is_empty());

        let mut metadata = Vec::new();
        for m in root.elements_named("metadata") {
            let key = m
                .attr("key")
                .ok_or_else(|| GsnError::descriptor("<metadata> requires `key`"))?;
            let val = m
                .attr("val")
                .ok_or_else(|| GsnError::descriptor("<metadata> requires `val`"))?;
            metadata.push((key.to_owned(), val.to_owned()));
        }

        let life_cycle = match root.first_element("life-cycle") {
            Some(lc) => LifeCycleConfig {
                pool_size: parse_attr_or(lc, "pool-size", DEFAULT_POOL_SIZE)?,
            },
            None => LifeCycleConfig::default(),
        };

        let output_structure = {
            let os = root.first_element("output-structure").ok_or_else(|| {
                GsnError::descriptor("<virtual-sensor> requires an <output-structure>")
            })?;
            let mut fields = Vec::new();
            for field in os.elements_named("field") {
                let fname = field
                    .attr("name")
                    .ok_or_else(|| GsnError::descriptor("<field> requires `name`"))?;
                let ftype = field
                    .attr("type")
                    .ok_or_else(|| GsnError::descriptor("<field> requires `type`"))?;
                let mut spec = FieldSpec::new(fname, DataType::parse(ftype)?)?;
                if let Some(desc) = field.attr("description") {
                    spec.description = Some(desc.to_owned());
                }
                fields.push(spec);
            }
            StreamSchema::new(fields)?
        };

        let storage = match root.first_element("storage") {
            Some(s) => {
                let permanent = s
                    .attr("permanent-storage")
                    .map(|v| v.eq_ignore_ascii_case("true"))
                    .unwrap_or(false);
                let history = match s.attr("size").or_else(|| s.attr("history-size")) {
                    Some(spec) => Some(WindowSpec::parse(spec)?),
                    None => None,
                };
                let backend = match s.attr("backend") {
                    Some(value) => StorageBackendChoice::parse(value)?,
                    None => StorageBackendChoice::Auto,
                };
                StorageConfig {
                    permanent,
                    history,
                    backend,
                }
            }
            None => StorageConfig::default(),
        };

        let mut input_streams = Vec::new();
        for is in root.elements_named("input-stream") {
            let name = is
                .attr("name")
                .ok_or_else(|| GsnError::descriptor("<input-stream> requires `name`"))?
                .to_owned();
            let rate_limit = match is.attr("rate") {
                Some(r) => Some(r.parse().map_err(|_| {
                    GsnError::descriptor(format!("invalid input-stream rate `{r}`"))
                })?),
                None => None,
            };
            let query = is
                .first_element("query")
                .map(|q| q.text())
                .filter(|q| !q.is_empty())
                .ok_or_else(|| GsnError::descriptor("<input-stream> requires a <query>"))?;

            let mut sources = Vec::new();
            for src in is.elements_named("stream-source") {
                sources.push(parse_stream_source(src)?);
            }
            input_streams.push(InputStreamSpec {
                name,
                rate_limit,
                sources,
                query,
            });
        }

        let descriptor = VirtualSensorDescriptor {
            name,
            priority,
            description,
            metadata,
            life_cycle,
            output_structure,
            storage,
            input_streams,
        };
        descriptor.validate()?;
        Ok(descriptor)
    }

    /// Validates descriptor-level invariants that the per-field parsers cannot see.
    pub fn validate(&self) -> GsnResult<()> {
        if self.output_structure.is_empty() {
            return Err(GsnError::descriptor(format!(
                "virtual sensor `{}` declares an empty output structure",
                self.name
            )));
        }
        if self.input_streams.is_empty() {
            return Err(GsnError::descriptor(format!(
                "virtual sensor `{}` declares no input stream",
                self.name
            )));
        }
        if self.life_cycle.pool_size == 0 {
            return Err(GsnError::descriptor("pool-size must be at least 1"));
        }
        for is in &self.input_streams {
            if is.sources.is_empty() {
                return Err(GsnError::descriptor(format!(
                    "input stream `{}` declares no stream source",
                    is.name
                )));
            }
            if is.rate_limit == Some(0) {
                return Err(GsnError::descriptor(format!(
                    "input stream `{}` declares a zero rate limit",
                    is.name
                )));
            }
            // The output query must parse and must reference only declared aliases.
            let parsed = gsn_sql::parse_query(&is.query).map_err(|e| {
                GsnError::descriptor(format!(
                    "output query of input stream `{}` is invalid: {e}",
                    is.name
                ))
            })?;
            let plan = gsn_sql::plan_query(&parsed).map_err(|e| {
                GsnError::descriptor(format!(
                    "output query of input stream `{}` cannot be planned: {e}",
                    is.name
                ))
            })?;
            let aliases: Vec<String> = is
                .sources
                .iter()
                .map(|s| s.alias.to_ascii_lowercase())
                .collect();
            for table in plan.referenced_tables() {
                if !aliases.contains(&table) {
                    return Err(GsnError::descriptor(format!(
                        "output query of input stream `{}` references `{table}`, which is not a declared stream-source alias ({})",
                        is.name,
                        aliases.join(", ")
                    )));
                }
            }

            let mut seen_aliases = std::collections::HashSet::new();
            for src in &is.sources {
                if !seen_aliases.insert(src.alias.to_ascii_lowercase()) {
                    return Err(GsnError::descriptor(format!(
                        "duplicate stream-source alias `{}` in input stream `{}`",
                        src.alias, is.name
                    )));
                }
                if src.alias.eq_ignore_ascii_case("wrapper") {
                    return Err(GsnError::descriptor(
                        "`wrapper` is reserved and cannot be used as a stream-source alias",
                    ));
                }
                if !(src.sampling_rate > 0.0 && src.sampling_rate <= 1.0) {
                    return Err(GsnError::descriptor(format!(
                        "sampling-rate of source `{}` must be in (0, 1], got {}",
                        src.alias, src.sampling_rate
                    )));
                }
                if src.address.wrapper.is_empty() {
                    return Err(GsnError::descriptor(format!(
                        "source `{}` does not name a wrapper",
                        src.alias
                    )));
                }
                // The source query must parse and may reference only WRAPPER.
                let parsed = gsn_sql::parse_query(&src.query).map_err(|e| {
                    GsnError::descriptor(format!("source query of `{}` is invalid: {e}", src.alias))
                })?;
                let plan = gsn_sql::plan_query(&parsed).map_err(|e| {
                    GsnError::descriptor(format!(
                        "source query of `{}` cannot be planned: {e}",
                        src.alias
                    ))
                })?;
                for table in plan.referenced_tables() {
                    if !table.eq_ignore_ascii_case("wrapper") {
                        return Err(GsnError::descriptor(format!(
                            "source query of `{}` may only read from WRAPPER, found `{table}`",
                            src.alias
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Serialises the descriptor back to a complete XML document.
    pub fn to_xml(&self) -> String {
        write_document(&self.to_element())
    }

    /// Serialises the descriptor to a DOM element.
    pub fn to_element(&self) -> XmlElement {
        let mut root = XmlElement::new("virtual-sensor")
            .with_attr("name", self.name.as_str())
            .with_attr("priority", self.priority.to_string());
        if let Some(d) = &self.description {
            root = root.with_child(XmlElement::new("description").with_text(d.clone()));
        }
        for (k, v) in &self.metadata {
            root = root.with_child(
                XmlElement::new("metadata")
                    .with_attr("key", k.clone())
                    .with_attr("val", v.clone()),
            );
        }
        root = root.with_child(
            XmlElement::new("life-cycle")
                .with_attr("pool-size", self.life_cycle.pool_size.to_string()),
        );
        let mut os = XmlElement::new("output-structure");
        for field in self.output_structure.fields() {
            let mut fe = XmlElement::new("field")
                .with_attr("name", field.name.as_str())
                .with_attr("type", field.data_type.canonical_name());
            if let Some(d) = &field.description {
                fe = fe.with_attr("description", d.clone());
            }
            os = os.with_child(fe);
        }
        root = root.with_child(os);

        let mut storage = XmlElement::new("storage")
            .with_attr("permanent-storage", self.storage.permanent.to_string());
        if let Some(h) = &self.storage.history {
            storage = storage.with_attr("size", h.to_spec_string());
        }
        if self.storage.backend != StorageBackendChoice::Auto {
            storage = storage.with_attr("backend", self.storage.backend.as_str());
        }
        root = root.with_child(storage);

        for is in &self.input_streams {
            let mut ise = XmlElement::new("input-stream").with_attr("name", is.name.clone());
            if let Some(rate) = is.rate_limit {
                ise = ise.with_attr("rate", rate.to_string());
            }
            for src in &is.sources {
                let mut se = XmlElement::new("stream-source")
                    .with_attr("alias", src.alias.clone())
                    .with_attr("sampling-rate", format_sampling(src.sampling_rate))
                    .with_attr("storage-size", src.window.to_spec_string())
                    .with_attr("disconnect-buffer", src.disconnect_buffer.to_string());
                let mut addr =
                    XmlElement::new("address").with_attr("wrapper", src.address.wrapper.clone());
                for (k, v) in &src.address.predicates {
                    addr = addr.with_child(
                        XmlElement::new("predicate")
                            .with_attr("key", k.clone())
                            .with_attr("val", v.clone()),
                    );
                }
                se = se.with_child(addr);
                se = se.with_child(XmlElement::new("query").with_text(src.query.clone()));
                ise = ise.with_child(se);
            }
            ise = ise.with_child(XmlElement::new("query").with_text(is.query.clone()));
            root = root.with_child(ise);
        }
        root
    }

    /// All wrapper names this descriptor needs (deduplicated, lower-case).
    pub fn required_wrappers(&self) -> Vec<String> {
        let mut wrappers = Vec::new();
        for is in &self.input_streams {
            for src in &is.sources {
                let w = src.address.wrapper.to_ascii_lowercase();
                if !wrappers.contains(&w) {
                    wrappers.push(w);
                }
            }
        }
        wrappers
    }
}

fn parse_stream_source(src: &XmlElement) -> GsnResult<StreamSourceSpec> {
    let alias = src
        .attr("alias")
        .ok_or_else(|| GsnError::descriptor("<stream-source> requires `alias`"))?
        .to_owned();
    let window = match src.attr("storage-size") {
        Some(spec) => WindowSpec::parse(spec)?,
        None => WindowSpec::LatestOnly,
    };
    let sampling_rate: f64 = match src.attr("sampling-rate") {
        Some(r) => r.parse().map_err(|_| {
            GsnError::descriptor(format!("invalid sampling-rate `{r}` for source `{alias}`"))
        })?,
        None => 1.0,
    };
    let disconnect_buffer = parse_attr_or(src, "disconnect-buffer", DEFAULT_DISCONNECT_BUFFER)?;
    let address_el = src
        .first_element("address")
        .ok_or_else(|| GsnError::descriptor(format!("source `{alias}` requires an <address>")))?;
    let wrapper = address_el
        .attr("wrapper")
        .ok_or_else(|| GsnError::descriptor("<address> requires `wrapper`"))?;
    let mut address = AddressSpec::new(wrapper);
    for p in address_el.elements_named("predicate") {
        let key = p
            .attr("key")
            .ok_or_else(|| GsnError::descriptor("<predicate> requires `key`"))?;
        let val = p
            .attr("val")
            .ok_or_else(|| GsnError::descriptor("<predicate> requires `val`"))?;
        address = address.with_predicate(key, val);
    }
    let query = src
        .first_element("query")
        .map(|q| q.text())
        .filter(|q| !q.is_empty())
        .unwrap_or_else(|| "select * from WRAPPER".to_owned());
    Ok(StreamSourceSpec {
        alias,
        window,
        sampling_rate,
        disconnect_buffer,
        address,
        query,
    })
}

fn parse_attr_or<T: std::str::FromStr>(el: &XmlElement, key: &str, default: T) -> GsnResult<T> {
    match el.attr(key) {
        None => Ok(default),
        Some(raw) => raw.parse().map_err(|_| {
            GsnError::descriptor(format!("invalid value `{raw}` for attribute `{key}`"))
        }),
    }
}

fn format_sampling(rate: f64) -> String {
    if (rate - 1.0).abs() < f64::EPSILON {
        "1".to_owned()
    } else {
        format!("{rate}")
    }
}

/// Fluent builder for [`VirtualSensorDescriptor`].
#[derive(Debug, Clone)]
pub struct DescriptorBuilder {
    descriptor: VirtualSensorDescriptor,
}

impl DescriptorBuilder {
    /// Sets the priority.
    pub fn priority(mut self, priority: u32) -> Self {
        self.descriptor.priority = priority;
        self
    }

    /// Sets the description.
    pub fn description(mut self, description: &str) -> Self {
        self.descriptor.description = Some(description.to_owned());
        self
    }

    /// Adds a metadata predicate used for directory discovery.
    pub fn metadata(mut self, key: &str, val: &str) -> Self {
        self.descriptor
            .metadata
            .push((key.to_owned(), val.to_owned()));
        self
    }

    /// Sets the worker pool size.
    pub fn pool_size(mut self, pool_size: usize) -> Self {
        self.descriptor.life_cycle.pool_size = pool_size;
        self
    }

    /// Adds an output field.
    pub fn output_field(mut self, name: &str, data_type: DataType) -> GsnResult<Self> {
        self.descriptor
            .output_structure
            .push(FieldSpec::new(name, data_type)?)?;
        Ok(self)
    }

    /// Configures permanent storage of the output stream.
    pub fn permanent_storage(mut self, permanent: bool) -> Self {
        self.descriptor.storage.permanent = permanent;
        self
    }

    /// Selects the storage engine for the output table (`backend="memory|disk"`).
    pub fn storage_backend(mut self, backend: StorageBackendChoice) -> Self {
        self.descriptor.storage.backend = backend;
        self
    }

    /// Sets the bounded output history window.
    pub fn output_history(mut self, window: WindowSpec) -> Self {
        self.descriptor.storage.history = Some(window);
        self
    }

    /// Adds an input stream.
    pub fn input_stream(mut self, stream: InputStreamSpec) -> Self {
        self.descriptor.input_streams.push(stream);
        self
    }

    /// Validates and returns the descriptor.
    pub fn build(self) -> GsnResult<VirtualSensorDescriptor> {
        self.descriptor.validate()?;
        Ok(self.descriptor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 1 descriptor, completed into a full document.
    pub const PAPER_DESCRIPTOR: &str = r#"<?xml version="1.0"?>
<virtual-sensor name="room-bc143-temperature" priority="10">
  <description>Averaged temperature of room BC143</description>
  <metadata key="type" val="temperature" />
  <metadata key="location" val="bc143" />
  <life-cycle pool-size="10" />
  <output-structure>
    <field name="TEMPERATURE" type="integer"/>
  </output-structure>
  <storage permanent-storage="true" size="10s" />
  <input-stream name="dummy" rate="100">
    <stream-source alias="src1" sampling-rate="1" storage-size="1h" disconnect-buffer="10">
      <address wrapper="remote">
        <predicate key="type" val="temperature" />
        <predicate key="location" val="bc143" />
      </address>
      <query>select avg(temperature) as temperature from WRAPPER</query>
    </stream-source>
    <query>select * from src1</query>
  </input-stream>
</virtual-sensor>"#;

    #[test]
    fn parses_the_paper_descriptor() {
        let d = VirtualSensorDescriptor::parse(PAPER_DESCRIPTOR).unwrap();
        assert_eq!(d.name.as_str(), "room-bc143-temperature");
        assert_eq!(d.priority, 10);
        assert_eq!(d.life_cycle.pool_size, 10);
        assert!(d.storage.permanent);
        assert_eq!(
            d.storage.history,
            Some(WindowSpec::Time(gsn_types::Duration::from_secs(10)))
        );
        assert_eq!(d.output_structure.len(), 1);
        assert_eq!(d.metadata.len(), 2);
        assert_eq!(d.input_streams.len(), 1);
        let is = &d.input_streams[0];
        assert_eq!(is.name, "dummy");
        assert_eq!(is.rate_limit, Some(100));
        assert_eq!(is.query, "select * from src1");
        assert_eq!(is.sources.len(), 1);
        let src = &is.sources[0];
        assert_eq!(src.alias, "src1");
        assert_eq!(
            src.window,
            WindowSpec::Time(gsn_types::Duration::from_hours(1))
        );
        assert_eq!(src.sampling_rate, 1.0);
        assert_eq!(src.disconnect_buffer, 10);
        assert!(src.address.is_remote());
        assert_eq!(src.address.predicate("type"), Some("temperature"));
        assert_eq!(src.address.predicate("LOCATION"), Some("bc143"));
        assert_eq!(d.required_wrappers(), vec!["remote"]);
    }

    #[test]
    fn descriptor_round_trips_through_xml() {
        let d = VirtualSensorDescriptor::parse(PAPER_DESCRIPTOR).unwrap();
        let xml = d.to_xml();
        let reparsed = VirtualSensorDescriptor::parse(&xml).unwrap();
        assert_eq!(d, reparsed);
    }

    #[test]
    fn builder_constructs_valid_descriptors() {
        let d = VirtualSensorDescriptor::builder("mote-light")
            .unwrap()
            .priority(5)
            .description("light level")
            .metadata("type", "light")
            .pool_size(4)
            .output_field("light", DataType::Double)
            .unwrap()
            .permanent_storage(false)
            .output_history(WindowSpec::Count(100))
            .input_stream(
                InputStreamSpec::new("main", "select * from src").with_source(
                    StreamSourceSpec::new(
                        "src",
                        AddressSpec::new("mote").with_predicate("sensor", "light"),
                        "select light from WRAPPER",
                    )
                    .with_window(WindowSpec::Count(10))
                    .with_sampling_rate(0.5)
                    .with_disconnect_buffer(5),
                ),
            )
            .build()
            .unwrap();
        assert_eq!(d.name.as_str(), "mote-light");
        assert_eq!(d.input_streams[0].sources[0].sampling_rate, 0.5);
        // And it still round-trips.
        let reparsed = VirtualSensorDescriptor::parse(&d.to_xml()).unwrap();
        assert_eq!(d, reparsed);
    }

    #[test]
    fn missing_required_parts_are_rejected() {
        assert!(VirtualSensorDescriptor::parse("<not-a-sensor/>").is_err());
        assert!(VirtualSensorDescriptor::parse("<virtual-sensor/>").is_err());
        // No output structure.
        assert!(VirtualSensorDescriptor::parse(
            r#"<virtual-sensor name="x"><input-stream name="i"><query>select 1</query></input-stream></virtual-sensor>"#
        )
        .is_err());
        // No input stream.
        assert!(VirtualSensorDescriptor::parse(
            r#"<virtual-sensor name="x"><output-structure><field name="a" type="integer"/></output-structure></virtual-sensor>"#
        )
        .is_err());
        // Input stream without query.
        assert!(VirtualSensorDescriptor::parse(
            r#"<virtual-sensor name="x">
                 <output-structure><field name="a" type="integer"/></output-structure>
                 <input-stream name="i">
                   <stream-source alias="s"><address wrapper="mote"/></stream-source>
                 </input-stream>
               </virtual-sensor>"#
        )
        .is_err());
    }

    #[test]
    fn invalid_queries_are_rejected_at_deployment_time() {
        let bad_source_query = PAPER_DESCRIPTOR.replace(
            "select avg(temperature) as temperature from WRAPPER",
            "selekt broken",
        );
        let err = VirtualSensorDescriptor::parse(&bad_source_query).unwrap_err();
        assert!(err.to_string().contains("source query"), "{err}");

        let bad_output_query = PAPER_DESCRIPTOR.replace("select * from src1", "select * from");
        assert!(VirtualSensorDescriptor::parse(&bad_output_query).is_err());
    }

    #[test]
    fn queries_must_reference_declared_aliases() {
        let wrong_alias = PAPER_DESCRIPTOR.replace("select * from src1", "select * from src2");
        let err = VirtualSensorDescriptor::parse(&wrong_alias).unwrap_err();
        assert!(err.to_string().contains("src2"), "{err}");

        let source_reads_other_table = PAPER_DESCRIPTOR.replace(
            "select avg(temperature) as temperature from WRAPPER",
            "select avg(temperature) from othertable",
        );
        let err = VirtualSensorDescriptor::parse(&source_reads_other_table).unwrap_err();
        assert!(err.to_string().contains("WRAPPER"), "{err}");
    }

    #[test]
    fn invalid_attribute_values_are_rejected() {
        let bad_rate = PAPER_DESCRIPTOR.replace("rate=\"100\"", "rate=\"fast\"");
        assert!(VirtualSensorDescriptor::parse(&bad_rate).is_err());
        let bad_sampling = PAPER_DESCRIPTOR.replace("sampling-rate=\"1\"", "sampling-rate=\"2\"");
        assert!(VirtualSensorDescriptor::parse(&bad_sampling).is_err());
        let bad_window = PAPER_DESCRIPTOR.replace("storage-size=\"1h\"", "storage-size=\"soon\"");
        assert!(VirtualSensorDescriptor::parse(&bad_window).is_err());
        let bad_type = PAPER_DESCRIPTOR.replace("type=\"integer\"", "type=\"quaternion\"");
        assert!(VirtualSensorDescriptor::parse(&bad_type).is_err());
        let bad_pool = PAPER_DESCRIPTOR.replace("pool-size=\"10\"", "pool-size=\"0\"");
        assert!(VirtualSensorDescriptor::parse(&bad_pool).is_err());
    }

    #[test]
    fn duplicate_aliases_and_reserved_names_are_rejected() {
        let d = VirtualSensorDescriptor::builder("x")
            .unwrap()
            .output_field("a", DataType::Integer)
            .unwrap()
            .input_stream(
                InputStreamSpec::new("main", "select * from s")
                    .with_source(StreamSourceSpec::new(
                        "s",
                        AddressSpec::new("mote"),
                        "select * from WRAPPER",
                    ))
                    .with_source(StreamSourceSpec::new(
                        "S",
                        AddressSpec::new("mote"),
                        "select * from WRAPPER",
                    )),
            )
            .build();
        assert!(d.unwrap_err().to_string().contains("duplicate"));

        let d = VirtualSensorDescriptor::builder("x")
            .unwrap()
            .output_field("a", DataType::Integer)
            .unwrap()
            .input_stream(
                InputStreamSpec::new("main", "select * from wrapper").with_source(
                    StreamSourceSpec::new(
                        "wrapper",
                        AddressSpec::new("mote"),
                        "select * from WRAPPER",
                    ),
                ),
            )
            .build();
        assert!(d.unwrap_err().to_string().contains("reserved"));
    }

    #[test]
    fn defaults_are_applied() {
        let minimal = r#"<virtual-sensor name="min">
          <output-structure><field name="v" type="double"/></output-structure>
          <input-stream name="i">
            <stream-source alias="s">
              <address wrapper="mote"/>
            </stream-source>
            <query>select * from s</query>
          </input-stream>
        </virtual-sensor>"#;
        let d = VirtualSensorDescriptor::parse(minimal).unwrap();
        assert_eq!(d.priority, 10);
        assert_eq!(d.life_cycle.pool_size, DEFAULT_POOL_SIZE);
        assert!(!d.storage.permanent);
        let src = &d.input_streams[0].sources[0];
        assert_eq!(src.window, WindowSpec::LatestOnly);
        assert_eq!(src.sampling_rate, 1.0);
        assert_eq!(src.disconnect_buffer, DEFAULT_DISCONNECT_BUFFER);
        assert_eq!(src.query, "select * from WRAPPER");
        assert_eq!(d.input_streams[0].rate_limit, None);
    }

    #[test]
    fn multi_source_join_descriptor() {
        let xml = r#"<virtual-sensor name="rfid-camera-join">
          <output-structure>
            <field name="tag" type="varchar"/>
            <field name="image" type="binary"/>
          </output-structure>
          <input-stream name="main">
            <stream-source alias="rfid" storage-size="1">
              <address wrapper="rfid"/>
              <query>select tag from WRAPPER</query>
            </stream-source>
            <stream-source alias="cam" storage-size="1">
              <address wrapper="camera"/>
              <query>select image from WRAPPER</query>
            </stream-source>
            <query>select rfid.tag, cam.image from rfid, cam</query>
          </input-stream>
        </virtual-sensor>"#;
        let d = VirtualSensorDescriptor::parse(xml).unwrap();
        assert_eq!(d.input_streams[0].sources.len(), 2);
        assert_eq!(d.required_wrappers(), vec!["rfid", "camera"]);
    }
}
