//! # gsn-xml
//!
//! XML handling and the virtual sensor deployment descriptor model.
//!
//! GSN's headline feature is deployment "without any programming effort just by providing
//! a simple XML configuration file" (paper, Section 6).  This crate provides the three
//! layers that make that work:
//!
//! * [`parser`] / [`dom`] / [`writer`] — a small dependency-free XML parser, document
//!   model and serialiser covering the descriptor subset of XML.
//! * [`descriptor`] — the typed [`VirtualSensorDescriptor`], its validation rules
//!   (including SQL parsing of every embedded query at deployment time) and a builder API
//!   for programmatic deployment.
//!
//! See the module documentation of [`descriptor`] for the full descriptor grammar.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod descriptor;
pub mod dom;
pub mod parser;
pub mod writer;

pub use descriptor::{
    AddressSpec, DescriptorBuilder, InputStreamSpec, LifeCycleConfig, StorageBackendChoice,
    StorageConfig, StreamSourceSpec, VirtualSensorDescriptor,
};
pub use dom::{XmlElement, XmlNode};
pub use parser::parse_document;
pub use writer::{write_document, write_element};
