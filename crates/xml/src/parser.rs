//! A hand-written, dependency-free XML parser for deployment descriptors.
//!
//! Supported: elements, attributes (single- or double-quoted), text content, the five
//! predefined entities plus decimal/hex character references, comments, CDATA sections and
//! a leading XML declaration.  Not supported (not needed by GSN descriptors): DTDs,
//! namespaces, processing instructions.

use gsn_types::{GsnError, GsnResult};

use crate::dom::{XmlElement, XmlNode};

/// Parses an XML document and returns its root element.
pub fn parse_document(input: &str) -> GsnResult<XmlElement> {
    let mut parser = XmlParser::new(input);
    parser.skip_prolog()?;
    let root = parser.parse_element()?;
    parser.skip_misc()?;
    if !parser.at_end() {
        return Err(parser.error("unexpected content after the root element"));
    }
    Ok(root)
}

struct XmlParser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> XmlParser<'a> {
    fn new(input: &'a str) -> XmlParser<'a> {
        XmlParser {
            input,
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, msg: impl Into<String>) -> GsnError {
        let line = self.input[..self.pos.min(self.input.len())]
            .bytes()
            .filter(|&b| b == b'\n')
            .count()
            + 1;
        GsnError::xml(format!("{} (line {line})", msg.into()))
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s)
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn skip_prolog(&mut self) -> GsnResult<()> {
        self.skip_whitespace();
        if self.starts_with("<?xml") {
            match self.input[self.pos..].find("?>") {
                Some(end) => self.pos += end + 2,
                None => return Err(self.error("unterminated XML declaration")),
            }
        }
        self.skip_misc()
    }

    /// Skips whitespace and comments between markup.
    fn skip_misc(&mut self) -> GsnResult<()> {
        loop {
            self.skip_whitespace();
            if self.starts_with("<!--") {
                self.skip_comment()?;
            } else {
                return Ok(());
            }
        }
    }

    fn skip_comment(&mut self) -> GsnResult<String> {
        debug_assert!(self.starts_with("<!--"));
        self.pos += 4;
        match self.input[self.pos..].find("-->") {
            Some(end) => {
                let text = self.input[self.pos..self.pos + end].to_owned();
                self.pos += end + 3;
                Ok(text)
            }
            None => Err(self.error("unterminated comment")),
        }
    }

    fn parse_name(&mut self) -> GsnResult<String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(c) if c.is_ascii_alphanumeric() || matches!(c, b'-' | b'_' | b'.' | b':')
        ) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.error("expected a name"));
        }
        Ok(self.input[start..self.pos].to_owned())
    }

    fn parse_element(&mut self) -> GsnResult<XmlElement> {
        if self.peek() != Some(b'<') {
            return Err(self.error("expected `<`"));
        }
        self.pos += 1;
        let name = self.parse_name()?;
        let mut element = XmlElement::new(&name);

        // Attributes.
        loop {
            self.skip_whitespace();
            match self.peek() {
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek() != Some(b'>') {
                        return Err(self.error("expected `>` after `/`"));
                    }
                    self.pos += 1;
                    return Ok(element);
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let key = self.parse_name()?;
                    self.skip_whitespace();
                    if self.peek() != Some(b'=') {
                        return Err(self.error(format!("attribute `{key}` is missing `=`")));
                    }
                    self.pos += 1;
                    self.skip_whitespace();
                    let value = self.parse_attribute_value()?;
                    if element
                        .attributes
                        .iter()
                        .any(|(k, _)| k.eq_ignore_ascii_case(&key))
                    {
                        return Err(self.error(format!("duplicate attribute `{key}`")));
                    }
                    element.attributes.push((key, value));
                }
                None => return Err(self.error("unexpected end of input inside a tag")),
            }
        }

        // Children until the matching end tag.
        loop {
            if self.starts_with("</") {
                self.pos += 2;
                let end_name = self.parse_name()?;
                if !end_name.eq_ignore_ascii_case(&name) {
                    return Err(self.error(format!(
                        "mismatched end tag: expected `</{name}>`, found `</{end_name}>`"
                    )));
                }
                self.skip_whitespace();
                if self.peek() != Some(b'>') {
                    return Err(self.error("expected `>` in end tag"));
                }
                self.pos += 1;
                return Ok(element);
            } else if self.starts_with("<!--") {
                let text = self.skip_comment()?;
                element.children.push(XmlNode::Comment(text));
            } else if self.starts_with("<![CDATA[") {
                self.pos += 9;
                match self.input[self.pos..].find("]]>") {
                    Some(end) => {
                        element.children.push(XmlNode::Text(
                            self.input[self.pos..self.pos + end].to_owned(),
                        ));
                        self.pos += end + 3;
                    }
                    None => return Err(self.error("unterminated CDATA section")),
                }
            } else if self.peek() == Some(b'<') {
                let child = self.parse_element()?;
                element.children.push(XmlNode::Element(child));
            } else if self.at_end() {
                return Err(
                    self.error(format!("unexpected end of input; `<{name}>` is not closed"))
                );
            } else {
                let text = self.parse_text()?;
                if !text.trim().is_empty() {
                    element.children.push(XmlNode::Text(text));
                }
            }
        }
    }

    fn parse_attribute_value(&mut self) -> GsnResult<String> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.error("attribute value must be quoted")),
        };
        self.pos += 1;
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == quote {
                let raw = &self.input[start..self.pos];
                self.pos += 1;
                return decode_entities(raw).map_err(|e| self.error(e));
            }
            if c == b'<' {
                return Err(self.error("`<` is not allowed inside an attribute value"));
            }
            self.pos += 1;
        }
        Err(self.error("unterminated attribute value"))
    }

    fn parse_text(&mut self) -> GsnResult<String> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == b'<' {
                break;
            }
            self.pos += 1;
        }
        decode_entities(&self.input[start..self.pos]).map_err(|e| self.error(e))
    }
}

/// Resolves `&...;` entity and character references.
fn decode_entities(raw: &str) -> Result<String, String> {
    if !raw.contains('&') {
        return Ok(raw.to_owned());
    }
    let mut out = String::with_capacity(raw.len());
    let mut rest = raw;
    while let Some(idx) = rest.find('&') {
        out.push_str(&rest[..idx]);
        rest = &rest[idx..];
        let end = rest
            .find(';')
            .ok_or_else(|| format!("unterminated entity reference in `{raw}`"))?;
        let entity = &rest[1..end];
        match entity {
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "amp" => out.push('&'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                let code = u32::from_str_radix(&entity[2..], 16)
                    .map_err(|_| format!("invalid character reference `&{entity};`"))?;
                out.push(
                    char::from_u32(code)
                        .ok_or_else(|| format!("invalid character reference `&{entity};`"))?,
                );
            }
            _ if entity.starts_with('#') => {
                let code: u32 = entity[1..]
                    .parse()
                    .map_err(|_| format!("invalid character reference `&{entity};`"))?;
                out.push(
                    char::from_u32(code)
                        .ok_or_else(|| format!("invalid character reference `&{entity};`"))?,
                );
            }
            other => return Err(format!("unknown entity `&{other};`")),
        }
        rest = &rest[end + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_descriptor_fragment() {
        // A completed version of the paper's Figure 1 fragment.
        let xml = r#"<?xml version="1.0" encoding="UTF-8"?>
<virtual-sensor name="room-bc143-temperature" priority="10">
  <life-cycle pool-size="10" />
  <output-structure>
    <field name="TEMPERATURE" type="integer"/>
  </output-structure>
  <storage permanent-storage="true" size="10s" />
  <input-stream name="dummy" rate="100">
    <stream-source alias="src1" sampling-rate="1"
                   storage-size="1h" disconnect-buffer="10">
      <address wrapper="remote">
        <predicate key="type" val="temperature" />
        <predicate key="location" val="bc143" />
      </address>
      <query>select avg(temperature) from WRAPPER</query>
    </stream-source>
    <query>select * from src1</query>
  </input-stream>
</virtual-sensor>"#;
        let root = parse_document(xml).unwrap();
        assert_eq!(root.name, "virtual-sensor");
        assert_eq!(root.attr("name"), Some("room-bc143-temperature"));
        assert_eq!(
            root.first_element("life-cycle").unwrap().attr("pool-size"),
            Some("10")
        );
        let input = root.first_element("input-stream").unwrap();
        let source = input.first_element("stream-source").unwrap();
        assert_eq!(source.attr("alias"), Some("src1"));
        assert_eq!(source.attr("storage-size"), Some("1h"));
        let address = source.first_element("address").unwrap();
        assert_eq!(address.elements_named("predicate").count(), 2);
        assert_eq!(
            source.first_element("query").unwrap().text(),
            "select avg(temperature) from WRAPPER"
        );
        assert_eq!(
            input.first_element("query").unwrap().text(),
            "select * from src1"
        );
    }

    #[test]
    fn parses_self_closing_and_nested_elements() {
        let root = parse_document("<a><b/><c><d x='1'/></c></a>").unwrap();
        assert_eq!(root.elements().count(), 2);
        assert_eq!(
            root.first_element("c")
                .unwrap()
                .first_element("d")
                .unwrap()
                .attr("x"),
            Some("1")
        );
    }

    #[test]
    fn entity_and_character_references() {
        let root =
            parse_document("<q a=\"&lt;x&gt;\">5 &amp; 6 &#65;&#x42; &apos;&quot;</q>").unwrap();
        assert_eq!(root.attr("a"), Some("<x>"));
        assert_eq!(root.text(), "5 & 6 AB '\"");
    }

    #[test]
    fn comments_and_cdata() {
        let root = parse_document(
            "<q><!-- a comment --><![CDATA[select * from t where a < 5 & b > 1]]></q>",
        )
        .unwrap();
        assert_eq!(root.text(), "select * from t where a < 5 & b > 1");
        assert!(root
            .children
            .iter()
            .any(|n| matches!(n, XmlNode::Comment(c) if c.contains("a comment"))));
    }

    #[test]
    fn whitespace_only_text_is_dropped() {
        let root = parse_document("<a>\n  <b/>\n  <c/>\n</a>").unwrap();
        assert_eq!(root.children.len(), 2);
    }

    #[test]
    fn single_quoted_attributes() {
        let root = parse_document("<a x='hello world' y=\"2\"/>").unwrap();
        assert_eq!(root.attr("x"), Some("hello world"));
        assert_eq!(root.attr("y"), Some("2"));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse_document("").is_err());
        assert!(parse_document("just text").is_err());
        assert!(parse_document("<a>").is_err());
        assert!(parse_document("<a></b>").is_err());
        assert!(parse_document("<a x></a>").is_err());
        assert!(parse_document("<a x=1></a>").is_err());
        assert!(parse_document("<a x='1' x='2'></a>").is_err());
        assert!(parse_document("<a>&nosuch;</a>").is_err());
        assert!(parse_document("<a>&#xZZ;</a>").is_err());
        assert!(parse_document("<a><!-- unterminated </a>").is_err());
        assert!(parse_document("<a></a><b></b>").is_err());
        assert!(parse_document("<a b='<'></a>").is_err());
        assert!(parse_document("<?xml version='1.0'").is_err());
    }

    #[test]
    fn error_messages_carry_line_numbers() {
        let err = parse_document("<a>\n<b>\n</c>\n</a>").unwrap_err();
        assert!(err.to_string().contains("line 3"), "{err}");
    }

    #[test]
    fn trailing_comments_after_root_are_allowed() {
        let root = parse_document("<a/><!-- trailing -->").unwrap();
        assert_eq!(root.name, "a");
    }
}
