//! XML serialisation.
//!
//! The container's status interface and the dynamic-reconfiguration examples write
//! descriptors back out (GSN's web interface lets operators download and edit the running
//! configuration), so the writer must round-trip everything the parser accepts.

use crate::dom::{XmlElement, XmlNode};

/// Serialises an element compactly (no added whitespace).
pub fn write_element(element: &XmlElement) -> String {
    let mut out = String::new();
    write_into(element, &mut out, None, 0);
    out
}

/// Serialises an element with two-space indentation and a leading XML declaration.
pub fn write_document(element: &XmlElement) -> String {
    let mut out = String::from("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    write_into(element, &mut out, Some(2), 0);
    out.push('\n');
    out
}

fn write_into(element: &XmlElement, out: &mut String, indent: Option<usize>, depth: usize) {
    let pad = |out: &mut String, depth: usize| {
        if let Some(width) = indent {
            for _ in 0..(width * depth) {
                out.push(' ');
            }
        }
    };
    pad(out, depth);
    out.push('<');
    out.push_str(&element.name);
    for (k, v) in &element.attributes {
        out.push(' ');
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_attr(v));
        out.push('"');
    }
    if element.children.is_empty() {
        out.push_str(" />");
        return;
    }
    out.push('>');

    // Elements whose only children are text are written inline so that
    // `<query>select …</query>` round-trips compactly.
    let only_text = element
        .children
        .iter()
        .all(|c| matches!(c, XmlNode::Text(_)));
    if only_text {
        for child in &element.children {
            if let XmlNode::Text(t) = child {
                out.push_str(&escape_text(t));
            }
        }
    } else {
        for child in &element.children {
            if indent.is_some() {
                out.push('\n');
            }
            match child {
                XmlNode::Element(e) => write_into(e, out, indent, depth + 1),
                XmlNode::Text(t) => {
                    pad(out, depth + 1);
                    out.push_str(&escape_text(t.trim()));
                }
                XmlNode::Comment(c) => {
                    pad(out, depth + 1);
                    out.push_str("<!--");
                    out.push_str(c);
                    out.push_str("-->");
                }
            }
        }
        if indent.is_some() {
            out.push('\n');
            pad(out, depth);
        }
    }
    out.push_str("</");
    out.push_str(&element.name);
    out.push('>');
}

/// Escapes text content.
pub fn escape_text(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Escapes an attribute value.
pub fn escape_attr(s: &str) -> String {
    escape_text(s).replace('"', "&quot;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_document;

    fn sample() -> XmlElement {
        XmlElement::new("stream-source")
            .with_attr("alias", "src1")
            .with_attr("storage-size", "1h")
            .with_child(
                XmlElement::new("address")
                    .with_attr("wrapper", "remote")
                    .with_child(
                        XmlElement::new("predicate")
                            .with_attr("key", "type")
                            .with_attr("val", "temperature"),
                    ),
            )
            .with_child(
                XmlElement::new("query").with_text("select avg(t) from WRAPPER where t < 30"),
            )
    }

    #[test]
    fn compact_output_round_trips() {
        let e = sample();
        let text = write_element(&e);
        let parsed = parse_document(&text).unwrap();
        assert_eq!(parsed, e);
    }

    #[test]
    fn pretty_output_round_trips() {
        let e = sample();
        let text = write_document(&e);
        assert!(text.starts_with("<?xml"));
        assert!(text.contains("\n  <address"));
        let parsed = parse_document(&text).unwrap();
        assert_eq!(parsed.name, e.name);
        assert_eq!(parsed.attr("alias"), Some("src1"));
        assert_eq!(
            parsed.first_element("query").unwrap().text(),
            "select avg(t) from WRAPPER where t < 30"
        );
    }

    #[test]
    fn special_characters_are_escaped() {
        let e = XmlElement::new("q")
            .with_attr("expr", "a < \"b\" & c")
            .with_text("x < y & z > w");
        let text = write_element(&e);
        assert!(text.contains("a &lt; &quot;b&quot; &amp; c"));
        assert!(text.contains("x &lt; y &amp; z &gt; w"));
        let parsed = parse_document(&text).unwrap();
        assert_eq!(parsed.attr("expr"), Some("a < \"b\" & c"));
        assert_eq!(parsed.text(), "x < y & z > w");
    }

    #[test]
    fn empty_elements_self_close() {
        let e = XmlElement::new("life-cycle").with_attr("pool-size", "10");
        assert_eq!(write_element(&e), "<life-cycle pool-size=\"10\" />");
    }

    #[test]
    fn comments_are_preserved() {
        let parsed = parse_document("<a><!-- keep me --><b/></a>").unwrap();
        let out = write_element(&parsed);
        assert!(out.contains("<!-- keep me -->"));
        let reparsed = parse_document(&out).unwrap();
        assert_eq!(reparsed, parsed);
    }

    #[test]
    fn display_impl_uses_writer() {
        let e = XmlElement::new("x").with_attr("a", "1");
        assert_eq!(e.to_string(), "<x a=\"1\" />");
    }
}
