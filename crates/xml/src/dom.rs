//! A small XML document object model.
//!
//! GSN deployment descriptors are plain XML files (paper, Figure 1).  The DOM here covers
//! the subset those descriptors use: elements, attributes, text content and comments.
//! Namespaces, DTDs and processing instructions beyond the XML declaration are out of
//! scope.

use std::fmt;

/// A node in an XML tree.
#[derive(Debug, Clone, PartialEq)]
pub enum XmlNode {
    /// A child element.
    Element(XmlElement),
    /// A text run (entity references already resolved).
    Text(String),
    /// A comment (kept so descriptors can be round-tripped).
    Comment(String),
}

/// An XML element: a name, ordered attributes and child nodes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct XmlElement {
    /// The element name.
    pub name: String,
    /// Attributes in document order.
    pub attributes: Vec<(String, String)>,
    /// Child nodes in document order.
    pub children: Vec<XmlNode>,
}

impl XmlElement {
    /// Creates an element with no attributes or children.
    pub fn new(name: &str) -> XmlElement {
        XmlElement {
            name: name.to_owned(),
            attributes: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Adds an attribute (builder style).
    pub fn with_attr(mut self, key: &str, value: impl Into<String>) -> XmlElement {
        self.attributes.push((key.to_owned(), value.into()));
        self
    }

    /// Adds a child element (builder style).
    pub fn with_child(mut self, child: XmlElement) -> XmlElement {
        self.children.push(XmlNode::Element(child));
        self
    }

    /// Adds a text child (builder style).
    pub fn with_text(mut self, text: impl Into<String>) -> XmlElement {
        self.children.push(XmlNode::Text(text.into()));
        self
    }

    /// Looks an attribute up by case-insensitive name.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(key))
            .map(|(_, v)| v.as_str())
    }

    /// Looks an attribute up, returning `default` when absent.
    pub fn attr_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.attr(key).unwrap_or(default)
    }

    /// Child elements (ignoring text/comments).
    pub fn elements(&self) -> impl Iterator<Item = &XmlElement> {
        self.children.iter().filter_map(|n| match n {
            XmlNode::Element(e) => Some(e),
            _ => None,
        })
    }

    /// Child elements with a given case-insensitive name.
    pub fn elements_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a XmlElement> {
        self.elements()
            .filter(move |e| e.name.eq_ignore_ascii_case(name))
    }

    /// The first child element with a given name.
    pub fn first_element(&self, name: &str) -> Option<&XmlElement> {
        self.elements().find(|e| e.name.eq_ignore_ascii_case(name))
    }

    /// The concatenated, trimmed text content of this element (direct text children only).
    pub fn text(&self) -> String {
        let mut out = String::new();
        for child in &self.children {
            if let XmlNode::Text(t) = child {
                out.push_str(t);
            }
        }
        out.trim().to_owned()
    }

    /// Total number of elements in this subtree, including `self`.
    pub fn subtree_size(&self) -> usize {
        1 + self.elements().map(XmlElement::subtree_size).sum::<usize>()
    }
}

impl fmt::Display for XmlElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::writer::write_element(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> XmlElement {
        XmlElement::new("virtual-sensor")
            .with_attr("name", "room-temp")
            .with_attr("priority", "10")
            .with_child(XmlElement::new("life-cycle").with_attr("pool-size", "10"))
            .with_child(
                XmlElement::new("output-structure")
                    .with_child(
                        XmlElement::new("field")
                            .with_attr("name", "TEMPERATURE")
                            .with_attr("type", "integer"),
                    )
                    .with_child(
                        XmlElement::new("field")
                            .with_attr("name", "LIGHT")
                            .with_attr("type", "double"),
                    ),
            )
            .with_child(XmlElement::new("query").with_text("select * from src1"))
    }

    #[test]
    fn attribute_lookup_is_case_insensitive() {
        let e = sample();
        assert_eq!(e.attr("name"), Some("room-temp"));
        assert_eq!(e.attr("NAME"), Some("room-temp"));
        assert_eq!(e.attr("missing"), None);
        assert_eq!(e.attr_or("missing", "x"), "x");
        assert_eq!(e.attr_or("priority", "1"), "10");
    }

    #[test]
    fn child_navigation() {
        let e = sample();
        assert_eq!(e.elements().count(), 3);
        assert_eq!(e.elements_named("field").count(), 0); // fields are grandchildren
        let os = e.first_element("output-structure").unwrap();
        assert_eq!(os.elements_named("field").count(), 2);
        assert!(e.first_element("nosuch").is_none());
        assert_eq!(
            e.first_element("QUERY").unwrap().text(),
            "select * from src1"
        );
    }

    #[test]
    fn text_concatenates_and_trims() {
        let e = XmlElement::new("q")
            .with_text("  select * ")
            .with_child(XmlElement::new("ignored"))
            .with_text("from src1  ");
        assert_eq!(e.text(), "select * from src1");
        assert_eq!(XmlElement::new("empty").text(), "");
    }

    #[test]
    fn subtree_size_counts_elements() {
        assert_eq!(sample().subtree_size(), 6);
        assert_eq!(XmlElement::new("x").subtree_size(), 1);
    }
}
