//! Metrics: descriptors, instruments, the registry, and export surfaces.
//!
//! Instruments are cheap `Arc`-backed handles recording into relaxed atomics;
//! cloning one and recording from many shards is the intended usage (per-shard
//! recordings land in the same atomics, so cross-shard "merge" is free).  The
//! registry itself is only locked to register a handle or to take a snapshot.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Number of log2 buckets in a [`Histogram`].  Bucket 0 holds the value `0`;
/// bucket `i` (1..=63) holds values in `[2^(i-1), 2^i - 1]`, so the full
/// `u64` range is covered.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// What a metric measures, fixed by its descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing count.
    Counter,
    /// Point-in-time signed level, overwritten at each observation.
    Gauge,
    /// Log-bucketed distribution of `u64` observations (latencies, sizes).
    Histogram,
}

impl MetricKind {
    /// The Prometheus `# TYPE` keyword for this kind.
    pub fn prometheus_type(&self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            // Histograms export pre-computed quantiles, which in the
            // exposition format is a `summary`.
            MetricKind::Histogram => "summary",
        }
    }
}

/// Static description of one metric: its wire name, human help text, unit and
/// kind.  Declared as a `static` next to the code that records it, so the
/// registry can be queried by identity and names stay greppable.
#[derive(Debug)]
pub struct MetricDesc {
    /// Exported name, e.g. `gsn_storage_wal_sync_micros`.  Must be a valid
    /// Prometheus metric name (`[a-zA-Z_][a-zA-Z0-9_]*`).
    pub name: &'static str,
    /// One-line human description.
    pub help: &'static str,
    /// Unit of the recorded values (e.g. `microseconds`, `bytes`, `elements`).
    pub unit: &'static str,
    /// Counter, gauge or histogram.
    pub kind: MetricKind,
    /// Label key when the metric has a per-instance dimension (e.g. `peer`,
    /// `phase`); empty for unlabelled metrics.
    pub label_key: &'static str,
}

impl MetricDesc {
    /// A counter descriptor.
    pub const fn counter(name: &'static str, help: &'static str, unit: &'static str) -> MetricDesc {
        MetricDesc {
            name,
            help,
            unit,
            kind: MetricKind::Counter,
            label_key: "",
        }
    }

    /// A gauge descriptor.
    pub const fn gauge(name: &'static str, help: &'static str, unit: &'static str) -> MetricDesc {
        MetricDesc {
            name,
            help,
            unit,
            kind: MetricKind::Gauge,
            label_key: "",
        }
    }

    /// A histogram descriptor.
    pub const fn histogram(
        name: &'static str,
        help: &'static str,
        unit: &'static str,
    ) -> MetricDesc {
        MetricDesc {
            name,
            help,
            unit,
            kind: MetricKind::Histogram,
            label_key: "",
        }
    }

    /// The same descriptor with a label dimension.
    pub const fn with_label(mut self, key: &'static str) -> MetricDesc {
        self.label_key = key;
        self
    }
}

/// Monotonic counter handle.  Clone freely; all clones share the same cell.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A detached counter (record now, register into a registry later).
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the count.  For *sourcing*: when the authoritative cumulative
    /// counter is maintained elsewhere (a subsystem's own stats struct), the exporter
    /// stores the current total here at snapshot time instead of double-counting.
    pub fn store(&self, total: u64) {
        self.0.store(total, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Point-in-time gauge handle.  Clone freely; all clones share the same cell.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A detached gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Overwrites the level.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts the level by a signed delta.
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// Log2-bucketed histogram handle for latency/size distributions.
///
/// Recording is four relaxed atomic ops.  Quantiles are answered from the
/// bucket boundaries: `quantile(q)` returns the upper bound of the bucket the
/// q-th observation falls in, clamped to the true recorded maximum — so the
/// relative error is bounded by the bucket width (a factor of 2) and
/// `p50 <= p90 <= p99 <= max` always holds.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram(Arc::new(HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }))
    }
}

/// Bucket index for a value: 0 for 0, otherwise `floor(log2(v)) + 1`.
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `i` (see [`HISTOGRAM_BUCKETS`]).
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 63 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// A detached histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        let core = &self.0;
        core.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
        core.sum.fetch_add(v, Ordering::Relaxed);
        core.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records the elapsed time of a [`Stopwatch`] in microseconds.
    pub fn record_elapsed(&self, sw: Stopwatch) {
        self.record(sw.elapsed_micros());
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.0.max.load(Ordering::Relaxed)
    }

    /// Upper-bound estimate of the q-th quantile (`0.0 < q <= 1.0`), clamped
    /// to the recorded maximum.  Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let target = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut cumulative = 0u64;
        for i in 0..HISTOGRAM_BUCKETS {
            cumulative += self.0.buckets[i].load(Ordering::Relaxed);
            if cumulative >= target {
                return bucket_upper_bound(i).min(self.max());
            }
        }
        self.max()
    }

    /// Folds another histogram's observations into this one (element-wise
    /// bucket add; the max is the max of the two).  Used to merge per-shard
    /// histograms that were recorded into distinct handles.
    pub fn merge_from(&self, other: &Histogram) {
        for i in 0..HISTOGRAM_BUCKETS {
            let n = other.0.buckets[i].load(Ordering::Relaxed);
            if n > 0 {
                self.0.buckets[i].fetch_add(n, Ordering::Relaxed);
            }
        }
        self.0.count.fetch_add(other.count(), Ordering::Relaxed);
        self.0.sum.fetch_add(other.sum(), Ordering::Relaxed);
        self.0.max.fetch_max(other.max(), Ordering::Relaxed);
    }

    /// Point-in-time summary (count, sum, quantiles, max).
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            sum: self.sum(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            max: self.max(),
        }
    }
}

/// Frozen summary of a [`Histogram`] at snapshot time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// Median upper-bound estimate.
    pub p50: u64,
    /// 90th percentile upper-bound estimate.
    pub p90: u64,
    /// 99th percentile upper-bound estimate.
    pub p99: u64,
    /// Exact maximum observation.
    pub max: u64,
}

impl HistogramSummary {
    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

impl fmt::Display for HistogramSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} p50={} p90={} p99={} max={}",
            self.count, self.p50, self.p90, self.p99, self.max
        )
    }
}

/// Measures wall-clock time for histogram recording.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Stopwatch {
        Stopwatch(Instant::now())
    }

    /// Microseconds elapsed since [`Stopwatch::start`], saturated to `u64`.
    pub fn elapsed_micros(&self) -> u64 {
        let micros = self.0.elapsed().as_micros();
        u64::try_from(micros).unwrap_or(u64::MAX)
    }
}

impl Default for Stopwatch {
    fn default() -> Stopwatch {
        Stopwatch::start()
    }
}

#[derive(Debug, Clone)]
enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Instrument {
    fn kind(&self) -> MetricKind {
        match self {
            Instrument::Counter(_) => MetricKind::Counter,
            Instrument::Gauge(_) => MetricKind::Gauge,
            Instrument::Histogram(_) => MetricKind::Histogram,
        }
    }
}

struct Entry {
    desc: &'static MetricDesc,
    label: String,
    instrument: Instrument,
}

#[derive(Default)]
struct RegistryInner {
    entries: Vec<Entry>,
    index: HashMap<(&'static str, String), usize>,
}

/// The container-wide metric catalogue.
///
/// Registration is idempotent: asking twice for the same `(name, label)` pair
/// returns a handle to the same underlying cells, so subsystems can register
/// their metrics independently and shards share instruments for free.  An
/// existing *detached* instrument can also be adopted with the `register_*`
/// methods, which lets a subsystem record from construction time and attach
/// to the container's registry later without losing history.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn get_or_insert(
        &self,
        desc: &'static MetricDesc,
        label: &str,
        make: impl FnOnce() -> Instrument,
    ) -> Instrument {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        if let Some(&i) = inner.index.get(&(desc.name, label.to_string())) {
            let existing = &inner.entries[i].instrument;
            assert_eq!(
                existing.kind(),
                desc.kind,
                "metric {} re-registered with a different kind",
                desc.name
            );
            return existing.clone();
        }
        let instrument = make();
        assert_eq!(
            instrument.kind(),
            desc.kind,
            "instrument kind does not match descriptor {}",
            desc.name
        );
        let i = inner.entries.len();
        inner.entries.push(Entry {
            desc,
            label: label.to_string(),
            instrument: instrument.clone(),
        });
        inner.index.insert((desc.name, label.to_string()), i);
        instrument
    }

    /// Returns the counter for `desc`, creating it on first use.
    pub fn counter(&self, desc: &'static MetricDesc) -> Counter {
        self.counter_labeled(desc, "")
    }

    /// Returns the counter for `desc` at one label value.
    pub fn counter_labeled(&self, desc: &'static MetricDesc, label: &str) -> Counter {
        match self.get_or_insert(desc, label, || Instrument::Counter(Counter::new())) {
            Instrument::Counter(c) => c,
            _ => unreachable!(),
        }
    }

    /// Returns the gauge for `desc`, creating it on first use.
    pub fn gauge(&self, desc: &'static MetricDesc) -> Gauge {
        self.gauge_labeled(desc, "")
    }

    /// Returns the gauge for `desc` at one label value.
    pub fn gauge_labeled(&self, desc: &'static MetricDesc, label: &str) -> Gauge {
        match self.get_or_insert(desc, label, || Instrument::Gauge(Gauge::new())) {
            Instrument::Gauge(g) => g,
            _ => unreachable!(),
        }
    }

    /// Returns the histogram for `desc`, creating it on first use.
    pub fn histogram(&self, desc: &'static MetricDesc) -> Histogram {
        self.histogram_labeled(desc, "")
    }

    /// Returns the histogram for `desc` at one label value.
    pub fn histogram_labeled(&self, desc: &'static MetricDesc, label: &str) -> Histogram {
        match self.get_or_insert(desc, label, || Instrument::Histogram(Histogram::new())) {
            Instrument::Histogram(h) => h,
            _ => unreachable!(),
        }
    }

    /// Adopts an existing counter handle under `desc` (no-op if already
    /// registered; the previously registered handle wins).
    pub fn register_counter(&self, desc: &'static MetricDesc, counter: &Counter) -> Counter {
        match self.get_or_insert(desc, "", || Instrument::Counter(counter.clone())) {
            Instrument::Counter(c) => c,
            _ => unreachable!(),
        }
    }

    /// Adopts an existing gauge handle under `desc`.
    pub fn register_gauge(&self, desc: &'static MetricDesc, gauge: &Gauge) -> Gauge {
        match self.get_or_insert(desc, "", || Instrument::Gauge(gauge.clone())) {
            Instrument::Gauge(g) => g,
            _ => unreachable!(),
        }
    }

    /// Adopts an existing histogram handle under `desc`.
    pub fn register_histogram(&self, desc: &'static MetricDesc, hist: &Histogram) -> Histogram {
        match self.get_or_insert(desc, "", || Instrument::Histogram(hist.clone())) {
            Instrument::Histogram(h) => h,
            _ => unreachable!(),
        }
    }

    /// Number of registered `(metric, label)` instruments.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("metrics registry poisoned")
            .entries
            .len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Freezes every registered instrument into a typed snapshot, sorted by
    /// `(name, label)` for deterministic output.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        let mut metrics: Vec<MetricSample> = inner
            .entries
            .iter()
            .map(|e| MetricSample {
                name: e.desc.name.to_string(),
                help: e.desc.help.to_string(),
                unit: e.desc.unit.to_string(),
                label_key: e.desc.label_key.to_string(),
                label: e.label.clone(),
                value: match &e.instrument {
                    Instrument::Counter(c) => SampleValue::Counter(c.get()),
                    Instrument::Gauge(g) => SampleValue::Gauge(g.get()),
                    Instrument::Histogram(h) => SampleValue::Histogram(h.summary()),
                },
            })
            .collect();
        metrics.sort_by(|a, b| {
            (a.name.as_str(), a.label.as_str()).cmp(&(b.name.as_str(), b.label.as_str()))
        });
        MetricsSnapshot { metrics }
    }

    /// Renders the current state as Prometheus text exposition.
    pub fn render_prometheus(&self) -> String {
        self.snapshot().render_prometheus()
    }
}

impl fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MetricsRegistry({} instruments)", self.len())
    }
}

/// The frozen value of one `(metric, label)` instrument.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    /// Exported metric name.
    pub name: String,
    /// Human help text.
    pub help: String,
    /// Unit of the value.
    pub unit: String,
    /// Label key (empty for unlabelled metrics).
    pub label_key: String,
    /// Label value (empty for unlabelled metrics).
    pub label: String,
    /// The frozen value.
    pub value: SampleValue,
}

impl MetricSample {
    /// The sample's kind.
    pub fn kind(&self) -> MetricKind {
        match self.value {
            SampleValue::Counter(_) => MetricKind::Counter,
            SampleValue::Gauge(_) => MetricKind::Gauge,
            SampleValue::Histogram(_) => MetricKind::Histogram,
        }
    }

    /// Counter value, if this sample is a counter.
    pub fn as_counter(&self) -> Option<u64> {
        match self.value {
            SampleValue::Counter(v) => Some(v),
            _ => None,
        }
    }

    /// Gauge level, if this sample is a gauge.
    pub fn as_gauge(&self) -> Option<i64> {
        match self.value {
            SampleValue::Gauge(v) => Some(v),
            _ => None,
        }
    }

    /// Histogram summary, if this sample is a histogram.
    pub fn as_histogram(&self) -> Option<HistogramSummary> {
        match self.value {
            SampleValue::Histogram(h) => Some(h),
            _ => None,
        }
    }
}

/// A frozen sample value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SampleValue {
    /// Monotonic count.
    Counter(u64),
    /// Signed level.
    Gauge(i64),
    /// Distribution summary.
    Histogram(HistogramSummary),
}

/// A typed, wire-serialisable snapshot of a registry: what
/// `GsnContainer::metrics_snapshot()` returns and what peers exchange over the
/// federation wire.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// All samples, sorted by `(name, label)`.
    pub metrics: Vec<MetricSample>,
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

impl MetricsSnapshot {
    /// First sample with the given metric name.
    pub fn get(&self, name: &str) -> Option<&MetricSample> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// Sample with the given metric name and label value.
    pub fn get_labeled(&self, name: &str, label: &str) -> Option<&MetricSample> {
        self.metrics
            .iter()
            .find(|m| m.name == name && m.label == label)
    }

    /// Number of distinct metric names in the snapshot.
    pub fn distinct_names(&self) -> usize {
        let mut names: Vec<&str> = self.metrics.iter().map(|m| m.name.as_str()).collect();
        names.dedup();
        names.len()
    }

    /// Renders the snapshot as Prometheus text exposition format: `# HELP` /
    /// `# TYPE` headers per metric, histograms as `summary` quantiles plus
    /// `_sum` / `_count` series.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for m in &self.metrics {
            if last_name != Some(m.name.as_str()) {
                out.push_str(&format!("# HELP {} {} ({})\n", m.name, m.help, m.unit));
                out.push_str(&format!(
                    "# TYPE {} {}\n",
                    m.name,
                    m.kind().prometheus_type()
                ));
                last_name = Some(m.name.as_str());
            }
            let base_label = if m.label.is_empty() {
                String::new()
            } else {
                format!("{}=\"{}\"", m.label_key, escape_label(&m.label))
            };
            let wrap = |extra: &str| -> String {
                match (base_label.is_empty(), extra.is_empty()) {
                    (true, true) => String::new(),
                    (true, false) => format!("{{{extra}}}"),
                    (false, true) => format!("{{{base_label}}}"),
                    (false, false) => format!("{{{base_label},{extra}}}"),
                }
            };
            match &m.value {
                SampleValue::Counter(v) => {
                    out.push_str(&format!("{}{} {}\n", m.name, wrap(""), v));
                }
                SampleValue::Gauge(v) => {
                    out.push_str(&format!("{}{} {}\n", m.name, wrap(""), v));
                }
                SampleValue::Histogram(h) => {
                    for (q, v) in [
                        ("0.5", h.p50),
                        ("0.9", h.p90),
                        ("0.99", h.p99),
                        ("1", h.max),
                    ] {
                        out.push_str(&format!(
                            "{}{} {}\n",
                            m.name,
                            wrap(&format!("quantile=\"{q}\"")),
                            v
                        ));
                    }
                    out.push_str(&format!("{}_sum{} {}\n", m.name, wrap(""), h.sum));
                    out.push_str(&format!("{}_count{} {}\n", m.name, wrap(""), h.count));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static TEST_COUNTER: MetricDesc = MetricDesc::counter("t_counter", "a counter", "events");
    static TEST_GAUGE: MetricDesc = MetricDesc::gauge("t_gauge", "a gauge", "bytes");
    static TEST_HIST: MetricDesc = MetricDesc::histogram("t_hist", "a histogram", "microseconds");
    static TEST_LABELED: MetricDesc =
        MetricDesc::counter("t_labeled", "per-peer counter", "messages").with_label("peer");

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(10), 1023);
        assert_eq!(bucket_upper_bound(63), u64::MAX);
        // Every value lands in a bucket whose range contains it.
        for v in [0u64, 1, 2, 3, 7, 8, 100, 4096, 1 << 40, u64::MAX] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper_bound(i), "v={v} bucket={i}");
            if i > 0 {
                assert!(v > bucket_upper_bound(i - 1), "v={v} bucket={i}");
            }
        }
    }

    #[test]
    fn histogram_quantiles_are_monotonic_and_clamped() {
        let h = Histogram::new();
        for v in [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 1000] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 10);
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.max);
        assert_eq!(s.max, 1000);
        // The p99 upper bound is clamped to the true max, never above it.
        assert!(s.p99 <= 1000);
    }

    #[test]
    fn histogram_merge_accumulates() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(5);
        a.record(100);
        b.record(7);
        b.record(200_000);
        a.merge_from(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.sum(), 5 + 100 + 7 + 200_000);
        assert_eq!(a.max(), 200_000);
    }

    #[test]
    fn registry_is_idempotent() {
        let r = MetricsRegistry::new();
        let c1 = r.counter(&TEST_COUNTER);
        let c2 = r.counter(&TEST_COUNTER);
        c1.inc();
        c2.add(2);
        assert_eq!(c1.get(), 3);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn labeled_instruments_are_distinct() {
        let r = MetricsRegistry::new();
        let a = r.counter_labeled(&TEST_LABELED, "node-a");
        let b = r.counter_labeled(&TEST_LABELED, "node-b");
        a.inc();
        b.add(5);
        let snap = r.snapshot();
        assert_eq!(
            snap.get_labeled("t_labeled", "node-a")
                .unwrap()
                .as_counter(),
            Some(1)
        );
        assert_eq!(
            snap.get_labeled("t_labeled", "node-b")
                .unwrap()
                .as_counter(),
            Some(5)
        );
        assert_eq!(snap.distinct_names(), 1);
    }

    #[test]
    fn adopting_a_detached_handle_keeps_history() {
        let detached = Counter::new();
        detached.add(41);
        let r = MetricsRegistry::new();
        let adopted = r.register_counter(&TEST_COUNTER, &detached);
        adopted.inc();
        assert_eq!(detached.get(), 42);
        assert_eq!(
            r.snapshot().get("t_counter").unwrap().as_counter(),
            Some(42)
        );
    }

    #[test]
    fn prometheus_rendering_covers_all_kinds() {
        let r = MetricsRegistry::new();
        r.counter(&TEST_COUNTER).add(7);
        r.gauge(&TEST_GAUGE).set(-3);
        let h = r.histogram(&TEST_HIST);
        h.record(10);
        h.record(20);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE t_counter counter"));
        assert!(text.contains("t_counter 7"));
        assert!(text.contains("# TYPE t_gauge gauge"));
        assert!(text.contains("t_gauge -3"));
        assert!(text.contains("# TYPE t_hist summary"));
        assert!(text.contains("t_hist{quantile=\"0.5\"}"));
        assert!(text.contains("t_hist_count 2"));
        assert!(text.contains("t_hist_sum 30"));
    }

    #[test]
    fn label_values_are_escaped() {
        let r = MetricsRegistry::new();
        r.counter_labeled(&TEST_LABELED, "we\"ird\\node").inc();
        let text = r.render_prometheus();
        assert!(text.contains("peer=\"we\\\"ird\\\\node\""));
    }
}
