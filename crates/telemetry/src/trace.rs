//! Structured tracing: a bounded ring buffer of spans, and a slow-query log.
//!
//! Both logs are *off by default* and designed so that the disabled path does
//! no allocation and takes no lock: payloads are produced by closures that are
//! only invoked once the log has decided to keep the record.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Identity of one span inside a [`TraceLog`].  Id 0 is the null span — what
/// [`TraceLog::begin`] hands out while tracing is disabled, and the parent id
/// of root spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The null span (no parent / tracing disabled).
    pub const NONE: SpanId = SpanId(0);

    /// True for the null span.
    pub fn is_none(&self) -> bool {
        self.0 == 0
    }
}

/// A completed span as stored in the ring buffer.
#[derive(Debug, Clone)]
pub struct TraceSpan {
    /// This span's id (never 0).
    pub id: SpanId,
    /// Parent span id (0 for roots).
    pub parent: SpanId,
    /// Static operation name, e.g. `pipeline.eval`.
    pub name: &'static str,
    /// Dynamic detail (element source, table name, SQL …), produced lazily.
    pub detail: String,
    /// Microseconds since the trace log was created when the span started.
    pub start_micros: u64,
    /// Span duration in microseconds.
    pub duration_micros: u64,
}

/// An in-flight span returned by [`TraceLog::begin`].  Carries everything
/// needed to finish the span without touching the log again; when tracing was
/// disabled at begin time the token is inert (id 0) and finishing it is free.
#[derive(Debug, Clone, Copy)]
pub struct SpanToken {
    id: SpanId,
    parent: SpanId,
    name: &'static str,
    started: Option<Instant>,
}

impl SpanToken {
    /// The id this span will be stored under (pass as `parent` to children).
    /// [`SpanId::NONE`] when tracing was disabled at begin time.
    pub fn id(&self) -> SpanId {
        self.id
    }
}

struct TraceInner {
    spans: VecDeque<TraceSpan>,
    dropped: u64,
}

/// Bounded ring buffer of completed spans.
///
/// A span is opened with [`begin`](TraceLog::begin) (cheap: one relaxed load
/// when disabled) and closed with [`finish`](TraceLog::finish), whose detail
/// closure only runs if the span is actually kept.  When the buffer is full
/// the oldest span is dropped and counted.
pub struct TraceLog {
    enabled: AtomicBool,
    next_id: AtomicU64,
    epoch: Instant,
    capacity: usize,
    inner: Mutex<TraceInner>,
}

/// Default span capacity of a [`TraceLog`].
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

impl Default for TraceLog {
    fn default() -> TraceLog {
        TraceLog::with_capacity(DEFAULT_TRACE_CAPACITY)
    }
}

impl TraceLog {
    /// A disabled trace log with the default capacity.
    pub fn new() -> TraceLog {
        TraceLog::default()
    }

    /// A disabled trace log retaining at most `capacity` spans.
    pub fn with_capacity(capacity: usize) -> TraceLog {
        TraceLog {
            enabled: AtomicBool::new(false),
            next_id: AtomicU64::new(1),
            epoch: Instant::now(),
            capacity: capacity.max(1),
            inner: Mutex::new(TraceInner {
                spans: VecDeque::new(),
                dropped: 0,
            }),
        }
    }

    /// Turns span collection on or off.  Spans already collected stay.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// True when spans are being collected.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Opens a span.  While tracing is disabled this is one atomic load and
    /// returns an inert token — no id is consumed, no clock is read, nothing
    /// is allocated.
    pub fn begin(&self, name: &'static str, parent: SpanId) -> SpanToken {
        if !self.is_enabled() {
            return SpanToken {
                id: SpanId::NONE,
                parent,
                name,
                started: None,
            };
        }
        SpanToken {
            id: SpanId(self.next_id.fetch_add(1, Ordering::Relaxed)),
            parent,
            name,
            started: Some(Instant::now()),
        }
    }

    /// Closes a span with no detail text.
    pub fn finish(&self, token: SpanToken) {
        self.finish_with(token, String::new);
    }

    /// Closes a span; `detail` runs only when the span is actually recorded.
    pub fn finish_with(&self, token: SpanToken, detail: impl FnOnce() -> String) {
        let Some(started) = token.started else { return };
        let duration_micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        let start_micros =
            u64::try_from(started.duration_since(self.epoch).as_micros()).unwrap_or(u64::MAX);
        let span = TraceSpan {
            id: token.id,
            parent: token.parent,
            name: token.name,
            detail: detail(),
            start_micros,
            duration_micros,
        };
        let mut inner = self.inner.lock().expect("trace log poisoned");
        if inner.spans.len() >= self.capacity {
            inner.spans.pop_front();
            inner.dropped += 1;
        }
        inner.spans.push_back(span);
    }

    /// All retained spans, oldest first.
    pub fn snapshot(&self) -> Vec<TraceSpan> {
        self.inner
            .lock()
            .expect("trace log poisoned")
            .spans
            .iter()
            .cloned()
            .collect()
    }

    /// Retained spans whose ancestry (following parent ids inside the buffer)
    /// reaches `root` — the "follow one element through the layers" view.
    pub fn descendants_of(&self, root: SpanId) -> Vec<TraceSpan> {
        let spans = self.snapshot();
        let mut keep: std::collections::HashSet<SpanId> = std::collections::HashSet::new();
        keep.insert(root);
        // Spans are stored in completion order; children may complete before
        // parents, so fix-point over the buffer.
        let mut changed = true;
        while changed {
            changed = false;
            for s in &spans {
                if keep.contains(&s.parent) && keep.insert(s.id) {
                    changed = true;
                }
            }
        }
        spans
            .into_iter()
            .filter(|s| s.id != root && keep.contains(&s.id))
            .collect()
    }

    /// Spans dropped because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("trace log poisoned").dropped
    }

    /// Discards all retained spans.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("trace log poisoned");
        inner.spans.clear();
    }
}

impl std::fmt::Debug for TraceLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "TraceLog(enabled={}, capacity={})",
            self.is_enabled(),
            self.capacity
        )
    }
}

/// One slow query kept by the [`SlowQueryLog`].
#[derive(Debug, Clone)]
pub struct SlowQuery {
    /// The SQL text.
    pub sql: String,
    /// How long the cursor ran, in microseconds.
    pub micros: u64,
    /// The plan explain captured when the query crossed the threshold.
    pub explain: String,
    /// Rows the cursor scanned.
    pub rows_scanned: u64,
    /// Rows the cursor returned.
    pub rows_returned: u64,
}

/// Threshold-gated log of the slowest queries.
///
/// A threshold of 0 disables the log entirely; the record closure (which
/// formats SQL and plan explain) only runs for queries at or over the
/// threshold, so fast queries cost one relaxed atomic load.
pub struct SlowQueryLog {
    threshold_micros: AtomicU64,
    capacity: usize,
    inner: Mutex<VecDeque<SlowQuery>>,
}

/// Default entry capacity of a [`SlowQueryLog`].
pub const DEFAULT_SLOW_QUERY_CAPACITY: usize = 128;

impl Default for SlowQueryLog {
    fn default() -> SlowQueryLog {
        SlowQueryLog::with_capacity(DEFAULT_SLOW_QUERY_CAPACITY)
    }
}

impl SlowQueryLog {
    /// A disabled slow-query log (threshold 0).
    pub fn new() -> SlowQueryLog {
        SlowQueryLog::default()
    }

    /// A disabled slow-query log retaining at most `capacity` entries.
    pub fn with_capacity(capacity: usize) -> SlowQueryLog {
        SlowQueryLog {
            threshold_micros: AtomicU64::new(0),
            capacity: capacity.max(1),
            inner: Mutex::new(VecDeque::new()),
        }
    }

    /// Sets the slow threshold in microseconds; 0 disables the log.
    pub fn set_threshold_micros(&self, micros: u64) {
        self.threshold_micros.store(micros, Ordering::Relaxed);
    }

    /// Current threshold (0 = disabled).
    pub fn threshold_micros(&self) -> u64 {
        self.threshold_micros.load(Ordering::Relaxed)
    }

    /// Records a query that took `micros` if the log is enabled and the
    /// threshold is crossed; `make` runs only in that case.
    pub fn observe(&self, micros: u64, make: impl FnOnce() -> SlowQuery) {
        let threshold = self.threshold_micros();
        if threshold == 0 || micros < threshold {
            return;
        }
        let entry = make();
        let mut inner = self.inner.lock().expect("slow query log poisoned");
        if inner.len() >= self.capacity {
            inner.pop_front();
        }
        inner.push_back(entry);
    }

    /// Retained slow queries, oldest first.
    pub fn snapshot(&self) -> Vec<SlowQuery> {
        self.inner
            .lock()
            .expect("slow query log poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// Discards all retained entries.
    pub fn clear(&self) {
        self.inner.lock().expect("slow query log poisoned").clear();
    }
}

impl std::fmt::Debug for SlowQueryLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SlowQueryLog(threshold_micros={})",
            self.threshold_micros()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_log_is_inert() {
        let log = TraceLog::new();
        let token = log.begin("step", SpanId::NONE);
        assert!(token.id().is_none());
        log.finish_with(token, || {
            panic!("detail closure must not run when disabled")
        });
        assert!(log.snapshot().is_empty());
    }

    #[test]
    fn spans_nest_by_parent_id() {
        let log = TraceLog::new();
        log.set_enabled(true);
        let root = log.begin("pipeline", SpanId::NONE);
        let child = log.begin("storage.insert", root.id());
        log.finish_with(child, || "motes".to_string());
        let grandchild = log.begin("notify", root.id());
        log.finish(grandchild);
        log.finish(root);
        let spans = log.snapshot();
        assert_eq!(spans.len(), 3);
        let tree = log.descendants_of(root.id());
        assert_eq!(tree.len(), 2);
        assert!(tree
            .iter()
            .any(|s| s.name == "storage.insert" && s.detail == "motes"));
    }

    #[test]
    fn ring_buffer_drops_oldest() {
        let log = TraceLog::with_capacity(2);
        log.set_enabled(true);
        for name in ["a", "b", "c"] {
            let t = log.begin(name, SpanId::NONE);
            log.finish(t);
        }
        let spans = log.snapshot();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "b");
        assert_eq!(log.dropped(), 1);
    }

    #[test]
    fn slow_query_log_gates_on_threshold() {
        let log = SlowQueryLog::new();
        // Disabled: closure must not run.
        log.observe(1_000_000, || panic!("disabled log must not record"));
        log.set_threshold_micros(500);
        log.observe(100, || panic!("fast query must not record"));
        log.observe(700, || SlowQuery {
            sql: "select * from t".into(),
            micros: 700,
            explain: "scan t".into(),
            rows_scanned: 10,
            rows_returned: 10,
        });
        let entries = log.snapshot();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].micros, 700);
    }

    #[test]
    fn slow_query_log_is_bounded() {
        let log = SlowQueryLog::with_capacity(2);
        log.set_threshold_micros(1);
        for i in 0..5u64 {
            log.observe(10 + i, || SlowQuery {
                sql: format!("q{i}"),
                micros: 10 + i,
                explain: String::new(),
                rows_scanned: 0,
                rows_returned: 0,
            });
        }
        let entries = log.snapshot();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].sql, "q3");
    }
}
