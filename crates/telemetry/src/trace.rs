//! Structured tracing: a bounded ring buffer of spans, and a slow-query log.
//!
//! Both logs are *off by default* and designed so that the disabled path does
//! no allocation and takes no lock: payloads are produced by closures that are
//! only invoked once the log has decided to keep the record.
//!
//! Since the mesh tier landed, spans can also carry a *distributed* identity: a
//! [`TraceContext`] names one logical operation (`trace_id`) across every
//! container it touches, and [`RemoteSpan`]s collected from peers are stitched
//! into one [`AssembledTrace`] client-side.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Identity of one span inside a [`TraceLog`].  Id 0 is the null span — what
/// [`TraceLog::begin`] hands out while tracing is disabled, and the parent id
/// of root spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The null span (no parent / tracing disabled).
    pub const NONE: SpanId = SpanId(0);

    /// True for the null span.
    pub fn is_none(&self) -> bool {
        self.0 == 0
    }
}

/// The distributed identity a span carries across the federation wire: which
/// logical operation it belongs to (`trace_id`, unique mesh-wide) and which
/// span on the *sending* container is its parent.
///
/// A `trace_id` of 0 means "untraced" and is never put on the wire; old peers
/// that predate tracing simply omit the field, which decodes as `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// Mesh-wide identity of the logical operation (never 0 on the wire).
    pub trace_id: u128,
    /// The parent span on the originating container.
    pub parent_span: SpanId,
}

/// A completed span as stored in the ring buffer.
#[derive(Debug, Clone)]
pub struct TraceSpan {
    /// This span's id (never 0).
    pub id: SpanId,
    /// Parent span id (0 for roots).
    pub parent: SpanId,
    /// Mesh-wide trace this span belongs to (0 for purely local spans).
    pub trace_id: u128,
    /// Static operation name, e.g. `pipeline.eval`.
    pub name: &'static str,
    /// Dynamic detail (element source, table name, SQL …), produced lazily.
    pub detail: String,
    /// Microseconds since the trace log was created when the span started.
    pub start_micros: u64,
    /// Span duration in microseconds.
    pub duration_micros: u64,
}

/// An in-flight span returned by [`TraceLog::begin`].  Carries everything
/// needed to finish the span without touching the log again; when tracing was
/// disabled at begin time the token is inert (id 0) and finishing it is free.
#[derive(Debug, Clone, Copy)]
pub struct SpanToken {
    id: SpanId,
    parent: SpanId,
    trace_id: u128,
    name: &'static str,
    started: Option<Instant>,
}

impl SpanToken {
    /// The id this span will be stored under (pass as `parent` to children).
    /// [`SpanId::NONE`] when tracing was disabled at begin time.
    pub fn id(&self) -> SpanId {
        self.id
    }

    /// The distributed trace this span belongs to (0 = purely local).
    pub fn trace_id(&self) -> u128 {
        self.trace_id
    }

    /// The [`TraceContext`] to put on the wire for work this span delegates to
    /// a peer: the token's trace with the token itself as remote parent.
    /// `None` when the span is inert or not part of a distributed trace.
    pub fn context(&self) -> Option<TraceContext> {
        if self.trace_id == 0 || self.id.is_none() {
            return None;
        }
        Some(TraceContext {
            trace_id: self.trace_id,
            parent_span: self.id,
        })
    }
}

struct TraceInner {
    spans: VecDeque<TraceSpan>,
    dropped: u64,
}

/// Bounded ring buffer of completed spans.
///
/// A span is opened with [`begin`](TraceLog::begin) (cheap: one relaxed load
/// when disabled) and closed with [`finish`](TraceLog::finish), whose detail
/// closure only runs if the span is actually kept.  When the buffer is full
/// the oldest span is dropped and counted.
pub struct TraceLog {
    enabled: AtomicBool,
    next_id: AtomicU64,
    epoch: Instant,
    capacity: usize,
    inner: Mutex<TraceInner>,
}

/// Default span capacity of a [`TraceLog`].
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

impl Default for TraceLog {
    fn default() -> TraceLog {
        TraceLog::with_capacity(DEFAULT_TRACE_CAPACITY)
    }
}

impl TraceLog {
    /// A disabled trace log with the default capacity.
    pub fn new() -> TraceLog {
        TraceLog::default()
    }

    /// A disabled trace log retaining at most `capacity` spans.
    pub fn with_capacity(capacity: usize) -> TraceLog {
        TraceLog {
            enabled: AtomicBool::new(false),
            next_id: AtomicU64::new(1),
            epoch: Instant::now(),
            capacity: capacity.max(1),
            inner: Mutex::new(TraceInner {
                spans: VecDeque::new(),
                dropped: 0,
            }),
        }
    }

    /// Turns span collection on or off.  Spans already collected stay.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// True when spans are being collected.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Namespaces the span-id counter by node id so that span ids stay unique
    /// across the whole mesh: ids from node `n` live in `(n & 0xFFFF) << 48 | …`.
    /// Assembled cross-container trees rely on this — two containers must never
    /// mint the same id for different spans.  Call once at container build,
    /// before any span is opened.
    pub fn set_id_namespace(&self, node: u64) {
        self.next_id
            .store(((node & 0xFFFF) << 48) | 1, Ordering::Relaxed);
    }

    /// Opens a purely local span.  While tracing is disabled this is one atomic
    /// load and returns an inert token — no id is consumed, no clock is read,
    /// nothing is allocated.
    pub fn begin(&self, name: &'static str, parent: SpanId) -> SpanToken {
        self.begin_traced(name, parent, 0)
    }

    /// Opens a span inside a distributed trace received from a peer: the new
    /// span's parent is the *remote* parent from the context, and every child
    /// opened under it inherits the trace id.
    pub fn begin_in_trace(&self, name: &'static str, ctx: TraceContext) -> SpanToken {
        self.begin_traced(name, ctx.parent_span, ctx.trace_id)
    }

    /// Opens a span with an explicit trace id (0 = local).
    pub fn begin_traced(&self, name: &'static str, parent: SpanId, trace_id: u128) -> SpanToken {
        if !self.is_enabled() {
            return SpanToken {
                id: SpanId::NONE,
                parent,
                trace_id,
                name,
                started: None,
            };
        }
        SpanToken {
            id: SpanId(self.next_id.fetch_add(1, Ordering::Relaxed)),
            parent,
            trace_id,
            name,
            started: Some(Instant::now()),
        }
    }

    /// Closes a span with no detail text.
    pub fn finish(&self, token: SpanToken) {
        self.finish_with(token, String::new);
    }

    /// Closes a span; `detail` runs only when the span is actually recorded.
    pub fn finish_with(&self, token: SpanToken, detail: impl FnOnce() -> String) {
        let Some(started) = token.started else { return };
        let duration_micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        let start_micros =
            u64::try_from(started.duration_since(self.epoch).as_micros()).unwrap_or(u64::MAX);
        let span = TraceSpan {
            id: token.id,
            parent: token.parent,
            trace_id: token.trace_id,
            name: token.name,
            detail: detail(),
            start_micros,
            duration_micros,
        };
        let mut inner = self.inner.lock().expect("trace log poisoned");
        if inner.spans.len() >= self.capacity {
            inner.spans.pop_front();
            inner.dropped += 1;
        }
        inner.spans.push_back(span);
    }

    /// All retained spans, oldest first.
    pub fn snapshot(&self) -> Vec<TraceSpan> {
        self.inner
            .lock()
            .expect("trace log poisoned")
            .spans
            .iter()
            .cloned()
            .collect()
    }

    /// All retained spans belonging to the distributed trace `trace_id`,
    /// oldest first.  This is what a peer ships back for
    /// `collect_remote_spans`.
    pub fn spans_of_trace(&self, trace_id: u128) -> Vec<TraceSpan> {
        self.inner
            .lock()
            .expect("trace log poisoned")
            .spans
            .iter()
            .filter(|s| s.trace_id == trace_id && trace_id != 0)
            .cloned()
            .collect()
    }

    /// Retained spans whose ancestry (following parent ids inside the buffer)
    /// reaches `root` — the "follow one element through the layers" view.
    ///
    /// Equivalent to [`tree_of`](TraceLog::tree_of)`.spans`; use `tree_of` when
    /// you need to know whether ring wraparound truncated the tree.
    pub fn descendants_of(&self, root: SpanId) -> Vec<TraceSpan> {
        self.tree_of(root).spans
    }

    /// The tree under `root`, with truncation detection: when a span that was
    /// opened after `root` has a parent pointer that leads *outside* the buffer
    /// (its ancestors were overwritten by ring wraparound), the walk cannot
    /// decide whether that span belonged to the tree.  Such broken links mark
    /// the tree [`incomplete`](TraceTree::incomplete) and count one drop in
    /// [`dropped`](TraceLog::dropped), instead of silently returning a
    /// truncated result.
    pub fn tree_of(&self, root: SpanId) -> TraceTree {
        let spans = self.snapshot();
        let ids: std::collections::HashSet<SpanId> = spans.iter().map(|s| s.id).collect();
        let mut keep: std::collections::HashSet<SpanId> = std::collections::HashSet::new();
        keep.insert(root);
        // Spans are stored in completion order; children may complete before
        // parents, so fix-point over the buffer.
        let mut changed = true;
        while changed {
            changed = false;
            for s in &spans {
                if keep.contains(&s.parent) && keep.insert(s.id) {
                    changed = true;
                }
            }
        }
        // A broken link: a span opened after `root` (ids are monotonic) whose
        // parent chain left the buffer before reaching any kept span.  Its
        // evicted ancestors may have reached `root`, so the tree is suspect.
        let incomplete = spans.iter().any(|s| {
            !keep.contains(&s.id)
                && !s.parent.is_none()
                && !ids.contains(&s.parent)
                && s.id.0 > root.0
        });
        if incomplete {
            self.inner.lock().expect("trace log poisoned").dropped += 1;
        }
        let spans = spans
            .into_iter()
            .filter(|s| s.id != root && keep.contains(&s.id))
            .collect();
        TraceTree {
            root,
            spans,
            incomplete,
        }
    }

    /// Spans dropped because the buffer was full, plus trees detected as
    /// truncated by [`tree_of`](TraceLog::tree_of).
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("trace log poisoned").dropped
    }

    /// Discards all retained spans.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("trace log poisoned");
        inner.spans.clear();
    }
}

impl std::fmt::Debug for TraceLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "TraceLog(enabled={}, capacity={})",
            self.is_enabled(),
            self.capacity
        )
    }
}

/// The result of [`TraceLog::tree_of`]: the spans reachable from `root`, and
/// whether ring wraparound may have severed part of the tree.
#[derive(Debug, Clone)]
pub struct TraceTree {
    /// The root the walk started from.
    pub root: SpanId,
    /// Spans whose ancestry reaches `root` (excluding the root span itself).
    pub spans: Vec<TraceSpan>,
    /// True when a parent chain left the buffer before it could be resolved —
    /// the tree may be missing subtrees whose ancestors were overwritten.
    pub incomplete: bool,
}

/// A span as shipped across the wire from a peer: like [`TraceSpan`] but owning
/// its name and stamped with the node it was recorded on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteSpan {
    /// Node id of the container that recorded the span.
    pub node: u64,
    /// The distributed trace the span belongs to.
    pub trace_id: u128,
    /// Span id (unique mesh-wide thanks to id namespacing).
    pub id: u64,
    /// Parent span id (possibly on a different node).
    pub parent: u64,
    /// Operation name.
    pub name: String,
    /// Dynamic detail.
    pub detail: String,
    /// Microseconds since the recording container's trace epoch.
    pub start_micros: u64,
    /// Span duration in microseconds.
    pub duration_micros: u64,
}

impl RemoteSpan {
    /// Converts a locally stored span into its wire form.
    pub fn from_span(node: u64, span: &TraceSpan) -> RemoteSpan {
        RemoteSpan {
            node,
            trace_id: span.trace_id,
            id: span.id.0,
            parent: span.parent.0,
            name: span.name.to_string(),
            detail: span.detail.clone(),
            start_micros: span.start_micros,
            duration_micros: span.duration_micros,
        }
    }
}

/// One distributed trace assembled client-side from local spans plus
/// [`RemoteSpan`]s collected off every participating peer.
#[derive(Debug, Clone)]
pub struct AssembledTrace {
    /// The trace identity.
    pub trace_id: u128,
    /// The root span id (on the coordinating container).
    pub root: u64,
    /// All spans, duplicates removed, ordered by start time.
    pub spans: Vec<RemoteSpan>,
    /// The distinct nodes that contributed spans, ascending.
    pub nodes: Vec<u64>,
    /// True when some span's parent is missing from the assembled set (a peer
    /// evicted it, or a collect request never completed).
    pub incomplete: bool,
}

impl AssembledTrace {
    /// Stitches collected spans into one tree: duplicates (same node + span
    /// id, e.g. from retransmitted collect replies) are dropped, spans are
    /// ordered by start time, and broken parent links mark the trace
    /// incomplete.
    pub fn assemble(trace_id: u128, root: u64, spans: Vec<RemoteSpan>) -> AssembledTrace {
        let mut seen: std::collections::HashSet<(u64, u64)> = std::collections::HashSet::new();
        let mut kept: Vec<RemoteSpan> = Vec::with_capacity(spans.len());
        for s in spans {
            if seen.insert((s.node, s.id)) {
                kept.push(s);
            }
        }
        kept.sort_by_key(|s| (s.start_micros, s.id));
        let ids: std::collections::HashSet<u64> = kept.iter().map(|s| s.id).collect();
        let incomplete = kept
            .iter()
            .any(|s| s.parent != 0 && s.id != root && !ids.contains(&s.parent));
        let mut nodes: Vec<u64> = kept.iter().map(|s| s.node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        AssembledTrace {
            trace_id,
            root,
            spans: kept,
            nodes,
            incomplete,
        }
    }

    /// Renders the trace as a JSON object (for the `/traces` endpoint).
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"trace_id\":\"{:032x}\",\"root\":{},\"incomplete\":{},\"nodes\":{:?},\"spans\":[",
            self.trace_id, self.root, self.incomplete, self.nodes
        ));
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"node\":{},\"id\":{},\"parent\":{},\"name\":\"{}\",\"detail\":\"{}\",\"start_micros\":{},\"duration_micros\":{}}}",
                s.node,
                s.id,
                s.parent,
                escape_json(&s.name),
                escape_json(&s.detail),
                s.start_micros,
                s.duration_micros
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Escapes a string for embedding in JSON output.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Per-peer timing breakdown of one hop of a federated query.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HopBreakdown {
    /// The peer node id.
    pub peer: u64,
    /// Time spent encoding the request frame(s), in microseconds.
    pub serialize_micros: u64,
    /// Request-to-reply round trip over the (simulated) network, milliseconds.
    pub rtt_millis: u64,
    /// Time the remote container spent opening/executing the query, µs.
    pub remote_micros: u64,
    /// Frames re-sent to this peer after loss.
    pub retransmits: u64,
}

/// One slow query kept by the [`SlowQueryLog`].
#[derive(Debug, Clone)]
pub struct SlowQuery {
    /// The SQL text.
    pub sql: String,
    /// How long the cursor ran, in microseconds.
    pub micros: u64,
    /// The plan explain captured when the query crossed the threshold.
    pub explain: String,
    /// Rows the cursor scanned.
    pub rows_scanned: u64,
    /// Rows the cursor returned.
    pub rows_returned: u64,
    /// Per-hop breakdown for federated queries (empty for local cursors).
    pub hops: Vec<HopBreakdown>,
}

/// Threshold-gated log of the slowest queries.
///
/// A threshold of 0 disables the log entirely; the record closure (which
/// formats SQL and plan explain) only runs for queries at or over the
/// threshold, so fast queries cost one relaxed atomic load.
pub struct SlowQueryLog {
    threshold_micros: AtomicU64,
    capacity: usize,
    inner: Mutex<VecDeque<SlowQuery>>,
}

/// Default entry capacity of a [`SlowQueryLog`].
pub const DEFAULT_SLOW_QUERY_CAPACITY: usize = 128;

impl Default for SlowQueryLog {
    fn default() -> SlowQueryLog {
        SlowQueryLog::with_capacity(DEFAULT_SLOW_QUERY_CAPACITY)
    }
}

impl SlowQueryLog {
    /// A disabled slow-query log (threshold 0).
    pub fn new() -> SlowQueryLog {
        SlowQueryLog::default()
    }

    /// A disabled slow-query log retaining at most `capacity` entries.
    pub fn with_capacity(capacity: usize) -> SlowQueryLog {
        SlowQueryLog {
            threshold_micros: AtomicU64::new(0),
            capacity: capacity.max(1),
            inner: Mutex::new(VecDeque::new()),
        }
    }

    /// Sets the slow threshold in microseconds; 0 disables the log.
    pub fn set_threshold_micros(&self, micros: u64) {
        self.threshold_micros.store(micros, Ordering::Relaxed);
    }

    /// Current threshold (0 = disabled).
    pub fn threshold_micros(&self) -> u64 {
        self.threshold_micros.load(Ordering::Relaxed)
    }

    /// Records a query that took `micros` if the log is enabled and the
    /// threshold is crossed; `make` runs only in that case.
    pub fn observe(&self, micros: u64, make: impl FnOnce() -> SlowQuery) {
        let threshold = self.threshold_micros();
        if threshold == 0 || micros < threshold {
            return;
        }
        let entry = make();
        let mut inner = self.inner.lock().expect("slow query log poisoned");
        if inner.len() >= self.capacity {
            inner.pop_front();
        }
        inner.push_back(entry);
    }

    /// Retained slow queries, oldest first.
    pub fn snapshot(&self) -> Vec<SlowQuery> {
        self.inner
            .lock()
            .expect("slow query log poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// Discards all retained entries.
    pub fn clear(&self) {
        self.inner.lock().expect("slow query log poisoned").clear();
    }
}

impl std::fmt::Debug for SlowQueryLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SlowQueryLog(threshold_micros={})",
            self.threshold_micros()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_log_is_inert() {
        let log = TraceLog::new();
        let token = log.begin("step", SpanId::NONE);
        assert!(token.id().is_none());
        log.finish_with(token, || {
            panic!("detail closure must not run when disabled")
        });
        assert!(log.snapshot().is_empty());
    }

    #[test]
    fn spans_nest_by_parent_id() {
        let log = TraceLog::new();
        log.set_enabled(true);
        let root = log.begin("pipeline", SpanId::NONE);
        let child = log.begin("storage.insert", root.id());
        log.finish_with(child, || "motes".to_string());
        let grandchild = log.begin("notify", root.id());
        log.finish(grandchild);
        log.finish(root);
        let spans = log.snapshot();
        assert_eq!(spans.len(), 3);
        let tree = log.tree_of(root.id());
        assert_eq!(tree.spans.len(), 2);
        assert!(!tree.incomplete);
        assert!(tree
            .spans
            .iter()
            .any(|s| s.name == "storage.insert" && s.detail == "motes"));
        assert_eq!(log.descendants_of(root.id()).len(), 2);
    }

    #[test]
    fn ring_buffer_drops_oldest() {
        let log = TraceLog::with_capacity(2);
        log.set_enabled(true);
        for name in ["a", "b", "c"] {
            let t = log.begin(name, SpanId::NONE);
            log.finish(t);
        }
        let spans = log.snapshot();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "b");
        assert_eq!(log.dropped(), 1);
    }

    #[test]
    fn wraparound_marks_tree_incomplete() {
        let log = TraceLog::with_capacity(3);
        log.set_enabled(true);
        let root = log.begin("federated", SpanId::NONE);
        log.finish(root);
        let mid = log.begin("scatter", root.id());
        log.finish(mid);
        let leaf = log.begin("hop", mid.id());
        log.finish(leaf);
        // Two more spans evict `federated` and `scatter`; `hop` now has a
        // parent pointer leading outside the buffer.
        for name in ["x", "y"] {
            let t = log.begin(name, SpanId::NONE);
            log.finish(t);
        }
        let dropped_before = log.dropped();
        let tree = log.tree_of(root.id());
        assert!(tree.incomplete, "severed ancestry must be flagged");
        assert_eq!(log.dropped(), dropped_before + 1);
    }

    #[test]
    fn traced_spans_carry_and_filter_by_trace_id() {
        let log = TraceLog::new();
        log.set_enabled(true);
        log.set_id_namespace(7);
        let ctx = TraceContext {
            trace_id: 42,
            parent_span: SpanId(5),
        };
        let serve = log.begin_in_trace("federated.serve", ctx);
        assert_eq!(serve.trace_id(), 42);
        assert!(
            serve.id().0 >= (7u64 << 48),
            "id must live in the namespace"
        );
        let child = log.begin_traced("query.open", serve.id(), serve.trace_id());
        log.finish(child);
        log.finish(serve);
        let local = log.begin("step", SpanId::NONE);
        log.finish(local);
        let traced = log.spans_of_trace(42);
        assert_eq!(traced.len(), 2);
        assert!(traced.iter().all(|s| s.trace_id == 42));
        let serve_span = traced
            .iter()
            .find(|s| s.name == "federated.serve")
            .expect("serve span recorded");
        assert_eq!(serve_span.parent, SpanId(5));
        assert!(log.spans_of_trace(0).is_empty(), "0 is never a trace id");
        let wire = RemoteSpan::from_span(7, serve_span);
        assert_eq!(wire.node, 7);
        assert_eq!(wire.trace_id, 42);
        assert_eq!(wire.name, "federated.serve");
    }

    #[test]
    fn assemble_dedupes_and_detects_broken_links() {
        let span = |node: u64, id: u64, parent: u64, start: u64| RemoteSpan {
            node,
            trace_id: 9,
            id,
            parent,
            name: "op".into(),
            detail: String::new(),
            start_micros: start,
            duration_micros: 1,
        };
        // Root 1 on node 1; node 2 contributed a child and a duplicate
        // (retransmitted collect reply).
        let trace = AssembledTrace::assemble(
            9,
            1,
            vec![
                span(1, 1, 0, 0),
                span(2, 10, 1, 5),
                span(2, 10, 1, 5),
                span(2, 11, 10, 6),
            ],
        );
        assert_eq!(trace.spans.len(), 3);
        assert_eq!(trace.nodes, vec![1, 2]);
        assert!(!trace.incomplete);
        // Missing parent 99 => incomplete.
        let broken = AssembledTrace::assemble(9, 1, vec![span(1, 1, 0, 0), span(2, 12, 99, 3)]);
        assert!(broken.incomplete);
        assert!(broken.render_json().contains("\"incomplete\":true"));
    }

    #[test]
    fn slow_query_log_gates_on_threshold() {
        let log = SlowQueryLog::new();
        // Disabled: closure must not run.
        log.observe(1_000_000, || panic!("disabled log must not record"));
        log.set_threshold_micros(500);
        log.observe(100, || panic!("fast query must not record"));
        log.observe(700, || SlowQuery {
            sql: "select * from t".into(),
            micros: 700,
            explain: "scan t".into(),
            rows_scanned: 10,
            rows_returned: 10,
            hops: Vec::new(),
        });
        let entries = log.snapshot();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].micros, 700);
    }

    #[test]
    fn slow_query_log_is_bounded() {
        let log = SlowQueryLog::with_capacity(2);
        log.set_threshold_micros(1);
        for i in 0..5u64 {
            log.observe(10 + i, || SlowQuery {
                sql: format!("q{i}"),
                micros: 10 + i,
                explain: String::new(),
                rows_scanned: 0,
                rows_returned: 0,
                hops: Vec::new(),
            });
        }
        let entries = log.snapshot();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].sql, "q3");
    }
}
