//! The mesh health model: a small rule set evaluated over a metrics snapshot.
//!
//! Each rule reads one or two samples out of a [`MetricsSnapshot`] and grades
//! one *subsystem* `Healthy`, `Degraded` or `Unhealthy` with a human-readable
//! reason.  The result — a [`HealthSummary`] — is small enough to piggyback on
//! gossip rounds, so every container can answer `mesh_health()` for the whole
//! cluster without a scrape fan-out.
//!
//! Rules are deliberately forgiving: a missing metric grades `Healthy` (the
//! subsystem is not in use), and ratio rules only fire past a minimum sample
//! count so cold containers are not flagged on their first handful of events.

use crate::metrics::MetricsSnapshot;
use crate::trace::escape_json;

/// The grade one subsystem (or a whole node) can receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HealthState {
    /// All rules within budget.
    Healthy,
    /// At least one rule over its degraded threshold.
    Degraded,
    /// At least one rule over its unhealthy threshold.
    Unhealthy,
}

impl HealthState {
    /// Stable numeric encoding (0/1/2) used on the wire and as the
    /// `gsn_health_state` gauge value.
    pub fn as_u8(&self) -> u8 {
        match self {
            HealthState::Healthy => 0,
            HealthState::Degraded => 1,
            HealthState::Unhealthy => 2,
        }
    }

    /// Inverse of [`as_u8`](HealthState::as_u8); unknown values clamp to
    /// `Unhealthy` (fail conservative on wire corruption).
    pub fn from_u8(v: u8) -> HealthState {
        match v {
            0 => HealthState::Healthy,
            1 => HealthState::Degraded,
            _ => HealthState::Unhealthy,
        }
    }

    /// Lower-case display label.
    pub fn label(&self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::Unhealthy => "unhealthy",
        }
    }
}

impl std::fmt::Display for HealthState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The grade of one subsystem, with the reasons that produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubsystemHealth {
    /// Subsystem name: `step`, `storage`, `pool`, `federation`, `queries`,
    /// `sources`.
    pub subsystem: String,
    /// The grade.
    pub state: HealthState,
    /// One line per rule over budget (empty when healthy).
    pub reasons: Vec<String>,
}

/// One node's graded subsystems, versioned so gossip can keep the newest.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HealthSummary {
    /// The node this summary grades.
    pub node: u64,
    /// Monotonic version (the node's step counter); gossip keeps the higher.
    pub version: u64,
    /// Per-subsystem grades, in evaluation order.
    pub subsystems: Vec<SubsystemHealth>,
}

impl HealthSummary {
    /// The grade of one subsystem, if present.
    pub fn state_of(&self, subsystem: &str) -> Option<HealthState> {
        self.subsystems
            .iter()
            .find(|s| s.subsystem == subsystem)
            .map(|s| s.state)
    }

    /// The worst grade across all subsystems (`Healthy` when empty).
    pub fn worst(&self) -> HealthState {
        self.subsystems
            .iter()
            .map(|s| s.state)
            .max()
            .unwrap_or(HealthState::Healthy)
    }

    /// Renders the summary as a JSON object (for the `/health` endpoint).
    pub fn render_json(&self) -> String {
        let mut out = format!(
            "{{\"node\":{},\"version\":{},\"state\":\"{}\",\"subsystems\":[",
            self.node,
            self.version,
            self.worst().label()
        );
        for (i, s) in self.subsystems.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"subsystem\":\"{}\",\"state\":\"{}\",\"reasons\":[",
                escape_json(&s.subsystem),
                s.state.label()
            ));
            for (j, r) in s.reasons.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\"", escape_json(r)));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

/// The threshold knobs of every health rule.
///
/// Defaults are generous — an ordinary test container grades `Healthy` — and a
/// rule's `Unhealthy` bound is a multiple of its `Degraded` bound.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthThresholds {
    /// `step`: p99 step duration budget in microseconds (`Degraded` above it,
    /// `Unhealthy` above `step_unhealthy_factor` times it).
    pub step_p99_budget_micros: u64,
    /// `step`: multiplier on the p99 budget that grades `Unhealthy`.
    pub step_unhealthy_factor: u64,
    /// `storage`: p99 WAL fsync budget in microseconds.
    pub wal_sync_p99_budget_micros: u64,
    /// `storage`: multiplier on the fsync budget that grades `Unhealthy`.
    pub wal_unhealthy_factor: u64,
    /// `pool`: contended lock acquisitions per 1000 page requests that grade
    /// `Degraded` (4x grades `Unhealthy`).
    pub pool_contention_permille: u64,
    /// `pool`: evictions per 1000 page requests that grade `Degraded` (the
    /// working set thrashes through the pool).
    pub pool_eviction_permille: u64,
    /// `federation`: retransmits per 1000 sent messages that grade `Degraded`
    /// (4x grades `Unhealthy`).
    pub retransmit_permille: u64,
    /// `queries`: full re-evaluation fallbacks per 1000 registered-query
    /// evaluations that grade `Degraded`.
    pub fallback_permille: u64,
    /// `sources`: silence episodes tolerated before `Degraded` (4x grades
    /// `Unhealthy`).
    pub silence_budget: u64,
    /// Ratio rules only fire once their denominator reaches this count.
    pub min_samples: u64,
}

impl Default for HealthThresholds {
    fn default() -> HealthThresholds {
        HealthThresholds {
            step_p99_budget_micros: 250_000,
            step_unhealthy_factor: 4,
            wal_sync_p99_budget_micros: 50_000,
            wal_unhealthy_factor: 10,
            pool_contention_permille: 100,
            pool_eviction_permille: 800,
            retransmit_permille: 100,
            fallback_permille: 900,
            silence_budget: 2,
            min_samples: 8,
        }
    }
}

fn counter(snap: &MetricsSnapshot, name: &str) -> u64 {
    snap.get(name).and_then(|s| s.as_counter()).unwrap_or(0)
}

fn histogram_p99(snap: &MetricsSnapshot, name: &str) -> Option<(u64, u64)> {
    snap.get(name)
        .and_then(|s| s.as_histogram())
        .map(|h| (h.p99, h.count))
}

/// Grades a budget rule: `Healthy` under `budget`, `Degraded` at or above it,
/// `Unhealthy` at or above `budget * factor`.
fn grade_budget(value: u64, budget: u64, factor: u64) -> HealthState {
    if value >= budget.saturating_mul(factor.max(1)) {
        HealthState::Unhealthy
    } else if value >= budget {
        HealthState::Degraded
    } else {
        HealthState::Healthy
    }
}

struct RuleSet {
    subsystems: Vec<SubsystemHealth>,
}

impl RuleSet {
    fn grade(&mut self, subsystem: &str, state: HealthState, reason: impl FnOnce() -> String) {
        let entry = match self
            .subsystems
            .iter_mut()
            .find(|s| s.subsystem == subsystem)
        {
            Some(e) => e,
            None => {
                self.subsystems.push(SubsystemHealth {
                    subsystem: subsystem.to_string(),
                    state: HealthState::Healthy,
                    reasons: Vec::new(),
                });
                self.subsystems.last_mut().expect("just pushed")
            }
        };
        if state > entry.state {
            entry.state = state;
        }
        if state > HealthState::Healthy {
            entry.reasons.push(reason());
        }
    }
}

/// Evaluates every health rule over `snap`, producing one node's
/// [`HealthSummary`] at `version` (use the node's step counter so gossip can
/// order summaries).
pub fn evaluate(
    snap: &MetricsSnapshot,
    thresholds: &HealthThresholds,
    node: u64,
    version: u64,
) -> HealthSummary {
    let t = thresholds;
    let mut rules = RuleSet {
        subsystems: Vec::new(),
    };

    // step: p99 duration of a full container step vs budget.
    let (step_p99, step_count) = histogram_p99(snap, "gsn_step_micros").unwrap_or((0, 0));
    let step_state = if step_count >= t.min_samples {
        grade_budget(step_p99, t.step_p99_budget_micros, t.step_unhealthy_factor)
    } else {
        HealthState::Healthy
    };
    rules.grade("step", step_state, || {
        format!(
            "step p99 {step_p99}us over budget {}us",
            t.step_p99_budget_micros
        )
    });

    // storage: p99 WAL fsync latency vs budget.
    let (wal_p99, wal_count) = histogram_p99(snap, "gsn_storage_wal_sync_micros").unwrap_or((0, 0));
    let wal_state = if wal_count >= t.min_samples {
        grade_budget(
            wal_p99,
            t.wal_sync_p99_budget_micros,
            t.wal_unhealthy_factor,
        )
    } else {
        HealthState::Healthy
    };
    rules.grade("storage", wal_state, || {
        format!(
            "wal fsync p99 {wal_p99}us over budget {}us",
            t.wal_sync_p99_budget_micros
        )
    });

    // pool: lock contention and eviction pressure per 1000 page requests.
    let requests = counter(snap, "gsn_storage_pool_hits_total")
        + counter(snap, "gsn_storage_pool_misses_total");
    let contended = counter(snap, "gsn_storage_pool_contended_total");
    let evictions = counter(snap, "gsn_storage_pool_evictions_total");
    let mut pool_state = HealthState::Healthy;
    let mut contention_permille = 0;
    let mut eviction_permille = 0;
    if requests >= t.min_samples {
        contention_permille = contended.saturating_mul(1000) / requests;
        eviction_permille = evictions.saturating_mul(1000) / requests;
        pool_state = grade_budget(contention_permille, t.pool_contention_permille, 4);
    }
    rules.grade("pool", pool_state, || {
        format!(
            "pool contention {contention_permille} per mille over budget {}",
            t.pool_contention_permille
        )
    });
    let eviction_state = if requests >= t.min_samples {
        grade_budget(eviction_permille, t.pool_eviction_permille, 4)
    } else {
        HealthState::Healthy
    };
    rules.grade("pool", eviction_state, || {
        format!(
            "pool eviction pressure {eviction_permille} per mille over budget {}",
            t.pool_eviction_permille
        )
    });

    // federation: retransmit ratio over all messages this node sent.
    let sent = counter(snap, "gsn_net_sent_total");
    let retransmits = counter(snap, "gsn_federation_retransmits_total");
    let mut retransmit_permille = 0;
    let federation_state = if sent >= t.min_samples {
        retransmit_permille = retransmits.saturating_mul(1000) / sent;
        grade_budget(retransmit_permille, t.retransmit_permille, 4)
    } else {
        HealthState::Healthy
    };
    rules.grade("federation", federation_state, || {
        format!(
            "retransmit ratio {retransmit_permille} per mille over budget {}",
            t.retransmit_permille
        )
    });

    // queries: continuous-query fallback ratio.
    let incremental = counter(snap, "gsn_query_incremental_total");
    let fallback = counter(snap, "gsn_query_fallback_total");
    let evaluations = incremental + fallback;
    let mut fallback_permille = 0;
    // Degraded-only: the ratio tops out at 1000 per mille, so there is no
    // meaningful "far over budget" tier.
    let queries_state = if evaluations >= t.min_samples {
        fallback_permille = fallback.saturating_mul(1000) / evaluations;
        if fallback_permille >= t.fallback_permille {
            HealthState::Degraded
        } else {
            HealthState::Healthy
        }
    } else {
        HealthState::Healthy
    };
    rules.grade("queries", queries_state, || {
        format!(
            "fallback ratio {fallback_permille} per mille over budget {}",
            t.fallback_permille
        )
    });

    // sources: silence episodes (sources that stopped producing).
    let silences = counter(snap, "gsn_step_silence_events_total");
    let sources_state = grade_budget(silences, t.silence_budget.max(1), 4);
    rules.grade("sources", sources_state, || {
        format!(
            "{silences} silence episodes over budget {}",
            t.silence_budget
        )
    });

    HealthSummary {
        node,
        version,
        subsystems: rules.subsystems,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{MetricDesc, MetricsRegistry};

    static STEP: MetricDesc = MetricDesc::histogram("gsn_step_micros", "step", "microseconds");
    static WAL: MetricDesc =
        MetricDesc::histogram("gsn_storage_wal_sync_micros", "wal", "microseconds");
    static SILENCE: MetricDesc =
        MetricDesc::counter("gsn_step_silence_events_total", "silence", "episodes");
    static SENT: MetricDesc = MetricDesc::counter("gsn_net_sent_total", "sent", "messages");
    static RETRANS: MetricDesc =
        MetricDesc::counter("gsn_federation_retransmits_total", "retrans", "messages");

    #[test]
    fn empty_snapshot_grades_all_healthy() {
        let snap = MetricsRegistry::new().snapshot();
        let summary = evaluate(&snap, &HealthThresholds::default(), 3, 17);
        assert_eq!(summary.node, 3);
        assert_eq!(summary.version, 17);
        assert_eq!(summary.worst(), HealthState::Healthy);
        assert_eq!(summary.state_of("step"), Some(HealthState::Healthy));
        assert_eq!(summary.state_of("storage"), Some(HealthState::Healthy));
        assert!(summary.subsystems.iter().all(|s| s.reasons.is_empty()));
    }

    #[test]
    fn slow_wal_fsync_degrades_storage() {
        let registry = MetricsRegistry::new();
        let wal = registry.histogram(&WAL);
        for _ in 0..16 {
            wal.record(80_000); // over the 50 ms budget, under 10x
        }
        let summary = evaluate(&registry.snapshot(), &HealthThresholds::default(), 1, 1);
        assert_eq!(summary.state_of("storage"), Some(HealthState::Degraded));
        assert_eq!(summary.worst(), HealthState::Degraded);
        let storage = summary
            .subsystems
            .iter()
            .find(|s| s.subsystem == "storage")
            .unwrap();
        assert!(storage.reasons[0].contains("wal fsync"), "{:?}", storage);
        // 10x over the budget grades Unhealthy.
        for _ in 0..32 {
            wal.record(600_000);
        }
        let summary = evaluate(&registry.snapshot(), &HealthThresholds::default(), 1, 2);
        assert_eq!(summary.state_of("storage"), Some(HealthState::Unhealthy));
        assert!(summary.render_json().contains("\"state\":\"unhealthy\""));
    }

    #[test]
    fn ratio_rules_need_min_samples() {
        let registry = MetricsRegistry::new();
        registry.counter(&SENT).add(2);
        registry.counter(&RETRANS).add(2); // 100% retransmits, but only 2 sends
        let summary = evaluate(&registry.snapshot(), &HealthThresholds::default(), 1, 1);
        assert_eq!(summary.state_of("federation"), Some(HealthState::Healthy));
        registry.counter(&SENT).add(98);
        registry.counter(&RETRANS).add(48); // 50% over 100 sends
        let summary = evaluate(&registry.snapshot(), &HealthThresholds::default(), 1, 2);
        assert_eq!(summary.state_of("federation"), Some(HealthState::Unhealthy));
    }

    #[test]
    fn silence_and_step_rules_fire() {
        let registry = MetricsRegistry::new();
        registry.counter(&SILENCE).add(3);
        let step = registry.histogram(&STEP);
        for _ in 0..16 {
            step.record(2_000_000); // 2 s steps: over 4x the 250 ms budget
        }
        let summary = evaluate(&registry.snapshot(), &HealthThresholds::default(), 1, 1);
        assert_eq!(summary.state_of("sources"), Some(HealthState::Degraded));
        assert_eq!(summary.state_of("step"), Some(HealthState::Unhealthy));
        let json = summary.render_json();
        assert!(json.contains("\"subsystem\":\"step\""));
        assert!(json.contains("silence episodes"));
    }

    #[test]
    fn health_state_wire_encoding_round_trips() {
        for state in [
            HealthState::Healthy,
            HealthState::Degraded,
            HealthState::Unhealthy,
        ] {
            assert_eq!(HealthState::from_u8(state.as_u8()), state);
        }
        assert_eq!(HealthState::from_u8(99), HealthState::Unhealthy);
        assert!(HealthState::Healthy < HealthState::Degraded);
        assert!(HealthState::Degraded < HealthState::Unhealthy);
    }
}
