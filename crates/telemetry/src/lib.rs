//! # gsn-telemetry
//!
//! The observability substrate of a GSN-RS container: a lock-cheap metrics
//! registry, log-bucketed latency histograms, a ring-buffer trace log, and a
//! threshold-gated slow-query log.
//!
//! The paper's web interface lets operators "monitor the effective status of
//! all parts of the system" (Section 6); this crate is the machine-readable
//! version of that window.  Every runtime crate records into handles created
//! here, the container aggregates them into one [`MetricsRegistry`], and the
//! registry exports both a typed [`MetricsSnapshot`] and Prometheus text
//! exposition — locally and over the federation wire, so peers can scrape each
//! other's health exactly as EMMA-style choreography assumes.
//!
//! ## Design rules
//!
//! * **Dependency-free.** Only `std`.  Every other crate links this one, so it
//!   must never pull the shim crates (or anything else) into the build graph.
//! * **Lock-free hot path.** Recording into a [`Counter`], [`Gauge`] or
//!   [`Histogram`] is a handful of relaxed atomic ops; the registry mutex is
//!   touched only at registration and snapshot time.
//! * **Zero-allocation when disabled.** [`TraceLog`] and [`SlowQueryLog`]
//!   take closures for their payloads; when tracing is off or the threshold is
//!   not crossed the closure is never called and nothing is allocated.
//!
//! ```
//! use gsn_telemetry::{MetricDesc, MetricKind, MetricsRegistry};
//!
//! static STEPS: MetricDesc = MetricDesc::counter("demo_steps_total", "Steps executed", "steps");
//! static LAT: MetricDesc =
//!     MetricDesc::histogram("demo_step_micros", "Step latency", "microseconds");
//!
//! let registry = MetricsRegistry::new();
//! let steps = registry.counter(&STEPS);
//! let lat = registry.histogram(&LAT);
//! steps.inc();
//! lat.record(120);
//! let snap = registry.snapshot();
//! assert_eq!(snap.get("demo_steps_total").unwrap().as_counter(), Some(1));
//! assert!(snap.render_prometheus().contains("demo_step_micros"));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod health;
pub mod metrics;
pub mod trace;

pub use health::{evaluate, HealthState, HealthSummary, HealthThresholds, SubsystemHealth};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSummary, MetricDesc, MetricKind, MetricSample,
    MetricsRegistry, MetricsSnapshot, SampleValue, Stopwatch,
};
pub use trace::{
    AssembledTrace, HopBreakdown, RemoteSpan, SlowQuery, SlowQueryLog, SpanId, SpanToken,
    TraceContext, TraceLog, TraceSpan, TraceTree, DEFAULT_SLOW_QUERY_CAPACITY,
    DEFAULT_TRACE_CAPACITY,
};
