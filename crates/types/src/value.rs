//! Dynamic values and the GSN field type system.
//!
//! Virtual sensor output structures declare their fields with a type
//! (`<field name="TEMPERATURE" type="integer"/>`).  Wrapper payloads, SQL expressions and
//! stream elements all carry values of these types.  The type lattice is deliberately
//! small — the original GSN used the JDBC type system; we keep the subset that the paper's
//! descriptors and experiments exercise: integers, doubles, strings, booleans, binary
//! payloads (camera images) and NULL.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::error::GsnError;
use crate::time::Timestamp;

/// The declared type of a stream field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit signed integer (`integer`, `bigint`, `int` in descriptors).
    Integer,
    /// 64-bit IEEE float (`double`, `numeric`).
    Double,
    /// UTF-8 string (`varchar`, `string`).
    Varchar,
    /// Boolean (`boolean`, `bool`).
    Boolean,
    /// Opaque binary payload (`binary`, `blob`) — e.g. a camera frame.
    Binary,
    /// Millisecond timestamp (`timestamp`, `time`).
    Timestamp,
}

impl DataType {
    /// Parses a descriptor type name, case-insensitively.
    ///
    /// Unknown names produce an error so that a typo in a deployment descriptor is caught
    /// at deployment time, mirroring GSN's descriptor validation.
    pub fn parse(name: &str) -> Result<DataType, GsnError> {
        match name.trim().to_ascii_lowercase().as_str() {
            "integer" | "int" | "bigint" | "smallint" | "tinyint" => Ok(DataType::Integer),
            "double" | "numeric" | "float" | "real" | "decimal" => Ok(DataType::Double),
            "varchar" | "string" | "char" | "text" => Ok(DataType::Varchar),
            "boolean" | "bool" | "bit" => Ok(DataType::Boolean),
            "binary" | "blob" | "varbinary" | "image" => Ok(DataType::Binary),
            "timestamp" | "time" | "datetime" => Ok(DataType::Timestamp),
            other => Err(GsnError::descriptor(format!(
                "unknown field type `{other}`"
            ))),
        }
    }

    /// The canonical descriptor spelling of this type.
    pub fn canonical_name(self) -> &'static str {
        match self {
            DataType::Integer => "integer",
            DataType::Double => "double",
            DataType::Varchar => "varchar",
            DataType::Boolean => "boolean",
            DataType::Binary => "binary",
            DataType::Timestamp => "timestamp",
        }
    }

    /// True when values of this type are numeric (usable in arithmetic and AVG/SUM).
    pub fn is_numeric(self) -> bool {
        matches!(
            self,
            DataType::Integer | DataType::Double | DataType::Timestamp
        )
    }

    /// The common supertype two operand types promote to in arithmetic, if any.
    pub fn numeric_promotion(self, other: DataType) -> Option<DataType> {
        use DataType::*;
        match (self, other) {
            (Integer, Integer) => Some(Integer),
            (Timestamp, Timestamp) => Some(Integer),
            (Integer, Timestamp) | (Timestamp, Integer) => Some(Integer),
            (Double, d) | (d, Double) if d.is_numeric() => Some(Double),
            _ => None,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.canonical_name())
    }
}

/// A dynamically typed value flowing through the middleware.
///
/// Binary payloads are reference counted so that a 75 KB camera frame fanned out to 500
/// subscribers is shared, not copied — the cost model of the paper's Figure 4 experiment
/// depends on the per-element processing, not on artificial copies.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub enum Value {
    /// SQL NULL / missing reading.
    #[default]
    Null,
    /// 64-bit integer.
    Integer(i64),
    /// 64-bit float.
    Double(f64),
    /// UTF-8 string.
    Varchar(String),
    /// Boolean.
    Boolean(bool),
    /// Shared binary payload.
    Binary(Arc<Vec<u8>>),
    /// Millisecond timestamp.
    Timestamp(Timestamp),
}

impl Value {
    /// Builds a binary value from a byte vector.
    pub fn binary(bytes: Vec<u8>) -> Value {
        Value::Binary(Arc::new(bytes))
    }

    /// Builds a varchar value from anything string-like.
    pub fn varchar(s: impl Into<String>) -> Value {
        Value::Varchar(s.into())
    }

    /// True when the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The runtime type of the value, or `None` for NULL (which is typeless).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Integer(_) => Some(DataType::Integer),
            Value::Double(_) => Some(DataType::Double),
            Value::Varchar(_) => Some(DataType::Varchar),
            Value::Boolean(_) => Some(DataType::Boolean),
            Value::Binary(_) => Some(DataType::Binary),
            Value::Timestamp(_) => Some(DataType::Timestamp),
        }
    }

    /// Interprets the value as an integer if possible (integers, timestamps, exact doubles,
    /// booleans).
    pub fn as_integer(&self) -> Option<i64> {
        match self {
            Value::Integer(i) => Some(*i),
            Value::Timestamp(t) => Some(t.as_millis()),
            Value::Double(d) if d.fract() == 0.0 && d.is_finite() => Some(*d as i64),
            Value::Boolean(b) => Some(i64::from(*b)),
            _ => None,
        }
    }

    /// Interprets the value as a float if it is numeric.
    pub fn as_double(&self) -> Option<f64> {
        match self {
            Value::Integer(i) => Some(*i as f64),
            Value::Double(d) => Some(*d),
            Value::Timestamp(t) => Some(t.as_millis() as f64),
            Value::Boolean(b) => Some(f64::from(u8::from(*b))),
            _ => None,
        }
    }

    /// Interprets the value as a boolean (SQL three-valued logic handled by callers).
    pub fn as_boolean(&self) -> Option<bool> {
        match self {
            Value::Boolean(b) => Some(*b),
            Value::Integer(i) => Some(*i != 0),
            _ => None,
        }
    }

    /// Borrows the value as a string slice if it is a varchar.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Varchar(s) => Some(s),
            _ => None,
        }
    }

    /// Borrows the value as binary bytes if it is a binary payload.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Binary(b) => Some(b),
            _ => None,
        }
    }

    /// Interprets the value as a timestamp (timestamps and integers).
    pub fn as_timestamp(&self) -> Option<Timestamp> {
        match self {
            Value::Timestamp(t) => Some(*t),
            Value::Integer(i) => Some(Timestamp::from_millis(*i)),
            _ => None,
        }
    }

    /// The wire/storage size of this value in bytes, used by storage statistics and the
    /// stream-element-size accounting of the Figure 3 / Figure 4 experiments.
    pub fn size_bytes(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Integer(_) | Value::Timestamp(_) | Value::Double(_) => 8,
            Value::Boolean(_) => 1,
            Value::Varchar(s) => s.len(),
            Value::Binary(b) => b.len(),
        }
    }

    /// Attempts to coerce the value to a declared field type.
    ///
    /// This is used when a wrapper's payload is bound to an `<output-structure>` field and
    /// when SQL inserts results into a typed temporary relation.  NULL coerces to every
    /// type.  Lossy or impossible coercions produce an error.
    pub fn coerce_to(&self, ty: DataType) -> Result<Value, GsnError> {
        if self.is_null() {
            return Ok(Value::Null);
        }
        let fail = || {
            GsnError::type_error(format!(
                "cannot coerce {} value `{}` to {}",
                self.data_type()
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "null".into()),
                self,
                ty
            ))
        };
        match ty {
            DataType::Integer => self.as_integer().map(Value::Integer).ok_or_else(fail),
            DataType::Double => self.as_double().map(Value::Double).ok_or_else(fail),
            DataType::Boolean => self.as_boolean().map(Value::Boolean).ok_or_else(fail),
            DataType::Timestamp => self.as_timestamp().map(Value::Timestamp).ok_or_else(fail),
            DataType::Varchar => match self {
                Value::Varchar(_) => Ok(self.clone()),
                Value::Binary(_) => Err(fail()),
                other => Ok(Value::Varchar(other.to_string())),
            },
            DataType::Binary => match self {
                Value::Binary(_) => Ok(self.clone()),
                Value::Varchar(s) => Ok(Value::binary(s.clone().into_bytes())),
                _ => Err(fail()),
            },
        }
    }

    /// SQL comparison: returns `None` when either side is NULL or the values are not
    /// comparable (e.g. a string against a binary payload).
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Varchar(a), Varchar(b)) => Some(a.cmp(b)),
            (Boolean(a), Boolean(b)) => Some(a.cmp(b)),
            (Binary(a), Binary(b)) => Some(a.cmp(b)),
            (a, b) => {
                let (x, y) = (a.as_double()?, b.as_double()?);
                x.partial_cmp(&y)
            }
        }
    }

    /// SQL equality (NULL never equals anything, including NULL).
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.sql_cmp(other).map(|o| o == Ordering::Equal)
    }
}

impl PartialEq for Value {
    /// Structural equality used by tests and collections.  Unlike [`Value::sql_eq`], two
    /// NULLs compare equal here and numeric values of different types compare by value.
    fn eq(&self, other: &Self) -> bool {
        use Value::*;
        match (self, other) {
            (Null, Null) => true,
            (Varchar(a), Varchar(b)) => a == b,
            (Boolean(a), Boolean(b)) => a == b,
            (Binary(a), Binary(b)) => a == b,
            (Integer(a), Integer(b)) => a == b,
            (Timestamp(a), Timestamp(b)) => a == b,
            (Double(a), Double(b)) => a == b || (a.is_nan() && b.is_nan()),
            (a, b) => match (a.as_double(), b.as_double()) {
                (Some(x), Some(y)) => x == y,
                _ => false,
            },
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Integer(i) => write!(f, "{i}"),
            Value::Double(d) => write!(f, "{d}"),
            Value::Varchar(s) => f.write_str(s),
            Value::Boolean(b) => write!(f, "{b}"),
            Value::Binary(b) => write!(f, "<binary {} bytes>", b.len()),
            Value::Timestamp(t) => write!(f, "{}", t.as_millis()),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Integer(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Integer(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Boolean(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Varchar(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Varchar(v)
    }
}
impl From<Timestamp> for Value {
    fn from(v: Timestamp) -> Self {
        Value::Timestamp(v)
    }
}
impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value::binary(v)
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        match v {
            Some(inner) => inner.into(),
            None => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datatype_parse_accepts_descriptor_names() {
        assert_eq!(DataType::parse("integer").unwrap(), DataType::Integer);
        assert_eq!(DataType::parse("INT").unwrap(), DataType::Integer);
        assert_eq!(DataType::parse("Double").unwrap(), DataType::Double);
        assert_eq!(DataType::parse("varchar").unwrap(), DataType::Varchar);
        assert_eq!(DataType::parse(" text ").unwrap(), DataType::Varchar);
        assert_eq!(DataType::parse("blob").unwrap(), DataType::Binary);
        assert_eq!(DataType::parse("timestamp").unwrap(), DataType::Timestamp);
        assert_eq!(DataType::parse("bool").unwrap(), DataType::Boolean);
        assert!(DataType::parse("complex").is_err());
    }

    #[test]
    fn datatype_canonical_name_round_trips() {
        for ty in [
            DataType::Integer,
            DataType::Double,
            DataType::Varchar,
            DataType::Boolean,
            DataType::Binary,
            DataType::Timestamp,
        ] {
            assert_eq!(DataType::parse(ty.canonical_name()).unwrap(), ty);
        }
    }

    #[test]
    fn numeric_promotion_rules() {
        assert_eq!(
            DataType::Integer.numeric_promotion(DataType::Integer),
            Some(DataType::Integer)
        );
        assert_eq!(
            DataType::Integer.numeric_promotion(DataType::Double),
            Some(DataType::Double)
        );
        assert_eq!(
            DataType::Timestamp.numeric_promotion(DataType::Integer),
            Some(DataType::Integer)
        );
        assert_eq!(DataType::Varchar.numeric_promotion(DataType::Integer), None);
        assert_eq!(DataType::Double.numeric_promotion(DataType::Binary), None);
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Integer(4).as_integer(), Some(4));
        assert_eq!(Value::Double(4.0).as_integer(), Some(4));
        assert_eq!(Value::Double(4.5).as_integer(), None);
        assert_eq!(Value::Boolean(true).as_integer(), Some(1));
        assert_eq!(Value::Integer(3).as_double(), Some(3.0));
        assert_eq!(Value::varchar("x").as_str(), Some("x"));
        assert_eq!(Value::binary(vec![1, 2]).as_bytes(), Some(&[1u8, 2][..]));
        assert_eq!(
            Value::Integer(99).as_timestamp(),
            Some(Timestamp::from_millis(99))
        );
        assert!(Value::Null.is_null());
        assert_eq!(Value::Null.data_type(), None);
    }

    #[test]
    fn value_sizes_reflect_payloads() {
        assert_eq!(Value::Integer(1).size_bytes(), 8);
        assert_eq!(Value::varchar("abcd").size_bytes(), 4);
        assert_eq!(Value::binary(vec![0; 1024]).size_bytes(), 1024);
        assert_eq!(Value::Null.size_bytes(), 1);
        assert_eq!(Value::Boolean(true).size_bytes(), 1);
    }

    #[test]
    fn coercion_to_declared_types() {
        assert_eq!(
            Value::Double(3.0).coerce_to(DataType::Integer).unwrap(),
            Value::Integer(3)
        );
        assert_eq!(
            Value::Integer(3).coerce_to(DataType::Double).unwrap(),
            Value::Double(3.0)
        );
        assert_eq!(
            Value::Integer(1).coerce_to(DataType::Boolean).unwrap(),
            Value::Boolean(true)
        );
        assert_eq!(
            Value::Integer(5).coerce_to(DataType::Varchar).unwrap(),
            Value::varchar("5")
        );
        assert_eq!(
            Value::Null.coerce_to(DataType::Binary).unwrap(),
            Value::Null
        );
        assert!(Value::varchar("abc").coerce_to(DataType::Integer).is_err());
        assert!(Value::binary(vec![1]).coerce_to(DataType::Double).is_err());
        assert!(Value::Double(2.5).coerce_to(DataType::Integer).is_err());
    }

    #[test]
    fn sql_comparison_semantics() {
        assert_eq!(
            Value::Integer(3).sql_cmp(&Value::Double(3.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Integer(2).sql_cmp(&Value::Integer(5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::varchar("a").sql_cmp(&Value::varchar("b")),
            Some(Ordering::Less)
        );
        assert_eq!(Value::Null.sql_cmp(&Value::Integer(1)), None);
        assert_eq!(Value::Integer(1).sql_cmp(&Value::Null), None);
        assert_eq!(Value::varchar("1").sql_cmp(&Value::Integer(1)), None);
        assert_eq!(Value::Null.sql_eq(&Value::Null), None);
        assert_eq!(Value::Integer(1).sql_eq(&Value::Integer(1)), Some(true));
    }

    #[test]
    fn structural_equality_differs_from_sql_equality() {
        assert_eq!(Value::Null, Value::Null);
        assert_eq!(Value::Integer(1), Value::Double(1.0));
        assert_eq!(Value::Double(f64::NAN), Value::Double(f64::NAN));
        assert_ne!(Value::varchar("1"), Value::Integer(1));
    }

    #[test]
    fn from_conversions() {
        assert_eq!(Value::from(3i32), Value::Integer(3));
        assert_eq!(Value::from(3i64), Value::Integer(3));
        assert_eq!(Value::from(2.5), Value::Double(2.5));
        assert_eq!(Value::from("hi"), Value::varchar("hi"));
        assert_eq!(Value::from(true), Value::Boolean(true));
        assert_eq!(Value::from(Some(7i64)), Value::Integer(7));
        assert_eq!(Value::from(Option::<i64>::None), Value::Null);
        assert_eq!(Value::from(vec![1u8, 2]), Value::binary(vec![1, 2]));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Integer(-4).to_string(), "-4");
        assert_eq!(Value::varchar("x").to_string(), "x");
        assert_eq!(Value::binary(vec![0; 3]).to_string(), "<binary 3 bytes>");
    }

    #[test]
    fn binary_values_share_storage() {
        let v = Value::binary(vec![0u8; 4096]);
        let w = v.clone();
        match (&v, &w) {
            (Value::Binary(a), Value::Binary(b)) => assert!(Arc::ptr_eq(a, b)),
            _ => unreachable!(),
        }
    }
}
