//! The workspace-wide error type.
//!
//! GSN distinguishes deployment-time problems (bad descriptors, unknown wrappers, name
//! clashes) from run-time problems (SQL errors, storage failures, disconnections).  The
//! single [`GsnError`] enum keeps error handling uniform across crates while still letting
//! callers branch on the category — the container, for example, retries `Disconnected`
//! stream sources but permanently rejects `Descriptor` errors.

use std::fmt;

/// Convenience alias used throughout the workspace.
pub type GsnResult<T> = Result<T, GsnError>;

/// The category and message of a GSN-RS failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GsnError {
    /// A deployment descriptor is syntactically or semantically invalid.
    Descriptor(String),
    /// An XML document could not be parsed.
    Xml(String),
    /// A SQL query could not be lexed, parsed or planned.
    SqlParse(String),
    /// A SQL query failed during execution.
    SqlExecution(String),
    /// A value could not be coerced to the required type.
    Type(String),
    /// A referenced entity (virtual sensor, field, wrapper, node) does not exist.
    NotFound(String),
    /// An entity with the same name already exists.
    AlreadyExists(String),
    /// A stream source or remote peer is currently unreachable.
    Disconnected(String),
    /// The caller is not authorised to perform the operation.
    AccessDenied(String),
    /// A message failed its integrity check.
    IntegrityViolation(String),
    /// Storage-layer failure (window overflow, retention misconfiguration, ...).
    Storage(String),
    /// The container or one of its services is shutting down.
    ShuttingDown(String),
    /// Resource limits exceeded (pool exhausted, queue full, rate bound hit).
    ResourceExhausted(String),
    /// Configuration error outside descriptors (container/network settings).
    Config(String),
    /// Anything else.
    Internal(String),
}

impl GsnError {
    /// Builds a [`GsnError::Descriptor`].
    pub fn descriptor(msg: impl Into<String>) -> GsnError {
        GsnError::Descriptor(msg.into())
    }
    /// Builds a [`GsnError::Xml`].
    pub fn xml(msg: impl Into<String>) -> GsnError {
        GsnError::Xml(msg.into())
    }
    /// Builds a [`GsnError::SqlParse`].
    pub fn sql_parse(msg: impl Into<String>) -> GsnError {
        GsnError::SqlParse(msg.into())
    }
    /// Builds a [`GsnError::SqlExecution`].
    pub fn sql_exec(msg: impl Into<String>) -> GsnError {
        GsnError::SqlExecution(msg.into())
    }
    /// Builds a [`GsnError::Type`].
    pub fn type_error(msg: impl Into<String>) -> GsnError {
        GsnError::Type(msg.into())
    }
    /// Builds a [`GsnError::NotFound`].
    pub fn not_found(msg: impl Into<String>) -> GsnError {
        GsnError::NotFound(msg.into())
    }
    /// Builds a [`GsnError::AlreadyExists`].
    pub fn already_exists(msg: impl Into<String>) -> GsnError {
        GsnError::AlreadyExists(msg.into())
    }
    /// Builds a [`GsnError::Disconnected`].
    pub fn disconnected(msg: impl Into<String>) -> GsnError {
        GsnError::Disconnected(msg.into())
    }
    /// Builds a [`GsnError::AccessDenied`].
    pub fn access_denied(msg: impl Into<String>) -> GsnError {
        GsnError::AccessDenied(msg.into())
    }
    /// Builds a [`GsnError::IntegrityViolation`].
    pub fn integrity(msg: impl Into<String>) -> GsnError {
        GsnError::IntegrityViolation(msg.into())
    }
    /// Builds a [`GsnError::Storage`].
    pub fn storage(msg: impl Into<String>) -> GsnError {
        GsnError::Storage(msg.into())
    }
    /// Builds a [`GsnError::ShuttingDown`].
    pub fn shutting_down(msg: impl Into<String>) -> GsnError {
        GsnError::ShuttingDown(msg.into())
    }
    /// Builds a [`GsnError::ResourceExhausted`].
    pub fn resource_exhausted(msg: impl Into<String>) -> GsnError {
        GsnError::ResourceExhausted(msg.into())
    }
    /// Builds a [`GsnError::Config`].
    pub fn config(msg: impl Into<String>) -> GsnError {
        GsnError::Config(msg.into())
    }
    /// Builds a [`GsnError::Internal`].
    pub fn internal(msg: impl Into<String>) -> GsnError {
        GsnError::Internal(msg.into())
    }

    /// A short, stable name for the error category (used in status reports and logs).
    pub fn category(&self) -> &'static str {
        match self {
            GsnError::Descriptor(_) => "descriptor",
            GsnError::Xml(_) => "xml",
            GsnError::SqlParse(_) => "sql-parse",
            GsnError::SqlExecution(_) => "sql-execution",
            GsnError::Type(_) => "type",
            GsnError::NotFound(_) => "not-found",
            GsnError::AlreadyExists(_) => "already-exists",
            GsnError::Disconnected(_) => "disconnected",
            GsnError::AccessDenied(_) => "access-denied",
            GsnError::IntegrityViolation(_) => "integrity",
            GsnError::Storage(_) => "storage",
            GsnError::ShuttingDown(_) => "shutting-down",
            GsnError::ResourceExhausted(_) => "resource-exhausted",
            GsnError::Config(_) => "config",
            GsnError::Internal(_) => "internal",
        }
    }

    /// The human-readable message.
    pub fn message(&self) -> &str {
        match self {
            GsnError::Descriptor(m)
            | GsnError::Xml(m)
            | GsnError::SqlParse(m)
            | GsnError::SqlExecution(m)
            | GsnError::Type(m)
            | GsnError::NotFound(m)
            | GsnError::AlreadyExists(m)
            | GsnError::Disconnected(m)
            | GsnError::AccessDenied(m)
            | GsnError::IntegrityViolation(m)
            | GsnError::Storage(m)
            | GsnError::ShuttingDown(m)
            | GsnError::ResourceExhausted(m)
            | GsnError::Config(m)
            | GsnError::Internal(m) => m,
        }
    }

    /// True when retrying the operation later may succeed (transient conditions).
    ///
    /// The input stream manager uses this to decide whether to buffer elements for a
    /// source (disconnections, resource exhaustion) or to drop the source permanently
    /// (descriptor or type errors).
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            GsnError::Disconnected(_) | GsnError::ResourceExhausted(_) | GsnError::ShuttingDown(_)
        )
    }
}

impl fmt::Display for GsnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.category(), self.message())
    }
}

impl std::error::Error for GsnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_category_and_message() {
        let cases: Vec<(GsnError, &str)> = vec![
            (GsnError::descriptor("d"), "descriptor"),
            (GsnError::xml("x"), "xml"),
            (GsnError::sql_parse("p"), "sql-parse"),
            (GsnError::sql_exec("e"), "sql-execution"),
            (GsnError::type_error("t"), "type"),
            (GsnError::not_found("n"), "not-found"),
            (GsnError::already_exists("a"), "already-exists"),
            (GsnError::disconnected("dc"), "disconnected"),
            (GsnError::access_denied("ad"), "access-denied"),
            (GsnError::integrity("i"), "integrity"),
            (GsnError::storage("s"), "storage"),
            (GsnError::shutting_down("sd"), "shutting-down"),
            (GsnError::resource_exhausted("r"), "resource-exhausted"),
            (GsnError::config("c"), "config"),
            (GsnError::internal("z"), "internal"),
        ];
        for (err, cat) in cases {
            assert_eq!(err.category(), cat);
            assert!(!err.message().is_empty());
            assert!(err.to_string().contains(cat));
        }
    }

    #[test]
    fn transient_classification() {
        assert!(GsnError::disconnected("x").is_transient());
        assert!(GsnError::resource_exhausted("x").is_transient());
        assert!(GsnError::shutting_down("x").is_transient());
        assert!(!GsnError::descriptor("x").is_transient());
        assert!(!GsnError::sql_parse("x").is_transient());
        assert!(!GsnError::integrity("x").is_transient());
    }

    #[test]
    fn error_trait_object_usable() {
        let e: Box<dyn std::error::Error> = Box::new(GsnError::internal("boom"));
        assert!(e.to_string().contains("boom"));
    }
}
