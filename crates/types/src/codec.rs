//! Binary encoding of values, rows and schemas for the persistent storage engine.
//!
//! The page-based storage layer (`gsn-storage`) stores stream elements as flat byte
//! records inside fixed-size pages and in the write-ahead log.  This module defines that
//! record format in one place so that pages, the WAL and recovery all agree:
//!
//! * **value**: one tag byte followed by a type-specific payload (little-endian scalars,
//!   length-prefixed strings/blobs),
//! * **row**: sequence number, timestamps and the value vector of one [`StreamElement`]
//!   (the schema itself is *not* repeated per row — it is stored once in the table file
//!   header via [`encode_schema`]),
//! * **schema**: length-prefixed `(name, type)` pairs.
//!
//! The format is self-delimiting: every decode consumes exactly the bytes its encode
//! produced, so records can be packed back to back in a page without padding.

use std::sync::Arc;

use crate::element::StreamElement;
use crate::error::{GsnError, GsnResult};
use crate::schema::StreamSchema;
use crate::time::Timestamp;
use crate::value::{DataType, Value};

const TAG_NULL: u8 = 0;
const TAG_INTEGER: u8 = 1;
const TAG_DOUBLE: u8 = 2;
const TAG_VARCHAR: u8 = 3;
const TAG_BOOLEAN_FALSE: u8 = 4;
const TAG_BOOLEAN_TRUE: u8 = 5;
const TAG_BINARY: u8 = 6;
const TAG_TIMESTAMP: u8 = 7;

fn truncated(what: &str) -> GsnError {
    GsnError::storage(format!("corrupt record: truncated {what}"))
}

fn take<'a>(buf: &mut &'a [u8], n: usize, what: &str) -> GsnResult<&'a [u8]> {
    if buf.len() < n {
        return Err(truncated(what));
    }
    let (head, tail) = buf.split_at(n);
    *buf = tail;
    Ok(head)
}

fn read_u8(buf: &mut &[u8], what: &str) -> GsnResult<u8> {
    Ok(take(buf, 1, what)?[0])
}

fn read_u32(buf: &mut &[u8], what: &str) -> GsnResult<u32> {
    Ok(u32::from_le_bytes(take(buf, 4, what)?.try_into().unwrap()))
}

fn read_u64(buf: &mut &[u8], what: &str) -> GsnResult<u64> {
    Ok(u64::from_le_bytes(take(buf, 8, what)?.try_into().unwrap()))
}

fn read_i64(buf: &mut &[u8], what: &str) -> GsnResult<i64> {
    Ok(i64::from_le_bytes(take(buf, 8, what)?.try_into().unwrap()))
}

fn write_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
}

fn read_bytes<'a>(buf: &mut &'a [u8], what: &str) -> GsnResult<&'a [u8]> {
    let len = read_u32(buf, what)? as usize;
    take(buf, len, what)
}

/// Appends the binary encoding of one value to `out`.
pub fn encode_value(out: &mut Vec<u8>, value: &Value) {
    match value {
        Value::Null => out.push(TAG_NULL),
        Value::Integer(i) => {
            out.push(TAG_INTEGER);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Double(d) => {
            out.push(TAG_DOUBLE);
            out.extend_from_slice(&d.to_bits().to_le_bytes());
        }
        Value::Varchar(s) => {
            out.push(TAG_VARCHAR);
            write_bytes(out, s.as_bytes());
        }
        Value::Boolean(b) => out.push(if *b {
            TAG_BOOLEAN_TRUE
        } else {
            TAG_BOOLEAN_FALSE
        }),
        Value::Binary(b) => {
            out.push(TAG_BINARY);
            write_bytes(out, b);
        }
        Value::Timestamp(t) => {
            out.push(TAG_TIMESTAMP);
            out.extend_from_slice(&t.as_millis().to_le_bytes());
        }
    }
}

/// Decodes one value, advancing `buf` past it.
pub fn decode_value(buf: &mut &[u8]) -> GsnResult<Value> {
    let tag = read_u8(buf, "value tag")?;
    Ok(match tag {
        TAG_NULL => Value::Null,
        TAG_INTEGER => Value::Integer(read_i64(buf, "integer")?),
        TAG_DOUBLE => Value::Double(f64::from_bits(read_u64(buf, "double")?)),
        TAG_VARCHAR => {
            let bytes = read_bytes(buf, "varchar")?;
            Value::Varchar(
                String::from_utf8(bytes.to_vec())
                    .map_err(|_| GsnError::storage("corrupt record: invalid UTF-8 varchar"))?,
            )
        }
        TAG_BOOLEAN_FALSE => Value::Boolean(false),
        TAG_BOOLEAN_TRUE => Value::Boolean(true),
        TAG_BINARY => Value::binary(read_bytes(buf, "binary")?.to_vec()),
        TAG_TIMESTAMP => Value::Timestamp(Timestamp::from_millis(read_i64(buf, "timestamp")?)),
        other => {
            return Err(GsnError::storage(format!(
                "corrupt record: unknown value tag {other}"
            )))
        }
    })
}

/// Encodes the row portion of a stream element (sequence, timestamps, values).
///
/// The element's schema is intentionally not included; rows are decoded against the
/// table schema stored once in the file header ([`decode_row`]).
pub fn encode_row(element: &StreamElement) -> Vec<u8> {
    let mut out = Vec::with_capacity(32 + element.size_bytes());
    out.extend_from_slice(&element.sequence().to_le_bytes());
    out.extend_from_slice(&element.timestamp().as_millis().to_le_bytes());
    match element.produced_at() {
        Some(p) => {
            out.push(1);
            out.extend_from_slice(&p.as_millis().to_le_bytes());
        }
        None => out.push(0),
    }
    out.extend_from_slice(&(element.values().len() as u32).to_le_bytes());
    for value in element.values() {
        encode_value(&mut out, value);
    }
    out
}

/// Decodes one row against `schema`, advancing `buf` past it.
pub fn decode_row(buf: &mut &[u8], schema: &Arc<StreamSchema>) -> GsnResult<StreamElement> {
    let sequence = read_u64(buf, "sequence")?;
    let timestamp = Timestamp::from_millis(read_i64(buf, "row timestamp")?);
    let produced_at = match read_u8(buf, "produced-at flag")? {
        0 => None,
        1 => Some(Timestamp::from_millis(read_i64(buf, "produced-at")?)),
        other => {
            return Err(GsnError::storage(format!(
                "corrupt record: invalid produced-at flag {other}"
            )))
        }
    };
    let count = read_u32(buf, "value count")? as usize;
    if count != schema.len() {
        return Err(GsnError::storage(format!(
            "corrupt record: row has {count} values, table schema has {}",
            schema.len()
        )));
    }
    let mut values = Vec::with_capacity(count);
    for _ in 0..count {
        values.push(decode_value(buf)?);
    }
    let mut element =
        StreamElement::new_unchecked(Arc::clone(schema), values, timestamp).with_sequence(sequence);
    if let Some(p) = produced_at {
        element = element.with_produced_at(p);
    }
    Ok(element)
}

/// Encodes a schema as length-prefixed `(name, canonical type name)` pairs.
pub fn encode_schema(schema: &StreamSchema) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(schema.len() as u32).to_le_bytes());
    for field in schema.fields() {
        write_bytes(&mut out, field.name.as_str().as_bytes());
        write_bytes(&mut out, field.data_type.canonical_name().as_bytes());
    }
    out
}

/// Decodes a schema written by [`encode_schema`], advancing `buf` past it.
pub fn decode_schema(buf: &mut &[u8]) -> GsnResult<StreamSchema> {
    let count = read_u32(buf, "schema field count")? as usize;
    let mut pairs: Vec<(String, DataType)> = Vec::with_capacity(count);
    for _ in 0..count {
        let name = String::from_utf8(read_bytes(buf, "field name")?.to_vec())
            .map_err(|_| GsnError::storage("corrupt schema: invalid UTF-8 field name"))?;
        let type_name = String::from_utf8(read_bytes(buf, "field type")?.to_vec())
            .map_err(|_| GsnError::storage("corrupt schema: invalid UTF-8 type name"))?;
        pairs.push((name, DataType::parse(&type_name)?));
    }
    let borrowed: Vec<(&str, DataType)> = pairs.iter().map(|(n, t)| (n.as_str(), *t)).collect();
    StreamSchema::from_pairs(&borrowed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    fn schema() -> Arc<StreamSchema> {
        Arc::new(
            StreamSchema::from_pairs(&[
                ("temperature", DataType::Integer),
                ("room", DataType::Varchar),
                ("frame", DataType::Binary),
                ("ok", DataType::Boolean),
                ("light", DataType::Double),
                ("seen", DataType::Timestamp),
                ("missing", DataType::Varchar),
            ])
            .unwrap(),
        )
    }

    fn sample() -> StreamElement {
        StreamElement::new(
            schema(),
            vec![
                Value::Integer(-21),
                Value::varchar("bc143"),
                Value::binary(vec![0, 1, 2, 255]),
                Value::Boolean(true),
                Value::Double(444.5),
                Value::Timestamp(Timestamp(99)),
                Value::Null,
            ],
            Timestamp(1_234),
        )
        .unwrap()
        .with_sequence(77)
        .with_produced_at(Timestamp(1_200))
    }

    #[test]
    fn values_round_trip() {
        for value in [
            Value::Null,
            Value::Integer(i64::MIN),
            Value::Integer(i64::MAX),
            Value::Double(f64::NAN),
            Value::Double(-0.0),
            Value::varchar(""),
            Value::varchar("héllo wörld"),
            Value::Boolean(false),
            Value::Boolean(true),
            Value::binary(vec![]),
            Value::binary(vec![7; 10_000]),
            Value::Timestamp(Timestamp(i64::MAX)),
        ] {
            let mut out = Vec::new();
            encode_value(&mut out, &value);
            let mut cursor: &[u8] = &out;
            let decoded = decode_value(&mut cursor).unwrap();
            assert_eq!(decoded, value);
            assert!(cursor.is_empty(), "undrained bytes for {value:?}");
        }
    }

    #[test]
    fn rows_round_trip_with_metadata() {
        let element = sample();
        let bytes = encode_row(&element);
        let mut cursor: &[u8] = &bytes;
        let decoded = decode_row(&mut cursor, &schema()).unwrap();
        assert!(cursor.is_empty());
        assert_eq!(decoded, element);
        assert_eq!(decoded.sequence(), 77);
        assert_eq!(decoded.produced_at(), Some(Timestamp(1_200)));
        assert_eq!(decoded.observation_delay(), Some(Duration(34)));
    }

    #[test]
    fn rows_are_self_delimiting() {
        let a = sample();
        let b = sample().with_sequence(78);
        let mut bytes = encode_row(&a);
        bytes.extend_from_slice(&encode_row(&b));
        let mut cursor: &[u8] = &bytes;
        assert_eq!(decode_row(&mut cursor, &schema()).unwrap().sequence(), 77);
        assert_eq!(decode_row(&mut cursor, &schema()).unwrap().sequence(), 78);
        assert!(cursor.is_empty());
    }

    #[test]
    fn schema_round_trips() {
        let s = schema();
        let bytes = encode_schema(&s);
        let mut cursor: &[u8] = &bytes;
        let decoded = decode_schema(&mut cursor).unwrap();
        assert!(cursor.is_empty());
        assert_eq!(&decoded, s.as_ref());
    }

    #[test]
    fn corrupt_input_is_rejected_not_panicked() {
        // Truncations at every prefix length must error cleanly.
        let bytes = encode_row(&sample());
        for cut in 0..bytes.len() {
            let mut cursor = &bytes[..cut];
            assert!(decode_row(&mut cursor, &schema()).is_err(), "cut at {cut}");
        }
        // Unknown tag.
        let mut cursor: &[u8] = &[200];
        assert!(decode_value(&mut cursor).is_err());
        // Arity mismatch.
        let narrow = Arc::new(StreamSchema::from_pairs(&[("x", DataType::Integer)]).unwrap());
        let mut cursor: &[u8] = &bytes;
        assert!(decode_row(&mut cursor, &narrow).is_err());
    }
}
