//! A minimal JSON writer.
//!
//! The benchmark harnesses write machine-readable result files (one per reproduced figure)
//! so that EXPERIMENTS.md can be regenerated and results can be plotted externally.  Only
//! serialisation is needed and the value tree is small, so a dependency-free writer keeps
//! the workspace within the approved offline crate set.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value tree (serialisation only).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any finite number.  Non-finite floats serialise as `null` per RFC 8259.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with deterministically ordered (sorted) keys.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn object(pairs: Vec<(&str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Builds an array.
    pub fn array(items: Vec<Json>) -> Json {
        Json::Array(items)
    }

    /// Builds a string value.
    pub fn string(s: impl Into<String>) -> Json {
        Json::String(s.into())
    }

    /// Builds a number value.
    pub fn number(n: impl Into<f64>) -> Json {
        Json::Number(n.into())
    }

    /// Serialises the value compactly.
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialises the value with two-space indentation.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(n) => {
                if n.is_finite() {
                    if n.fract() == 0.0 && n.abs() < 1e15 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::String(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    item.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push(']');
            }
            Json::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..(width * level) {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Number(v)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Number(v as f64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Number(v as f64)
    }
}
impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::String(v.to_owned())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::String(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_serialise() {
        assert_eq!(Json::Null.to_compact_string(), "null");
        assert_eq!(Json::Bool(true).to_compact_string(), "true");
        assert_eq!(Json::Number(3.0).to_compact_string(), "3");
        assert_eq!(Json::Number(3.25).to_compact_string(), "3.25");
        assert_eq!(Json::Number(f64::NAN).to_compact_string(), "null");
        assert_eq!(Json::string("hi").to_compact_string(), "\"hi\"");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(
            Json::string("a\"b\\c\nd\te\r").to_compact_string(),
            "\"a\\\"b\\\\c\\nd\\te\\r\""
        );
        assert_eq!(Json::string("\u{1}").to_compact_string(), "\"\\u0001\"");
    }

    #[test]
    fn arrays_and_objects() {
        let v = Json::object(vec![
            ("series", Json::array(vec![1i64.into(), 2i64.into()])),
            ("name", "fig3".into()),
            ("empty_arr", Json::array(vec![])),
            ("empty_obj", Json::Object(BTreeMap::new())),
        ]);
        let s = v.to_compact_string();
        // Keys are sorted by BTreeMap.
        assert_eq!(
            s,
            "{\"empty_arr\":[],\"empty_obj\":{},\"name\":\"fig3\",\"series\":[1,2]}"
        );
    }

    #[test]
    fn pretty_output_is_indented_and_ends_with_newline() {
        let v = Json::object(vec![("a", Json::array(vec![1i64.into()]))]);
        let s = v.to_pretty_string();
        assert!(s.contains("\n  \"a\": [\n    1\n  ]\n"));
        assert!(s.ends_with('\n'));
    }

    #[test]
    fn from_conversions() {
        assert_eq!(Json::from(2i64), Json::Number(2.0));
        assert_eq!(Json::from(2usize), Json::Number(2.0));
        assert_eq!(Json::from(true), Json::Bool(true));
        assert_eq!(Json::from("x"), Json::String("x".into()));
        assert_eq!(Json::from(String::from("y")), Json::String("y".into()));
        assert_eq!(Json::from(1.5), Json::Number(1.5));
    }
}
