//! Stream schemas: the typed *output structure* of a virtual sensor.
//!
//! A deployment descriptor's `<output-structure>` element declares the fields a virtual
//! sensor produces.  The same structure is used for wrapper output formats and for the
//! relations the SQL engine materialises.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::GsnError;
use crate::ident::FieldName;
use crate::value::{DataType, Value};

/// One declared field of a stream: a validated name plus a data type.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FieldSpec {
    /// The (case-insensitive, stored upper-case) field name.
    pub name: FieldName,
    /// Declared type.
    pub data_type: DataType,
    /// Free-text description carried from the descriptor (used by discovery metadata).
    pub description: Option<String>,
}

impl FieldSpec {
    /// Creates a field spec, validating the name.
    pub fn new(name: &str, data_type: DataType) -> Result<FieldSpec, GsnError> {
        Ok(FieldSpec {
            name: FieldName::new(name)?,
            data_type,
            description: None,
        })
    }

    /// Creates a field spec with a description.
    pub fn with_description(
        name: &str,
        data_type: DataType,
        description: impl Into<String>,
    ) -> Result<FieldSpec, GsnError> {
        Ok(FieldSpec {
            name: FieldName::new(name)?,
            data_type,
            description: Some(description.into()),
        })
    }
}

impl fmt::Display for FieldSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.name, self.data_type)
    }
}

/// An ordered collection of [`FieldSpec`]s with unique names.
///
/// GSN reserves two implicit attributes on every stream: `TIMED` (the tuple timestamp) and
/// `PK` (a monotonically increasing element id).  Those are **not** part of the schema; the
/// storage layer and SQL engine expose them as virtual columns.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct StreamSchema {
    fields: Vec<FieldSpec>,
}

impl StreamSchema {
    /// The reserved name of the implicit timestamp attribute.
    pub const TIMED: &'static str = "TIMED";
    /// The reserved name of the implicit element-id attribute.
    pub const PK: &'static str = "PK";

    /// Creates an empty schema (used by control-only streams, e.g. RFID presence pings
    /// whose only information is the timestamp).
    pub fn empty() -> StreamSchema {
        StreamSchema { fields: Vec::new() }
    }

    /// Creates a schema from field specs, rejecting duplicate or reserved names.
    pub fn new(fields: Vec<FieldSpec>) -> Result<StreamSchema, GsnError> {
        let mut schema = StreamSchema::empty();
        for f in fields {
            schema.push(f)?;
        }
        Ok(schema)
    }

    /// Convenience constructor from `(name, type)` pairs.
    pub fn from_pairs(pairs: &[(&str, DataType)]) -> Result<StreamSchema, GsnError> {
        StreamSchema::new(
            pairs
                .iter()
                .map(|(n, t)| FieldSpec::new(n, *t))
                .collect::<Result<Vec<_>, _>>()?,
        )
    }

    /// Appends a field, rejecting duplicates and the reserved `TIMED`/`PK` names.
    pub fn push(&mut self, field: FieldSpec) -> Result<(), GsnError> {
        let upper = field.name.as_str();
        if upper == Self::TIMED || upper == Self::PK {
            return Err(GsnError::descriptor(format!(
                "field name `{upper}` is reserved for the implicit stream attributes"
            )));
        }
        if self.index_of(upper).is_some() {
            return Err(GsnError::descriptor(format!(
                "duplicate field `{upper}` in output structure"
            )));
        }
        self.fields.push(field);
        Ok(())
    }

    /// Number of declared fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the schema has no declared fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Iterates over the declared fields in order.
    pub fn fields(&self) -> impl Iterator<Item = &FieldSpec> {
        self.fields.iter()
    }

    /// Returns the position of a field by case-insensitive name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields
            .iter()
            .position(|f| f.name.as_str().eq_ignore_ascii_case(name))
    }

    /// Returns a field spec by case-insensitive name.
    pub fn field(&self, name: &str) -> Option<&FieldSpec> {
        self.index_of(name).map(|i| &self.fields[i])
    }

    /// Returns the field spec at a position.
    pub fn field_at(&self, index: usize) -> Option<&FieldSpec> {
        self.fields.get(index)
    }

    /// The declared field names in order.
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }

    /// Validates a row of values against the schema, coercing each value to its declared
    /// type.  Used when a wrapper posts a reading and when SQL results are bound to an
    /// output structure.
    pub fn coerce_row(&self, values: &[Value]) -> Result<Vec<Value>, GsnError> {
        if values.len() != self.fields.len() {
            return Err(GsnError::type_error(format!(
                "row has {} values but schema `{}` declares {} fields",
                values.len(),
                self,
                self.fields.len()
            )));
        }
        values
            .iter()
            .zip(&self.fields)
            .map(|(v, f)| {
                v.coerce_to(f.data_type)
                    .map_err(|e| GsnError::type_error(format!("field {}: {}", f.name, e)))
            })
            .collect()
    }

    /// True when `other` produces rows that can be consumed anywhere this schema is
    /// expected: same field names in the same order, with types that coerce.
    pub fn is_compatible_with(&self, other: &StreamSchema) -> bool {
        self.len() == other.len()
            && self.fields.iter().zip(other.fields()).all(|(a, b)| {
                a.name == b.name
                    && (a.data_type == b.data_type
                        || (a.data_type.is_numeric() && b.data_type.is_numeric())
                        || a.data_type == DataType::Varchar)
            })
    }
}

impl fmt::Display for StreamSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{field}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temperature_schema() -> StreamSchema {
        StreamSchema::from_pairs(&[
            ("temperature", DataType::Integer),
            ("light", DataType::Double),
            ("label", DataType::Varchar),
        ])
        .unwrap()
    }

    #[test]
    fn schema_construction_and_lookup() {
        let s = temperature_schema();
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.index_of("TEMPERATURE"), Some(0));
        assert_eq!(s.index_of("temperature"), Some(0));
        assert_eq!(s.index_of("Light"), Some(1));
        assert_eq!(s.index_of("missing"), None);
        assert_eq!(s.field("label").unwrap().data_type, DataType::Varchar);
        assert_eq!(s.field_at(0).unwrap().name.as_str(), "TEMPERATURE");
        assert_eq!(s.names(), vec!["TEMPERATURE", "LIGHT", "LABEL"]);
    }

    #[test]
    fn duplicate_fields_rejected() {
        let err = StreamSchema::from_pairs(&[("a", DataType::Integer), ("A", DataType::Double)])
            .unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn reserved_names_rejected() {
        for reserved in ["timed", "TIMED", "pk", "PK"] {
            let err = StreamSchema::from_pairs(&[(reserved, DataType::Integer)]).unwrap_err();
            assert!(err.to_string().contains("reserved"), "{reserved}");
        }
    }

    #[test]
    fn empty_schema_is_allowed() {
        let s = StreamSchema::empty();
        assert!(s.is_empty());
        assert_eq!(s.coerce_row(&[]).unwrap(), Vec::<Value>::new());
    }

    #[test]
    fn coerce_row_applies_declared_types() {
        let s = temperature_schema();
        let row = s
            .coerce_row(&[
                Value::Double(21.0),
                Value::Integer(500),
                Value::varchar("bc143"),
            ])
            .unwrap();
        assert_eq!(row[0], Value::Integer(21));
        assert_eq!(row[1], Value::Double(500.0));
        assert_eq!(row[2], Value::varchar("bc143"));
    }

    #[test]
    fn coerce_row_rejects_arity_mismatch() {
        let s = temperature_schema();
        assert!(s.coerce_row(&[Value::Integer(1)]).is_err());
    }

    #[test]
    fn coerce_row_reports_offending_field() {
        let s = temperature_schema();
        let err = s
            .coerce_row(&[Value::varchar("warm"), Value::Integer(1), Value::Null])
            .unwrap_err();
        assert!(err.to_string().contains("TEMPERATURE"), "{err}");
    }

    #[test]
    fn compatibility_allows_numeric_widening() {
        let ints = StreamSchema::from_pairs(&[("v", DataType::Integer)]).unwrap();
        let doubles = StreamSchema::from_pairs(&[("v", DataType::Double)]).unwrap();
        let strings = StreamSchema::from_pairs(&[("v", DataType::Varchar)]).unwrap();
        let other_name = StreamSchema::from_pairs(&[("w", DataType::Integer)]).unwrap();
        assert!(ints.is_compatible_with(&doubles));
        assert!(doubles.is_compatible_with(&ints));
        assert!(strings.is_compatible_with(&ints));
        assert!(!ints.is_compatible_with(&strings));
        assert!(!ints.is_compatible_with(&other_name));
    }

    #[test]
    fn display_lists_fields() {
        let s = temperature_schema();
        assert_eq!(
            s.to_string(),
            "(TEMPERATURE integer, LIGHT double, LABEL varchar)"
        );
    }

    #[test]
    fn field_with_description_is_preserved() {
        let f = FieldSpec::with_description("temp", DataType::Integer, "degrees C").unwrap();
        assert_eq!(f.description.as_deref(), Some("degrees C"));
        assert_eq!(f.to_string(), "TEMP integer");
    }
}
