//! Validated identifiers: virtual sensor names, field names and node ids.
//!
//! GSN identifies virtual sensors by name in the directory and addresses them in SQL
//! queries; keeping identifier validation in one place prevents descriptor typos and SQL
//! injection-ish surprises from propagating into the engine.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::GsnError;

/// Checks that `s` is a valid GSN identifier: non-empty, starts with a letter or
/// underscore, and contains only ASCII alphanumerics, `_` and `-`.
fn validate_ident(s: &str, what: &str, allow_dash: bool) -> Result<(), GsnError> {
    if s.is_empty() {
        return Err(GsnError::descriptor(format!("{what} must not be empty")));
    }
    let mut chars = s.chars();
    let first = chars.next().expect("non-empty");
    if !(first.is_ascii_alphabetic() || first == '_') {
        return Err(GsnError::descriptor(format!(
            "{what} `{s}` must start with a letter or underscore"
        )));
    }
    for c in s.chars() {
        let ok = c.is_ascii_alphanumeric() || c == '_' || (allow_dash && c == '-');
        if !ok {
            return Err(GsnError::descriptor(format!(
                "{what} `{s}` contains invalid character `{c}`"
            )));
        }
    }
    Ok(())
}

/// The name of a virtual sensor, unique within a container and used as the key under which
/// the sensor is published to the directory.  Stored lower-case (names are
/// case-insensitive, as in GSN where they double as table names).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VirtualSensorName(String);

impl VirtualSensorName {
    /// Validates and normalises a virtual sensor name.
    pub fn new(name: &str) -> Result<VirtualSensorName, GsnError> {
        let trimmed = name.trim();
        validate_ident(trimmed, "virtual sensor name", true)?;
        Ok(VirtualSensorName(trimmed.to_ascii_lowercase()))
    }

    /// The normalised name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for VirtualSensorName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::str::FromStr for VirtualSensorName {
    type Err = GsnError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        VirtualSensorName::new(s)
    }
}

/// A stream field name.  Stored upper-case, matching GSN's SQL-facing convention
/// (`select AVG(TEMPERATURE) from WRAPPER`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FieldName(String);

impl FieldName {
    /// Validates and normalises a field name.
    pub fn new(name: &str) -> Result<FieldName, GsnError> {
        let trimmed = name.trim();
        validate_ident(trimmed, "field name", false)?;
        Ok(FieldName(trimmed.to_ascii_uppercase()))
    }

    /// The normalised (upper-case) name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for FieldName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::str::FromStr for FieldName {
    type Err = GsnError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        FieldName::new(s)
    }
}

/// Identifies one GSN container (node) in the simulated peer-to-peer overlay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u64);

impl NodeId {
    /// The local/loopback node.
    pub const LOCAL: NodeId = NodeId(0);

    /// Creates a node id from a raw integer.
    pub const fn new(id: u64) -> NodeId {
        NodeId(id)
    }

    /// The raw id.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node-{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sensor_names_normalise_to_lowercase() {
        let n = VirtualSensorName::new("Room_BC143-Temperature").unwrap();
        assert_eq!(n.as_str(), "room_bc143-temperature");
        assert_eq!(n, "ROOM_bc143-TEMPERATURE".parse().unwrap());
    }

    #[test]
    fn sensor_names_reject_invalid() {
        assert!(VirtualSensorName::new("").is_err());
        assert!(VirtualSensorName::new("9lives").is_err());
        assert!(VirtualSensorName::new("has space").is_err());
        assert!(VirtualSensorName::new("semi;colon").is_err());
        assert!(VirtualSensorName::new("_ok").is_ok());
        assert!(VirtualSensorName::new("  padded  ").is_ok());
    }

    #[test]
    fn field_names_normalise_to_uppercase() {
        let f = FieldName::new("temperature").unwrap();
        assert_eq!(f.as_str(), "TEMPERATURE");
        assert_eq!(f.to_string(), "TEMPERATURE");
        assert_eq!(f, "Temperature".parse().unwrap());
    }

    #[test]
    fn field_names_reject_dashes_and_symbols() {
        assert!(FieldName::new("with-dash").is_err());
        assert!(FieldName::new("select*").is_err());
        assert!(FieldName::new("ok_name2").is_ok());
    }

    #[test]
    fn node_ids_format() {
        assert_eq!(NodeId::new(3).to_string(), "node-3");
        assert_eq!(NodeId::LOCAL.as_u64(), 0);
        assert!(NodeId::new(1) < NodeId::new(2));
    }
}
