//! The container clock.
//!
//! GSN's stream processing depends on a per-container local clock (paper, Section 3,
//! service 1).  Production deployments use wall-clock time; tests and the benchmark
//! harnesses use a [`SimulatedClock`] so that time-triggered workloads (Figure 3) can be
//! replayed deterministically and far faster than real time.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::time::{Duration, Timestamp};

/// A source of the container-local time.
///
/// Implementations must be cheap and thread-safe: the input stream manager reads the
/// clock for every arriving element.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// The current container-local time.
    fn now(&self) -> Timestamp;
}

/// Wall-clock time in milliseconds since the Unix epoch.
#[derive(Debug, Clone, Copy, Default)]
pub struct SystemClock;

impl SystemClock {
    /// Creates a wall clock.
    pub fn new() -> SystemClock {
        SystemClock
    }
}

impl Clock for SystemClock {
    fn now(&self) -> Timestamp {
        let ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as i64)
            .unwrap_or(0);
        Timestamp::from_millis(ms)
    }
}

/// A manually advanced clock shared between the harness and the container.
///
/// Cloning produces a handle onto the same underlying time so that a workload generator
/// and the container it drives observe identical timestamps.
#[derive(Debug, Clone, Default)]
pub struct SimulatedClock {
    now_ms: Arc<AtomicI64>,
}

impl SimulatedClock {
    /// Creates a simulated clock starting at time zero.
    pub fn new() -> SimulatedClock {
        SimulatedClock::starting_at(Timestamp::EPOCH)
    }

    /// Creates a simulated clock starting at `start`.
    pub fn starting_at(start: Timestamp) -> SimulatedClock {
        SimulatedClock {
            now_ms: Arc::new(AtomicI64::new(start.as_millis())),
        }
    }

    /// Advances the clock by `delta` and returns the new time.
    pub fn advance(&self, delta: Duration) -> Timestamp {
        let new = self.now_ms.fetch_add(delta.as_millis(), Ordering::SeqCst) + delta.as_millis();
        Timestamp::from_millis(new)
    }

    /// Jumps the clock to an absolute time.  Moving backwards is allowed (tests exercise
    /// out-of-order arrival) but discouraged in harness code.
    pub fn set(&self, now: Timestamp) {
        self.now_ms.store(now.as_millis(), Ordering::SeqCst);
    }
}

impl Clock for SimulatedClock {
    fn now(&self) -> Timestamp {
        Timestamp::from_millis(self.now_ms.load(Ordering::SeqCst))
    }
}

/// A shared, dynamically dispatched clock handle as stored by containers.
pub type SharedClock = Arc<dyn Clock>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotonic_enough() {
        let c = SystemClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
        assert!(a.as_millis() > 1_000_000_000_000); // after 2001 in epoch-millis
    }

    #[test]
    fn simulated_clock_starts_at_epoch() {
        let c = SimulatedClock::new();
        assert_eq!(c.now(), Timestamp::EPOCH);
    }

    #[test]
    fn simulated_clock_advance_and_set() {
        let c = SimulatedClock::starting_at(Timestamp(100));
        assert_eq!(c.now(), Timestamp(100));
        assert_eq!(c.advance(Duration::from_millis(50)), Timestamp(150));
        assert_eq!(c.now(), Timestamp(150));
        c.set(Timestamp(1_000));
        assert_eq!(c.now(), Timestamp(1_000));
    }

    #[test]
    fn simulated_clock_handles_are_shared() {
        let a = SimulatedClock::new();
        let b = a.clone();
        a.advance(Duration::from_secs(1));
        assert_eq!(b.now(), Timestamp(1_000));
    }

    #[test]
    fn clock_trait_object() {
        let clock: SharedClock = Arc::new(SimulatedClock::starting_at(Timestamp(7)));
        assert_eq!(clock.now(), Timestamp(7));
    }

    #[test]
    fn simulated_clock_is_thread_safe() {
        let c = SimulatedClock::new();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.advance(Duration::from_millis(1));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.now(), Timestamp(8_000));
    }
}
