//! # gsn-types
//!
//! Core data types shared by every crate in the GSN-RS workspace.
//!
//! The Global Sensor Networks middleware (Aberer, Hauswirth, Salehi; VLDB 2006) models a
//! data stream as a *sequence of timestamped tuples*.  This crate provides the vocabulary
//! for that model:
//!
//! * [`DataType`] and [`Value`] — the dynamic type system used by stream fields, SQL
//!   expressions and wrapper payloads.
//! * [`FieldSpec`] and [`StreamSchema`] — the *output structure* of a virtual sensor
//!   (`<output-structure>` in a deployment descriptor).
//! * [`StreamElement`] — one timestamped tuple travelling through the middleware.
//! * [`Timestamp`], [`Duration`] and [`Clock`] — the explicit time model.  GSN containers
//!   keep a local clock and implicitly timestamp tuples on arrival; benchmarks use a
//!   [`SimulatedClock`] so that experiments are deterministic and fast.
//! * [`GsnError`] — the error type used across the workspace.
//! * [`ident`] — validated identifiers for virtual sensors, fields and nodes.
//! * [`codec`] — the binary record format shared by the persistent storage engine's
//!   pages and write-ahead log.
//! * [`json`] — a minimal JSON writer used by benchmark harnesses to emit machine-readable
//!   reports without pulling extra dependencies.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod clock;
pub mod codec;
pub mod element;
pub mod epoch;
pub mod error;
pub mod ident;
pub mod json;
pub mod schema;
pub mod time;
pub mod value;

pub use clock::{Clock, SimulatedClock, SystemClock};
pub use element::StreamElement;
pub use epoch::EpochCell;
pub use error::{GsnError, GsnResult};
pub use ident::{FieldName, NodeId, VirtualSensorName};
pub use schema::{FieldSpec, StreamSchema};
pub use time::{Duration, Timestamp};
pub use value::{DataType, Value};
