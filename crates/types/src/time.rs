//! The GSN time model: millisecond timestamps and durations.
//!
//! GSN treats network and processing delays as *inherent properties of the observation
//! process* (paper, Section 3): tuples carry explicit timestamps, windows are defined over
//! those timestamps, and multiple time attributes may coexist on a stream.  To keep that
//! model testable we use plain integer milliseconds rather than [`std::time::Instant`],
//! which allows both a wall-clock implementation and a fully deterministic simulated clock.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A point in time, in milliseconds since an arbitrary epoch.
///
/// GSN assigns a reception timestamp to every tuple that arrives without one.  Timestamps
/// are totally ordered; the ordering of a data stream is derived from the ordering of its
/// timestamps (paper, Section 3).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Timestamp(pub i64);

impl Timestamp {
    /// The earliest representable timestamp.
    pub const MIN: Timestamp = Timestamp(i64::MIN);
    /// The latest representable timestamp.
    pub const MAX: Timestamp = Timestamp(i64::MAX);
    /// The conventional epoch (zero).
    pub const EPOCH: Timestamp = Timestamp(0);

    /// Creates a timestamp from raw milliseconds.
    pub const fn from_millis(ms: i64) -> Self {
        Timestamp(ms)
    }

    /// Returns the raw millisecond value.
    pub const fn as_millis(self) -> i64 {
        self.0
    }

    /// Returns the timestamp advanced by `d`, saturating at the representable bounds.
    pub fn saturating_add(self, d: Duration) -> Self {
        Timestamp(self.0.saturating_add(d.0))
    }

    /// Returns the timestamp moved back by `d`, saturating at the representable bounds.
    pub fn saturating_sub(self, d: Duration) -> Self {
        Timestamp(self.0.saturating_sub(d.0))
    }

    /// Returns the absolute difference between two timestamps.
    pub fn abs_diff(self, other: Timestamp) -> Duration {
        Duration(self.0.abs_diff(other.0) as i64)
    }

    /// Returns the later of two timestamps.
    pub fn max(self, other: Timestamp) -> Timestamp {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the earlier of two timestamps.
    pub fn min(self, other: Timestamp) -> Timestamp {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ms", self.0)
    }
}

impl From<i64> for Timestamp {
    fn from(ms: i64) -> Self {
        Timestamp(ms)
    }
}

impl Add<Duration> for Timestamp {
    type Output = Timestamp;
    fn add(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Timestamp {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for Timestamp {
    type Output = Timestamp;
    fn sub(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 - rhs.0)
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = Duration;
    fn sub(self, rhs: Timestamp) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

/// A span of time in milliseconds.
///
/// Durations appear in deployment descriptors as window sizes (`storage-size="1h"`),
/// sampling intervals, history sizes and disconnect-buffer horizons.  Negative durations
/// are representable (they arise from subtracting timestamps) but descriptor parsing only
/// accepts non-negative spans.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Duration(pub i64);

impl Duration {
    /// A zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: i64) -> Self {
        Duration(ms)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: i64) -> Self {
        Duration(s * 1_000)
    }

    /// Creates a duration from whole minutes.
    pub const fn from_minutes(m: i64) -> Self {
        Duration(m * 60_000)
    }

    /// Creates a duration from whole hours.
    pub const fn from_hours(h: i64) -> Self {
        Duration(h * 3_600_000)
    }

    /// Returns the raw millisecond value.
    pub const fn as_millis(self) -> i64 {
        self.0
    }

    /// Returns the duration in (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// True when the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// True when the duration is strictly negative.
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// Saturating addition.
    pub fn saturating_add(self, other: Duration) -> Duration {
        Duration(self.0.saturating_add(other.0))
    }

    /// Multiplies the duration by an integer factor.
    pub fn saturating_mul(self, factor: i64) -> Duration {
        Duration(self.0.saturating_mul(factor))
    }

    /// Parses a GSN descriptor time specification.
    ///
    /// The GSN descriptor syntax uses a number followed by an optional unit suffix:
    /// * no suffix or `ms` — milliseconds
    /// * `s` — seconds
    /// * `m` — minutes
    /// * `h` — hours
    ///
    /// A bare number is interpreted as a *count* by window parsing; this function is only
    /// for time-valued attributes, so a bare number means milliseconds.
    ///
    /// ```
    /// use gsn_types::Duration;
    /// assert_eq!(Duration::parse_spec("10s"), Some(Duration::from_secs(10)));
    /// assert_eq!(Duration::parse_spec("1h"), Some(Duration::from_hours(1)));
    /// assert_eq!(Duration::parse_spec("250"), Some(Duration::from_millis(250)));
    /// assert_eq!(Duration::parse_spec("abc"), None);
    /// ```
    pub fn parse_spec(spec: &str) -> Option<Duration> {
        let spec = spec.trim();
        if spec.is_empty() {
            return None;
        }
        let (digits, unit) = split_unit(spec);
        let n: i64 = digits.parse().ok()?;
        if n < 0 {
            return None;
        }
        match unit {
            "" | "ms" => Some(Duration::from_millis(n)),
            "s" => Some(Duration::from_secs(n)),
            "m" | "min" => Some(Duration::from_minutes(n)),
            "h" => Some(Duration::from_hours(n)),
            _ => None,
        }
    }
}

/// Splits a descriptor time spec into its numeric prefix and unit suffix.
fn split_unit(spec: &str) -> (&str, &str) {
    let idx = spec
        .char_indices()
        .find(|(_, c)| !c.is_ascii_digit() && *c != '-')
        .map(|(i, _)| i)
        .unwrap_or(spec.len());
    (&spec[..idx], spec[idx..].trim())
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ms = self.0;
        if ms % 3_600_000 == 0 && ms != 0 {
            write!(f, "{}h", ms / 3_600_000)
        } else if ms % 60_000 == 0 && ms != 0 {
            write!(f, "{}m", ms / 60_000)
        } else if ms % 1_000 == 0 && ms != 0 {
            write!(f, "{}s", ms / 1_000)
        } else {
            write!(f, "{}ms", ms)
        }
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl From<i64> for Duration {
    fn from(ms: i64) -> Self {
        Duration(ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_ordering_follows_millis() {
        assert!(Timestamp(5) < Timestamp(6));
        assert!(Timestamp(-1) < Timestamp(0));
        assert_eq!(Timestamp(7), Timestamp::from_millis(7));
    }

    #[test]
    fn timestamp_arithmetic() {
        let t = Timestamp(1_000);
        assert_eq!(t + Duration::from_secs(2), Timestamp(3_000));
        assert_eq!(t - Duration::from_millis(400), Timestamp(600));
        assert_eq!(Timestamp(3_000) - Timestamp(1_000), Duration::from_secs(2));
        assert_eq!(
            Timestamp(1_000) - Timestamp(3_000),
            Duration::from_millis(-2_000)
        );
    }

    #[test]
    fn saturating_ops_do_not_overflow() {
        assert_eq!(
            Timestamp::MAX.saturating_add(Duration::from_secs(1)),
            Timestamp::MAX
        );
        assert_eq!(
            Timestamp::MIN.saturating_sub(Duration::from_secs(1)),
            Timestamp::MIN
        );
        assert_eq!(
            Duration(i64::MAX).saturating_add(Duration(1)),
            Duration(i64::MAX)
        );
        assert_eq!(Duration(i64::MAX).saturating_mul(2), Duration(i64::MAX));
    }

    #[test]
    fn abs_diff_is_symmetric() {
        assert_eq!(Timestamp(10).abs_diff(Timestamp(4)), Duration(6));
        assert_eq!(Timestamp(4).abs_diff(Timestamp(10)), Duration(6));
    }

    #[test]
    fn min_max_pick_correct_ends() {
        assert_eq!(Timestamp(3).max(Timestamp(9)), Timestamp(9));
        assert_eq!(Timestamp(3).min(Timestamp(9)), Timestamp(3));
    }

    #[test]
    fn duration_constructors() {
        assert_eq!(Duration::from_secs(2).as_millis(), 2_000);
        assert_eq!(Duration::from_minutes(3).as_millis(), 180_000);
        assert_eq!(Duration::from_hours(1).as_millis(), 3_600_000);
        assert!((Duration::from_millis(1_500).as_secs_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn duration_parse_spec_accepts_all_units() {
        assert_eq!(Duration::parse_spec("15"), Some(Duration::from_millis(15)));
        assert_eq!(
            Duration::parse_spec("15ms"),
            Some(Duration::from_millis(15))
        );
        assert_eq!(Duration::parse_spec("10s"), Some(Duration::from_secs(10)));
        assert_eq!(Duration::parse_spec("5m"), Some(Duration::from_minutes(5)));
        assert_eq!(
            Duration::parse_spec("5min"),
            Some(Duration::from_minutes(5))
        );
        assert_eq!(Duration::parse_spec("2h"), Some(Duration::from_hours(2)));
        assert_eq!(Duration::parse_spec(" 30s "), Some(Duration::from_secs(30)));
    }

    #[test]
    fn duration_parse_spec_rejects_garbage() {
        assert_eq!(Duration::parse_spec(""), None);
        assert_eq!(Duration::parse_spec("ten seconds"), None);
        assert_eq!(Duration::parse_spec("10d"), None);
        assert_eq!(Duration::parse_spec("-5s"), None);
    }

    #[test]
    fn duration_display_round_trips_through_parse() {
        for d in [
            Duration::from_millis(17),
            Duration::from_secs(10),
            Duration::from_minutes(90),
            Duration::from_hours(2),
            Duration::ZERO,
        ] {
            let shown = d.to_string();
            assert_eq!(Duration::parse_spec(&shown), Some(d), "failed for {shown}");
        }
    }

    #[test]
    fn duration_flags() {
        assert!(Duration::ZERO.is_zero());
        assert!(!Duration(1).is_zero());
        assert!(Duration(-1).is_negative());
        assert!(!Duration(1).is_negative());
    }
}
