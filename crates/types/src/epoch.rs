//! Epoch-published values: wait-free-ish reads of read-mostly metadata.
//!
//! A GSN container consults the same metadata on every element it moves — catalog
//! views, remote routes, the registered-query index — but mutates it only on
//! (re)deployments and subscription changes.  Guarding such state with a plain lock
//! makes every element pay for the rare writer.  An [`EpochCell`] instead *publishes*
//! the value: readers take an [`Arc`] snapshot (one brief, uncontended read-lock to
//! clone the pointer — never held across the read itself) and work on an immutable
//! generation; writers build the next generation off to the side and install it with a
//! pointer swap, bumping the epoch counter.
//!
//! A reader holding a snapshot across a concurrent update simply finishes on the old
//! generation — exactly the consistency a streaming scan wants (it sees the catalog as
//! of its own start), and the old generation is freed when the last such reader drops
//! its `Arc`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// A value published by generations: cheap `Arc` snapshots for readers, copy-on-write
/// installs for writers (see the module docs).
#[derive(Debug)]
pub struct EpochCell<T> {
    current: RwLock<Arc<T>>,
    /// Bumped on every install; lets callers detect "did anything change" without
    /// comparing values.
    generation: AtomicU64,
    /// Serialises writers so concurrent [`EpochCell::update`] closures never build off
    /// the same parent generation (one would silently lose the other's change).
    writer: Mutex<()>,
}

impl<T> EpochCell<T> {
    /// Publishes `value` as generation 0.
    pub fn new(value: T) -> EpochCell<T> {
        EpochCell {
            current: RwLock::new(Arc::new(value)),
            generation: AtomicU64::new(0),
            writer: Mutex::new(()),
        }
    }

    /// Takes a snapshot of the current generation.  The internal lock is held only for
    /// the pointer clone — a reader may keep the returned `Arc` for as long as it
    /// likes without blocking writers or other readers.
    pub fn load(&self) -> Arc<T> {
        Arc::clone(&read_lock(&self.current))
    }

    /// The generation counter of the currently published value.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Publishes `value` as the next generation, returning the new generation number.
    pub fn store(&self, value: T) -> u64 {
        let _serialised = write_guard(&self.writer);
        self.install(Arc::new(value))
    }

    /// Builds the next generation from the current one and publishes it (copy-on-write
    /// update).  Writers are serialised: `f` always sees the latest generation, and no
    /// concurrent update is lost.  Returns the new generation number.
    pub fn update<R>(&self, f: impl FnOnce(&T) -> (T, R)) -> (u64, R) {
        let _serialised = write_guard(&self.writer);
        let parent = Arc::clone(&read_lock(&self.current));
        let (next, result) = f(&parent);
        (self.install(Arc::new(next)), result)
    }

    /// Swaps the published pointer and bumps the epoch.  Caller holds the writer lock.
    fn install(&self, next: Arc<T>) -> u64 {
        *self
            .current
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = next;
        self.generation.fetch_add(1, Ordering::AcqRel) + 1
    }
}

impl<T: Default> Default for EpochCell<T> {
    fn default() -> Self {
        EpochCell::new(T::default())
    }
}

fn read_lock<T>(lock: &RwLock<Arc<T>>) -> std::sync::RwLockReadGuard<'_, Arc<T>> {
    lock.read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn write_guard(lock: &Mutex<()>) -> std::sync::MutexGuard<'_, ()> {
    lock.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_survives_replacement() {
        let cell = EpochCell::new(vec![1, 2, 3]);
        let old = cell.load();
        let generation = cell.store(vec![4, 5]);
        assert_eq!(generation, 1);
        // The reader's snapshot is the generation it started with…
        assert_eq!(*old, vec![1, 2, 3]);
        // …while new readers see the new one.
        assert_eq!(*cell.load(), vec![4, 5]);
    }

    #[test]
    fn update_is_copy_on_write_and_returns_a_result() {
        let cell = EpochCell::new(10u64);
        let (generation, doubled) = cell.update(|&v| (v + 1, v * 2));
        assert_eq!(generation, 1);
        assert_eq!(doubled, 20);
        assert_eq!(*cell.load(), 11);
        assert_eq!(cell.generation(), 1);
    }

    #[test]
    fn generations_count_every_install() {
        let cell = EpochCell::new(0u32);
        assert_eq!(cell.generation(), 0);
        for expected in 1..=5 {
            assert_eq!(cell.store(expected), u64::from(expected));
        }
        assert_eq!(cell.generation(), 5);
        assert_eq!(*cell.load(), 5);
    }

    #[test]
    fn concurrent_readers_and_writers_settle() {
        let cell = Arc::new(EpochCell::new(0usize));
        let writers: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                std::thread::spawn(move || {
                    for _ in 0..250 {
                        cell.update(|&v| (v + 1, ()));
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                std::thread::spawn(move || {
                    let mut last = 0;
                    for _ in 0..500 {
                        let snapshot = *cell.load();
                        assert!(snapshot >= last, "value must be monotone");
                        last = snapshot;
                    }
                })
            })
            .collect();
        for t in writers.into_iter().chain(readers) {
            t.join().unwrap();
        }
        // Writer serialisation means no increment was lost.
        assert_eq!(*cell.load(), 1000);
        assert_eq!(cell.generation(), 1000);
    }
}
