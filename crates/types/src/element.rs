//! [`StreamElement`]: one timestamped tuple of a data stream.
//!
//! In GSN "a data stream is a sequence of timestamped tuples" (paper, Section 3).  The
//! stream element is the unit that wrappers emit, the input stream manager timestamps,
//! windows select over, SQL queries consume and the notification manager delivers.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::error::{GsnError, GsnResult};
use crate::schema::StreamSchema;
use crate::time::Timestamp;
use crate::value::Value;

/// A single timestamped tuple.
///
/// The schema is shared (`Arc`) between all elements of the same stream so that producing
/// an element is one small allocation for the value vector, not a schema clone.  The
/// element also carries an optional *production* timestamp distinct from the reception
/// timestamp — GSN explicitly supports multiple time attributes to make observation delays
/// visible rather than hiding them.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamElement {
    schema: Arc<StreamSchema>,
    values: Vec<Value>,
    /// The element's primary timestamp (`TIMED`): reception time at the container unless
    /// the producer supplied its own.
    timestamp: Timestamp,
    /// The producer-side timestamp, when known (e.g. a mote's local clock).
    produced_at: Option<Timestamp>,
    /// Monotonically increasing id assigned by storage on insertion (`PK`), 0 until stored.
    sequence: u64,
}

impl StreamElement {
    /// Creates an element, coercing `values` to the schema's declared types.
    pub fn new(
        schema: Arc<StreamSchema>,
        values: Vec<Value>,
        timestamp: Timestamp,
    ) -> GsnResult<StreamElement> {
        let values = schema.coerce_row(&values)?;
        Ok(StreamElement {
            schema,
            values,
            timestamp,
            produced_at: None,
            sequence: 0,
        })
    }

    /// Creates an element without validating the row against the schema.
    ///
    /// Intended for the SQL executor and storage layer, which construct rows that are
    /// correct by construction; wrappers should use [`StreamElement::new`].
    pub fn new_unchecked(
        schema: Arc<StreamSchema>,
        values: Vec<Value>,
        timestamp: Timestamp,
    ) -> StreamElement {
        StreamElement {
            schema,
            values,
            timestamp,
            produced_at: None,
            sequence: 0,
        }
    }

    /// Sets the producer-side timestamp.
    pub fn with_produced_at(mut self, produced_at: Timestamp) -> StreamElement {
        self.produced_at = Some(produced_at);
        self
    }

    /// Sets the storage sequence number (`PK`).
    pub fn with_sequence(mut self, sequence: u64) -> StreamElement {
        self.sequence = sequence;
        self
    }

    /// Replaces the primary timestamp (used by the ISM when an element arrives without
    /// one, per processing step 1 of Section 3).
    pub fn with_timestamp(mut self, ts: Timestamp) -> StreamElement {
        self.timestamp = ts;
        self
    }

    /// The stream schema.
    pub fn schema(&self) -> &Arc<StreamSchema> {
        &self.schema
    }

    /// The field values in schema order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// The primary (`TIMED`) timestamp.
    pub fn timestamp(&self) -> Timestamp {
        self.timestamp
    }

    /// The producer-side timestamp, if the producer supplied one.
    pub fn produced_at(&self) -> Option<Timestamp> {
        self.produced_at
    }

    /// The storage sequence number (`PK`); 0 if the element has not been stored yet.
    pub fn sequence(&self) -> u64 {
        self.sequence
    }

    /// Looks a value up by case-insensitive field name, including the implicit `TIMED` and
    /// `PK` attributes.
    pub fn value(&self, field: &str) -> Option<Value> {
        if field.eq_ignore_ascii_case(StreamSchema::TIMED) {
            return Some(Value::Timestamp(self.timestamp));
        }
        if field.eq_ignore_ascii_case(StreamSchema::PK) {
            return Some(Value::Integer(self.sequence as i64));
        }
        self.schema.index_of(field).map(|i| self.values[i].clone())
    }

    /// Looks a value up by position.
    pub fn value_at(&self, index: usize) -> Option<&Value> {
        self.values.get(index)
    }

    /// Total payload size in bytes (sum of field sizes plus the timestamp), the "stream
    /// element size" (SES) quantity of the paper's Figure 4 experiment.
    pub fn size_bytes(&self) -> usize {
        8 + self.values.iter().map(Value::size_bytes).sum::<usize>()
    }

    /// The observation latency — the difference between reception and production time —
    /// when both are known.  GSN exposes rather than hides this delay.
    pub fn observation_delay(&self) -> Option<crate::time::Duration> {
        self.produced_at.map(|p| self.timestamp - p)
    }

    /// Re-binds the element to a different (compatible) schema, coercing values.
    ///
    /// Used when a local wrapper's native structure is mapped onto the declared
    /// `<output-structure>` of the enclosing virtual sensor.
    pub fn rebind(&self, schema: Arc<StreamSchema>) -> GsnResult<StreamElement> {
        if self.values.len() != schema.len() {
            return Err(GsnError::type_error(format!(
                "cannot rebind element with {} values to schema with {} fields",
                self.values.len(),
                schema.len()
            )));
        }
        let values = schema.coerce_row(&self.values)?;
        Ok(StreamElement {
            schema,
            values,
            timestamp: self.timestamp,
            produced_at: self.produced_at,
            sequence: self.sequence,
        })
    }
}

impl fmt::Display for StreamElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{} {{", self.timestamp)?;
        for (i, (field, value)) in self.schema.fields().zip(&self.values).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}={}", field.name, value)?;
        }
        write!(f, "}}")
    }
}

impl PartialEq for StreamElement {
    fn eq(&self, other: &Self) -> bool {
        self.timestamp == other.timestamp
            && self.values == other.values
            && self.schema.as_ref() == other.schema.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    fn schema() -> Arc<StreamSchema> {
        Arc::new(
            StreamSchema::from_pairs(&[
                ("temperature", DataType::Integer),
                ("label", DataType::Varchar),
            ])
            .unwrap(),
        )
    }

    #[test]
    fn new_coerces_values() {
        let e = StreamElement::new(
            schema(),
            vec![Value::Double(20.0), Value::Integer(7)],
            Timestamp(100),
        )
        .unwrap();
        assert_eq!(e.values()[0], Value::Integer(20));
        assert_eq!(e.values()[1], Value::varchar("7"));
        assert_eq!(e.timestamp(), Timestamp(100));
    }

    #[test]
    fn new_rejects_bad_rows() {
        assert!(StreamElement::new(schema(), vec![Value::Integer(1)], Timestamp(0)).is_err());
        assert!(StreamElement::new(
            schema(),
            vec![Value::varchar("warm"), Value::Null],
            Timestamp(0)
        )
        .is_err());
    }

    #[test]
    fn implicit_attributes_are_accessible() {
        let e = StreamElement::new(
            schema(),
            vec![Value::Integer(21), Value::varchar("bc143")],
            Timestamp(500),
        )
        .unwrap()
        .with_sequence(42);
        assert_eq!(e.value("TIMED"), Some(Value::Timestamp(Timestamp(500))));
        assert_eq!(e.value("timed"), Some(Value::Timestamp(Timestamp(500))));
        assert_eq!(e.value("PK"), Some(Value::Integer(42)));
        assert_eq!(e.value("TEMPERATURE"), Some(Value::Integer(21)));
        assert_eq!(e.value("label"), Some(Value::varchar("bc143")));
        assert_eq!(e.value("missing"), None);
        assert_eq!(e.value_at(0), Some(&Value::Integer(21)));
        assert_eq!(e.value_at(9), None);
    }

    #[test]
    fn size_accounts_for_payload() {
        let s = Arc::new(StreamSchema::from_pairs(&[("image", DataType::Binary)]).unwrap());
        let e = StreamElement::new(s, vec![Value::binary(vec![0u8; 1000])], Timestamp(0)).unwrap();
        assert_eq!(e.size_bytes(), 1008);
    }

    #[test]
    fn observation_delay_requires_produced_at() {
        let e = StreamElement::new(
            schema(),
            vec![Value::Integer(1), Value::varchar("x")],
            Timestamp(150),
        )
        .unwrap();
        assert_eq!(e.observation_delay(), None);
        let e = e.with_produced_at(Timestamp(100));
        assert_eq!(e.observation_delay(), Some(crate::time::Duration(50)));
        assert_eq!(e.produced_at(), Some(Timestamp(100)));
    }

    #[test]
    fn rebind_to_compatible_schema() {
        let e = StreamElement::new(
            schema(),
            vec![Value::Integer(21), Value::varchar("a")],
            Timestamp(0),
        )
        .unwrap();
        let wider = Arc::new(
            StreamSchema::from_pairs(&[
                ("temperature", DataType::Double),
                ("label", DataType::Varchar),
            ])
            .unwrap(),
        );
        let r = e.rebind(wider.clone()).unwrap();
        assert_eq!(r.values()[0], Value::Double(21.0));
        assert!(Arc::ptr_eq(r.schema(), &wider));

        let narrow = Arc::new(StreamSchema::from_pairs(&[("x", DataType::Integer)]).unwrap());
        assert!(e.rebind(narrow).is_err());
    }

    #[test]
    fn display_contains_fields_and_timestamp() {
        let e = StreamElement::new(
            schema(),
            vec![Value::Integer(5), Value::varchar("lab")],
            Timestamp(77),
        )
        .unwrap();
        let s = e.to_string();
        assert!(s.contains("77ms"));
        assert!(s.contains("TEMPERATURE=5"));
        assert!(s.contains("LABEL=lab"));
    }

    #[test]
    fn equality_ignores_sequence_and_produced_at() {
        let a = StreamElement::new(
            schema(),
            vec![Value::Integer(1), Value::varchar("x")],
            Timestamp(5),
        )
        .unwrap();
        let b = a.clone().with_sequence(99).with_produced_at(Timestamp(1));
        assert_eq!(a, b);
    }
}
