//! Access control.
//!
//! "the access control layer ensures that access is provided only to entitled parties"
//! (paper, Section 4).  The reproduction models the common GSN deployment policy: each
//! virtual sensor is either public or restricted to an explicit list of principals, with a
//! container-wide default policy and per-sensor overrides.  Principals are simple named
//! identities (a remote node, a web client); authentication itself is out of scope and is
//! represented by the caller presenting its principal name.

use std::collections::{HashMap, HashSet};

use gsn_types::{GsnError, GsnResult};
use parking_lot::RwLock;

/// Who is asking for access.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Principal {
    /// An anonymous (unauthenticated) client.
    Anonymous,
    /// A named identity (remote node name, API key owner, ...).
    Named(String),
}

impl Principal {
    /// Builds a named principal.
    pub fn named(name: &str) -> Principal {
        Principal::Named(name.to_ascii_lowercase())
    }

    /// The display name.
    pub fn name(&self) -> &str {
        match self {
            Principal::Anonymous => "<anonymous>",
            Principal::Named(n) => n,
        }
    }
}

/// The operation being attempted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operation {
    /// Read the output stream / query the virtual sensor.
    Read,
    /// Subscribe to notifications.
    Subscribe,
    /// Deploy, reconfigure or undeploy virtual sensors.
    Manage,
}

/// The container-wide default when no per-sensor rule applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DefaultPolicy {
    /// Everything is allowed unless explicitly restricted (the demo configuration).
    AllowAll,
    /// Reads/subscriptions allowed, management restricted to listed administrators.
    AllowReadOnly,
    /// Nothing is allowed unless explicitly granted.
    DenyAll,
}

/// Per-sensor access rule.
#[derive(Debug, Clone, Default)]
struct SensorRule {
    /// Principals allowed to read/subscribe; empty = follow the default policy.
    readers: HashSet<Principal>,
    /// Whether the sensor is explicitly public for reads.
    public_read: bool,
}

/// The access-control layer of one container.
#[derive(Debug)]
pub struct AccessController {
    inner: RwLock<AccessInner>,
}

#[derive(Debug)]
struct AccessInner {
    default_policy: DefaultPolicy,
    administrators: HashSet<Principal>,
    rules: HashMap<String, SensorRule>,
    denied: u64,
    granted: u64,
}

impl AccessController {
    /// Creates a controller with the given default policy.
    pub fn new(default_policy: DefaultPolicy) -> AccessController {
        AccessController {
            inner: RwLock::new(AccessInner {
                default_policy,
                administrators: HashSet::new(),
                rules: HashMap::new(),
                denied: 0,
                granted: 0,
            }),
        }
    }

    /// A controller that allows everything (the paper's demo setup).
    pub fn permissive() -> AccessController {
        AccessController::new(DefaultPolicy::AllowAll)
    }

    /// Grants administrator (Manage) rights to a principal.
    pub fn add_administrator(&self, principal: Principal) {
        self.inner.write().administrators.insert(principal);
    }

    /// Restricts a sensor so that only the listed principals may read or subscribe.
    pub fn restrict_sensor(&self, sensor: &str, readers: Vec<Principal>) {
        let mut inner = self.inner.write();
        let rule = inner.rules.entry(sensor.to_ascii_lowercase()).or_default();
        rule.public_read = false;
        rule.readers = readers.into_iter().collect();
    }

    /// Marks a sensor as publicly readable regardless of the default policy.
    pub fn publish_sensor(&self, sensor: &str) {
        let mut inner = self.inner.write();
        let rule = inner.rules.entry(sensor.to_ascii_lowercase()).or_default();
        rule.public_read = true;
        rule.readers.clear();
    }

    /// Removes any per-sensor rule (sensor falls back to the default policy).
    pub fn clear_sensor(&self, sensor: &str) {
        self.inner
            .write()
            .rules
            .remove(&sensor.to_ascii_lowercase());
    }

    /// Checks whether `principal` may perform `operation` on `sensor`, recording the
    /// decision in the statistics.
    pub fn check(&self, principal: &Principal, operation: Operation, sensor: &str) -> bool {
        let mut inner = self.inner.write();
        let allowed = Self::decide(&inner, principal, operation, sensor);
        if allowed {
            inner.granted += 1;
        } else {
            inner.denied += 1;
        }
        allowed
    }

    /// Like [`AccessController::check`] but returns an error suitable for propagation.
    pub fn authorize(
        &self,
        principal: &Principal,
        operation: Operation,
        sensor: &str,
    ) -> GsnResult<()> {
        if self.check(principal, operation, sensor) {
            Ok(())
        } else {
            Err(GsnError::access_denied(format!(
                "{} may not {:?} `{sensor}`",
                principal.name(),
                operation
            )))
        }
    }

    fn decide(
        inner: &AccessInner,
        principal: &Principal,
        operation: Operation,
        sensor: &str,
    ) -> bool {
        // Administrators can do anything.
        if inner.administrators.contains(principal) {
            return true;
        }
        if operation == Operation::Manage {
            // Only administrators manage, unless the container is fully permissive.
            return inner.default_policy == DefaultPolicy::AllowAll;
        }
        if let Some(rule) = inner.rules.get(&sensor.to_ascii_lowercase()) {
            if rule.public_read {
                return true;
            }
            if !rule.readers.is_empty() {
                return rule.readers.contains(principal);
            }
        }
        match inner.default_policy {
            DefaultPolicy::AllowAll | DefaultPolicy::AllowReadOnly => true,
            DefaultPolicy::DenyAll => false,
        }
    }

    /// `(granted, denied)` decision counts.
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.inner.read();
        (inner.granted, inner.denied)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permissive_allows_everything() {
        let ac = AccessController::permissive();
        assert!(ac.check(&Principal::Anonymous, Operation::Read, "any"));
        assert!(ac.check(&Principal::named("x"), Operation::Subscribe, "any"));
        assert!(ac.check(&Principal::Anonymous, Operation::Manage, "any"));
        assert_eq!(ac.stats(), (3, 0));
    }

    #[test]
    fn deny_all_requires_explicit_grants() {
        let ac = AccessController::new(DefaultPolicy::DenyAll);
        let alice = Principal::named("alice");
        assert!(!ac.check(&alice, Operation::Read, "motes"));
        ac.restrict_sensor("motes", vec![alice.clone()]);
        assert!(ac.check(&alice, Operation::Read, "MOTES"));
        assert!(!ac.check(&Principal::named("bob"), Operation::Read, "motes"));
        assert!(!ac.check(&Principal::Anonymous, Operation::Read, "motes"));
        assert!(ac.authorize(&alice, Operation::Read, "motes").is_ok());
        let err = ac
            .authorize(&Principal::Anonymous, Operation::Read, "motes")
            .unwrap_err();
        assert_eq!(err.category(), "access-denied");
    }

    #[test]
    fn read_only_policy_restricts_management() {
        let ac = AccessController::new(DefaultPolicy::AllowReadOnly);
        let admin = Principal::named("operator");
        assert!(ac.check(&Principal::Anonymous, Operation::Read, "motes"));
        assert!(!ac.check(&Principal::Anonymous, Operation::Manage, "motes"));
        assert!(!ac.check(&admin, Operation::Manage, "motes"));
        ac.add_administrator(admin.clone());
        assert!(ac.check(&admin, Operation::Manage, "motes"));
        assert!(ac.check(&admin, Operation::Read, "anything"));
    }

    #[test]
    fn public_sensors_override_deny_all() {
        let ac = AccessController::new(DefaultPolicy::DenyAll);
        ac.publish_sensor("public-weather");
        assert!(ac.check(&Principal::Anonymous, Operation::Read, "public-weather"));
        assert!(!ac.check(&Principal::Anonymous, Operation::Read, "private"));
        ac.clear_sensor("public-weather");
        assert!(!ac.check(&Principal::Anonymous, Operation::Read, "public-weather"));
    }

    #[test]
    fn restriction_replaces_public_flag() {
        let ac = AccessController::new(DefaultPolicy::AllowAll);
        ac.publish_sensor("cam");
        ac.restrict_sensor("cam", vec![Principal::named("alice")]);
        assert!(ac.check(&Principal::named("ALICE"), Operation::Subscribe, "cam"));
        assert!(!ac.check(&Principal::named("eve"), Operation::Read, "cam"));
        let (granted, denied) = ac.stats();
        assert_eq!(granted + denied, 2);
    }

    #[test]
    fn principal_names() {
        assert_eq!(Principal::Anonymous.name(), "<anonymous>");
        assert_eq!(Principal::named("Node-1").name(), "node-1");
        assert_eq!(Principal::named("A"), Principal::named("a"));
    }
}
