//! The simulated peer-to-peer network.
//!
//! The paper's GSN nodes talk over campus TCP/HTTP links; the reproduction substitutes an
//! in-process network whose links have configurable latency, bandwidth and loss (DESIGN.md
//! documents the substitution).  Delivery is clock-driven: a message sent at `t` over a
//! link with latency `L` and bandwidth `B` becomes visible to the destination's inbox at
//! `t + L + size/B`, which preserves the ordering and delay behaviour that matter to the
//! middleware (disconnect buffers, observation delays, notification latency ablation).

use std::collections::HashMap;

use gsn_types::{Duration, GsnError, GsnResult, NodeId, Timestamp};
use parking_lot::Mutex;

use crate::message::{encode, Message};

/// Link quality parameters between two nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// One-way propagation latency.
    pub latency: Duration,
    /// Bandwidth in bytes per millisecond (0 = infinite).
    pub bytes_per_ms: u64,
    /// Probability that a message is silently dropped.
    pub loss_probability: f64,
}

impl Default for LinkSpec {
    fn default() -> Self {
        LinkSpec {
            latency: Duration::from_millis(1),
            bytes_per_ms: 0,
            loss_probability: 0.0,
        }
    }
}

impl LinkSpec {
    /// A perfect local link: no latency, no loss, infinite bandwidth.
    pub fn perfect() -> LinkSpec {
        LinkSpec {
            latency: Duration::ZERO,
            bytes_per_ms: 0,
            loss_probability: 0.0,
        }
    }

    /// A typical wired LAN link (1 ms latency, ~100 MB/s).
    pub fn lan() -> LinkSpec {
        LinkSpec {
            latency: Duration::from_millis(1),
            bytes_per_ms: 100_000,
            loss_probability: 0.0,
        }
    }

    /// A lossy wireless link.
    pub fn wireless(latency_ms: i64, loss_probability: f64) -> LinkSpec {
        LinkSpec {
            latency: Duration::from_millis(latency_ms),
            bytes_per_ms: 2_000,
            loss_probability,
        }
    }

    /// The transmission delay for a message of `size` bytes.
    pub fn transfer_delay(&self, size: usize) -> Duration {
        if self.bytes_per_ms == 0 {
            Duration::ZERO
        } else {
            Duration::from_millis((size as u64).div_ceil(self.bytes_per_ms) as i64)
        }
    }
}

/// A message waiting in (or delivered from) a node's inbox.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// The sending node.
    pub from: NodeId,
    /// The destination node.
    pub to: NodeId,
    /// When the message becomes visible at the destination.
    pub deliver_at: Timestamp,
    /// The message.
    pub message: Message,
    /// The encoded size in bytes (what would travel on a real wire).
    pub wire_size: usize,
}

/// Per-network delivery statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Messages accepted for delivery.
    pub sent: u64,
    /// Messages dropped by lossy links.
    pub dropped: u64,
    /// Messages handed to receivers.
    pub delivered: u64,
    /// Total bytes accepted for delivery.
    pub bytes_sent: u64,
}

/// The in-process network connecting simulated GSN nodes.
#[derive(Debug, Default)]
pub struct SimulatedNetwork {
    inner: Mutex<NetworkInner>,
}

#[derive(Debug, Default)]
struct NetworkInner {
    nodes: Vec<NodeId>,
    links: HashMap<(NodeId, NodeId), LinkSpec>,
    default_link: LinkSpec,
    inboxes: HashMap<NodeId, Vec<Envelope>>,
    stats: NetworkStats,
    /// Per-directed-link delivery counters, keyed `(from, to)`.
    link_stats: HashMap<(NodeId, NodeId), NetworkStats>,
    /// Deterministic loss decisions: one counter-based hash stream per
    /// `(from, to, message kind)` keeps runs reproducible without threading an RNG
    /// through every send call — and keeps the loss pattern one traffic class sees
    /// independent of how much *other* traffic shares the network, so A/B runs that
    /// add frames (e.g. tracing on vs. off) face identical drops on identical frames.
    loss_counters: HashMap<(NodeId, NodeId, &'static str), u64>,
    partitions: Vec<(NodeId, NodeId)>,
    /// Messages accepted for delivery, by [`Message::kind`].  Lets tests assert which
    /// frame kinds a protocol exchange put on the wire (e.g. that a decomposed federated
    /// aggregate ships no row-bearing `query-batch` frames).
    kind_sent: HashMap<&'static str, u64>,
}

impl SimulatedNetwork {
    /// Creates an empty network whose default link is [`LinkSpec::default`].
    pub fn new() -> SimulatedNetwork {
        SimulatedNetwork::default()
    }

    /// Registers a node, creating its inbox.
    pub fn add_node(&self, node: NodeId) -> GsnResult<()> {
        let mut inner = self.inner.lock();
        if inner.nodes.contains(&node) {
            return Err(GsnError::already_exists(format!(
                "{node} already joined the network"
            )));
        }
        inner.nodes.push(node);
        inner.inboxes.insert(node, Vec::new());
        Ok(())
    }

    /// The registered nodes.
    pub fn nodes(&self) -> Vec<NodeId> {
        self.inner.lock().nodes.clone()
    }

    /// Sets the default link used between nodes with no explicit link.
    pub fn set_default_link(&self, spec: LinkSpec) {
        self.inner.lock().default_link = spec;
    }

    /// Sets the link between two nodes (both directions).
    pub fn set_link(&self, a: NodeId, b: NodeId, spec: LinkSpec) {
        let mut inner = self.inner.lock();
        inner.links.insert((a, b), spec);
        inner.links.insert((b, a), spec);
    }

    /// Severs connectivity between two nodes (both directions) until
    /// [`SimulatedNetwork::heal_partition`] is called.  Used to test disconnect buffers.
    pub fn partition(&self, a: NodeId, b: NodeId) {
        let mut inner = self.inner.lock();
        if !inner.partitions.contains(&(a, b)) {
            inner.partitions.push((a, b));
            inner.partitions.push((b, a));
        }
    }

    /// Restores connectivity between two nodes.
    pub fn heal_partition(&self, a: NodeId, b: NodeId) {
        let mut inner = self.inner.lock();
        inner.partitions.retain(|p| *p != (a, b) && *p != (b, a));
    }

    /// True when traffic from `a` to `b` is currently blocked.
    pub fn is_partitioned(&self, a: NodeId, b: NodeId) -> bool {
        self.inner.lock().partitions.contains(&(a, b))
    }

    /// Sends a message, returning its wire size, or an error when the destination is
    /// unknown or currently partitioned from the sender.
    pub fn send(
        &self,
        from: NodeId,
        to: NodeId,
        message: Message,
        now: Timestamp,
    ) -> GsnResult<usize> {
        let mut inner = self.inner.lock();
        if !inner.inboxes.contains_key(&to) {
            return Err(GsnError::not_found(format!(
                "{to} is not part of the network"
            )));
        }
        if inner.partitions.contains(&(from, to)) {
            return Err(GsnError::disconnected(format!(
                "{from} cannot reach {to} (partitioned)"
            )));
        }
        let wire = encode(&message);
        let wire_size = wire.len();
        let spec = inner
            .links
            .get(&(from, to))
            .copied()
            .unwrap_or(inner.default_link);

        inner.stats.sent += 1;
        inner.stats.bytes_sent += wire_size as u64;
        *inner.kind_sent.entry(message.kind()).or_default() += 1;
        {
            let link = inner.link_stats.entry((from, to)).or_default();
            link.sent += 1;
            link.bytes_sent += wire_size as u64;
        }

        // Deterministic pseudo-random loss, one stream per (link, frame kind).
        if spec.loss_probability > 0.0 {
            let kind = message.kind();
            let counter = inner
                .loss_counters
                .entry((from, to, kind))
                .or_insert_with(|| {
                    // Seed each stream from its key so different links/kinds start at
                    // different phases of the sequence.
                    let mut seed = from.as_u64().wrapping_mul(0x9E3779B97F4A7C15);
                    seed ^= to.as_u64().wrapping_mul(0xD1B54A32D192ED03);
                    for b in kind.bytes() {
                        seed = seed.wrapping_mul(31).wrapping_add(b as u64);
                    }
                    seed
                });
            *counter = counter.wrapping_mul(6364136223846793005).wrapping_add(1);
            let draw = (*counter >> 33) as f64 / (u32::MAX as f64 / 2.0).max(1.0);
            if draw.fract() < spec.loss_probability {
                inner.stats.dropped += 1;
                inner.link_stats.entry((from, to)).or_default().dropped += 1;
                return Ok(wire_size);
            }
        }

        let deliver_at = now + spec.latency + spec.transfer_delay(wire_size);
        // Decode from the wire bytes so the receiver sees exactly what was serialised —
        // this keeps the codec on the hot path, as it would be on a real socket.
        let message = crate::message::decode(&wire)?;
        inner
            .inboxes
            .get_mut(&to)
            .expect("checked above")
            .push(Envelope {
                from,
                to,
                deliver_at,
                message,
                wire_size,
            });
        Ok(wire_size)
    }

    /// Drains every message addressed to `node` whose delivery time has arrived.
    pub fn receive(&self, node: NodeId, now: Timestamp) -> Vec<Envelope> {
        let mut inner = self.inner.lock();
        let Some(inbox) = inner.inboxes.get_mut(&node) else {
            return Vec::new();
        };
        let mut due: Vec<Envelope> = Vec::new();
        let mut remaining: Vec<Envelope> = Vec::new();
        for envelope in inbox.drain(..) {
            if envelope.deliver_at <= now {
                due.push(envelope);
            } else {
                remaining.push(envelope);
            }
        }
        *inbox = remaining;
        due.sort_by_key(|e| e.deliver_at);
        inner.stats.delivered += due.len() as u64;
        for envelope in &due {
            inner
                .link_stats
                .entry((envelope.from, envelope.to))
                .or_default()
                .delivered += 1;
        }
        due
    }

    /// Number of messages queued for `node` (delivered or not).
    pub fn pending(&self, node: NodeId) -> usize {
        self.inner
            .lock()
            .inboxes
            .get(&node)
            .map(|i| i.len())
            .unwrap_or(0)
    }

    /// Delivery statistics.
    pub fn stats(&self) -> NetworkStats {
        self.inner.lock().stats
    }

    /// Messages accepted for delivery whose [`Message::kind`] equals `kind`.
    pub fn sent_of_kind(&self, kind: &str) -> u64 {
        self.inner.lock().kind_sent.get(kind).copied().unwrap_or(0)
    }

    /// All per-kind send counters, sorted by kind name.
    pub fn kind_stats(&self) -> Vec<(&'static str, u64)> {
        let inner = self.inner.lock();
        let mut kinds: Vec<(&'static str, u64)> =
            inner.kind_sent.iter().map(|(k, v)| (*k, *v)).collect();
        kinds.sort_by_key(|(k, _)| *k);
        kinds
    }

    /// Per-directed-link delivery statistics, sorted by `(from, to)`.
    pub fn link_stats(&self) -> Vec<((NodeId, NodeId), NetworkStats)> {
        let inner = self.inner.lock();
        let mut links: Vec<((NodeId, NodeId), NetworkStats)> =
            inner.link_stats.iter().map(|(k, v)| (*k, *v)).collect();
        links.sort_by_key(|((from, to), _)| (*from, *to));
        links
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ping(request: u64) -> Message {
        Message::Ping { request }
    }

    #[test]
    fn add_nodes_and_reject_duplicates() {
        let net = SimulatedNetwork::new();
        net.add_node(NodeId::new(1)).unwrap();
        net.add_node(NodeId::new(2)).unwrap();
        assert!(net.add_node(NodeId::new(1)).is_err());
        assert_eq!(net.nodes().len(), 2);
    }

    #[test]
    fn messages_arrive_after_latency() {
        let net = SimulatedNetwork::new();
        let (a, b) = (NodeId::new(1), NodeId::new(2));
        net.add_node(a).unwrap();
        net.add_node(b).unwrap();
        net.set_link(
            a,
            b,
            LinkSpec {
                latency: Duration::from_millis(50),
                bytes_per_ms: 0,
                loss_probability: 0.0,
            },
        );
        net.send(a, b, ping(1), Timestamp(100)).unwrap();
        assert!(net.receive(b, Timestamp(149)).is_empty());
        assert_eq!(net.pending(b), 1);
        let got = net.receive(b, Timestamp(150));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].from, a);
        assert_eq!(got[0].deliver_at, Timestamp(150));
        assert_eq!(net.pending(b), 0);
    }

    #[test]
    fn bandwidth_adds_transfer_delay() {
        let spec = LinkSpec {
            latency: Duration::from_millis(1),
            bytes_per_ms: 1_000,
            loss_probability: 0.0,
        };
        assert_eq!(spec.transfer_delay(10_000), Duration::from_millis(10));
        assert_eq!(spec.transfer_delay(1), Duration::from_millis(1));
        assert_eq!(
            LinkSpec::perfect().transfer_delay(1_000_000),
            Duration::ZERO
        );
    }

    #[test]
    fn unknown_destination_errors() {
        let net = SimulatedNetwork::new();
        net.add_node(NodeId::new(1)).unwrap();
        assert!(net
            .send(NodeId::new(1), NodeId::new(9), ping(1), Timestamp(0))
            .is_err());
        assert!(net.receive(NodeId::new(9), Timestamp(0)).is_empty());
    }

    #[test]
    fn partitions_block_and_heal() {
        let net = SimulatedNetwork::new();
        let (a, b) = (NodeId::new(1), NodeId::new(2));
        net.add_node(a).unwrap();
        net.add_node(b).unwrap();
        net.partition(a, b);
        assert!(net.is_partitioned(a, b));
        assert!(net.is_partitioned(b, a));
        let err = net.send(a, b, ping(1), Timestamp(0)).unwrap_err();
        assert!(err.is_transient());
        net.heal_partition(a, b);
        assert!(!net.is_partitioned(a, b));
        net.send(a, b, ping(2), Timestamp(0)).unwrap();
        assert_eq!(net.receive(b, Timestamp(10)).len(), 1);
    }

    #[test]
    fn lossy_links_drop_some_messages() {
        let net = SimulatedNetwork::new();
        let (a, b) = (NodeId::new(1), NodeId::new(2));
        net.add_node(a).unwrap();
        net.add_node(b).unwrap();
        net.set_link(a, b, LinkSpec::wireless(5, 0.5));
        for i in 0..200 {
            net.send(a, b, ping(i), Timestamp(i as i64)).unwrap();
        }
        let stats = net.stats();
        assert_eq!(stats.sent, 200);
        assert!(
            stats.dropped > 20 && stats.dropped < 180,
            "dropped {}",
            stats.dropped
        );
        let delivered = net.receive(b, Timestamp(10_000)).len() as u64;
        assert_eq!(delivered + stats.dropped, 200);
    }

    #[test]
    fn delivery_is_ordered_by_arrival_time() {
        let net = SimulatedNetwork::new();
        let (a, b, c) = (NodeId::new(1), NodeId::new(2), NodeId::new(3));
        net.add_node(a).unwrap();
        net.add_node(b).unwrap();
        net.add_node(c).unwrap();
        net.set_link(
            a,
            c,
            LinkSpec {
                latency: Duration::from_millis(100),
                ..LinkSpec::perfect()
            },
        );
        net.set_link(b, c, LinkSpec::perfect());
        net.send(a, c, ping(1), Timestamp(0)).unwrap();
        net.send(b, c, ping(2), Timestamp(50)).unwrap();
        let got = net.receive(c, Timestamp(200));
        assert_eq!(got.len(), 2);
        // b's message arrives at 50, a's at 100.
        assert!(matches!(got[0].message, Message::Ping { request: 2 }));
        assert!(matches!(got[1].message, Message::Ping { request: 1 }));
    }

    #[test]
    fn per_kind_counters_track_sends() {
        let net = SimulatedNetwork::new();
        let (a, b) = (NodeId::new(1), NodeId::new(2));
        net.add_node(a).unwrap();
        net.add_node(b).unwrap();
        net.send(a, b, ping(1), Timestamp(0)).unwrap();
        net.send(a, b, ping(2), Timestamp(0)).unwrap();
        net.send(b, a, Message::Pong { request: 1 }, Timestamp(0))
            .unwrap();
        assert_eq!(net.sent_of_kind("ping"), 2);
        assert_eq!(net.sent_of_kind("pong"), 1);
        assert_eq!(net.sent_of_kind("query-batch"), 0);
        assert_eq!(net.kind_stats(), vec![("ping", 2), ("pong", 1)]);
    }

    #[test]
    fn stats_track_bytes() {
        let net = SimulatedNetwork::new();
        let (a, b) = (NodeId::new(1), NodeId::new(2));
        net.add_node(a).unwrap();
        net.add_node(b).unwrap();
        let size = net.send(a, b, ping(1), Timestamp(0)).unwrap();
        assert!(size > 0);
        assert_eq!(net.stats().bytes_sent, size as u64);
        assert_eq!(net.stats().sent, 1);
        net.receive(b, Timestamp(100));
        assert_eq!(net.stats().delivered, 1);
    }
}
